"""Command-line interface: regenerate the paper's results from a shell.

Examples::

    python -m repro table1
    python -m repro fig5 --iterations 60
    python -m repro figs --cores 32 --scale 0.5
    python -m repro run --workload kern3 --barrier gl --cores 16
    python -m repro all --out results/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .dse import DEFAULT_OBJECTIVES as DSE_DEFAULT_OBJECTIVES
from .exec import (ParallelRunner, ResultCache, RunFailureError,
                   SweepJournal, default_cache_dir, use_executor)
from .faults import ChaosPlan
from .experiments import (contention_ablation, csw_variant_ablation,
                          dsw_arity_sweep, entry_overhead_sweep,
                          hierarchical_latency, noc_model_ablation,
                          period_sweep, run_collectives, run_fig5,
                          run_fig6_and_fig7, run_recovery,
                          run_integrity, run_resilience,
                          run_shootout, run_stages,
                          run_table1, run_table2)
from .experiments.energy_exp import run_energy
from .experiments.runner import run_benchmark
from .workloads import (EM3DWorkload, Kernel2Workload, Kernel3Workload,
                        Kernel6Workload, OceanWorkload,
                        SyntheticBarrierWorkload, UnstructuredWorkload)

WORKLOADS = {
    "synthetic": lambda scale: SyntheticBarrierWorkload(
        iterations=max(1, int(250 * scale))),
    "kern2": lambda scale: Kernel2Workload(
        iterations=max(1, int(30 * scale))),
    "kern3": lambda scale: Kernel3Workload(
        iterations=max(1, int(150 * scale))),
    "kern6": lambda scale: Kernel6Workload(
        n=256, iterations=max(1, int(2 * scale))),
    "ocean": lambda scale: OceanWorkload(phases=max(1, int(8 * scale))),
    "unstructured": lambda scale: UnstructuredWorkload(
        phases=max(1, int(8 * scale))),
    "em3d": lambda scale: EM3DWorkload(
        nodes=1920, steps=max(1, int(8 * scale))),
}

ABLATIONS = {
    "period": lambda cores: period_sweep(num_cores=cores, iterations=15),
    "overhead": lambda cores: entry_overhead_sweep(num_cores=cores,
                                                   iterations=40),
    "hierarchical": lambda cores: hierarchical_latency(iterations=25),
    "arity": lambda cores: dsw_arity_sweep(num_cores=cores, iterations=20),
    "contention": lambda cores: contention_ablation(num_cores=cores,
                                                    iterations=20),
    "csw": lambda cores: csw_variant_ablation(num_cores=cores,
                                              iterations=20),
    "nocmodel": lambda cores: noc_model_ablation(num_cores=min(cores, 16),
                                                 iterations=20),
}


def _emit(text: str, out: Path | None, name: str) -> None:
    print(text)
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--cores", type=int, default=32,
                        help="chip size for figures 6/7, table 2, energy")
    common.add_argument("--scale", type=float, default=0.5,
                        help="iteration-count multiplier (default 0.5)")
    common.add_argument("--out", type=Path, default=None,
                        help="directory to save rendered outputs")
    common.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent runs "
                             "(default: all CPUs)")
    common.add_argument("--cache-dir", type=Path, default=None,
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    common.add_argument("--no-cache", action="store_true",
                        help="recompute every run; do not read or write "
                             "the result cache")
    common.add_argument("--metrics", type=Path, default=None,
                        metavar="PATH",
                        help="write the executor's metric snapshot to PATH "
                             "(.csv for CSV, anything else for JSON)")
    common.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock deadline; a run past it "
                             "is killed and retried (supervised mode)")
    common.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retries for crashed/timed-out runs "
                             "(default 2 in supervised mode; sim errors "
                             "are deterministic and never retried)")
    common.add_argument("--keep-going", action="store_true",
                        help="on a run failure, continue the sweep and "
                             "report partial results instead of aborting")
    common.add_argument("--journal", type=Path, default=None,
                        metavar="PATH",
                        help="append a JSONL sweep journal at PATH "
                             "(enables 'repro resume PATH')")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the G-line barrier paper's tables, "
                    "figures and ablations.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", parents=[common],
                   help="Table 1: CMP configuration")
    sub.add_parser("table2", parents=[common],
                   help="Table 2: barrier counts and periods")
    p5 = sub.add_parser("fig5", parents=[common],
                        help="Figure 5: barrier latency vs cores")
    p5.add_argument("--iterations", type=int, default=60)
    sub.add_parser("figs", parents=[common],
                   help="Figures 6 and 7 (one paired run)")
    sub.add_parser("energy", parents=[common],
                   help="network-energy proxy per benchmark")
    sub.add_parser("stages", parents=[common],
                   help="S1/S2/S3 barrier-stage decomposition")
    psh = sub.add_parser("shootout", parents=[common],
                         help="software-barrier comparison incl. "
                              "dissemination/tournament")
    psh.add_argument("--iterations", type=int, default=30)
    pco = sub.add_parser("collectives", parents=[common],
                         help="collective shootout: G-line bit-serial "
                              "all-reduce vs software NoC all-reduce")
    pco.add_argument("--iterations", type=int, default=24)
    pco.add_argument("--value-width", type=int, default=8,
                     help="operand width in bits (default 8)")
    pco.add_argument("--core-counts", type=int, nargs="+",
                     default=None,
                     help="chip sizes to sweep (default: 16 64 256)")
    pab = sub.add_parser("ablations", parents=[common],
                         help="design-choice ablations")
    pab.add_argument("names", nargs="*", choices=list(ABLATIONS),
                     help="subset to run (default: all)")
    prun = sub.add_parser("run", parents=[common],
                          help="run one benchmark, print summary")
    prun.add_argument("--workload", choices=sorted(WORKLOADS),
                      required=True)
    prun.add_argument("--barrier", default="gl",
                      choices=["gl", "dsw", "csw", "csw-fa"])
    prun.add_argument("--verify", action="store_true",
                      help="check the dataflow against the reference")
    # Deliberately NOT part of "all": the fault sweep is a robustness
    # diagnostic, not one of the paper's figures.
    pres = sub.add_parser("resilience", parents=[common],
                          help="fault sweep: GL barrier under G-line "
                               "stuck-at faults with watchdog failover")
    pres.add_argument("--rates", type=float, nargs="+", default=None,
                      help="stuck-at fault rates to sweep "
                           "(default: 0 1e-4 5e-4 2e-3)")
    pres.add_argument("--iterations", type=int, default=40)
    pres.add_argument("--seed", type=int, default=1,
                      help="fault-plan seed (sweeps are reproducible "
                           "per seed)")
    pres.add_argument("--failover", default="csw", choices=["csw", "dsw"],
                      help="software barrier used after failover")
    pres.add_argument("--recovery", action="store_true",
                      help="sweep the self-healing recovery FSM against "
                           "seeded intermittent bursts instead of "
                           "permanent stuck-at faults")
    pres.add_argument("--duties", type=float, nargs="+", default=None,
                      help="intermittent-burst duty cycles to sweep with "
                           "--recovery (default: 0.25 0.5 0.75 1.0)")
    # Like resilience, NOT part of "all": a robustness diagnostic.
    pin = sub.add_parser("integrity", parents=[common],
                         help="SDC sweep: undetected wrong collective "
                              "values vs S-CSMA miscount rate, per "
                              "verification mode")
    pin.add_argument("--rates", type=float, nargs="+", default=None,
                     help="miscount rates to sweep "
                          "(default: 2e-3 1e-2 2e-2)")
    pin.add_argument("--iterations", type=int, default=20)
    pin.add_argument("--seed", type=int, default=11,
                     help="fault-plan seed (sweeps are reproducible "
                          "per seed)")
    pin.add_argument("--modes", nargs="+", default=None,
                     choices=["off", "echo", "residue", "vote"],
                     help="integrity modes (default: all four)")
    # Observability: one traced run, exported as a viewable artifact.
    # Not under ``common``: its --out names the artifact *file*, not a
    # directory of rendered tables.
    ptr = sub.add_parser("trace",
                         help="run one traced experiment and export the "
                              "trace (repro.obs)")
    ptr.add_argument("experiment", choices=["fig5"] + sorted(WORKLOADS),
                     help="'fig5' traces one synthetic fig5 point; any "
                          "workload name traces that benchmark")
    ptr.add_argument("--format", dest="fmt", default="perfetto",
                     choices=["perfetto", "vcd", "jsonl"],
                     help="artifact format (default: perfetto JSON)")
    ptr.add_argument("--out", type=Path, default=None,
                     help="artifact file (default: trace.<ext>)")
    ptr.add_argument("--iterations", type=int, default=10,
                     help="barrier iterations for the fig5 point")
    ptr.add_argument("--cores", type=int, default=32)
    ptr.add_argument("--scale", type=float, default=0.5)
    ptr.add_argument("--barrier", default="gl",
                     choices=["gl", "dsw", "csw", "csw-fa"])
    ptr.add_argument("--capacity", type=int, default=None,
                     help="trace ring capacity (default 65536; 0 means "
                          "unbounded)")
    ptr.add_argument("--jobs", type=int, default=None,
                     help=argparse.SUPPRESS)
    ptr.add_argument("--cache-dir", type=Path, default=None,
                     help="result cache to seed (the trace's result is "
                          "stored so an untraced rerun cache-hits)")
    ptr.add_argument("--no-cache", action="store_true")
    ptr.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                     help="write this run's metric snapshot to PATH")
    # Formal verification: model-check the barrier FSMs (repro.verify).
    pv = sub.add_parser("verify", parents=[common],
                        help="model-check the G-line barrier FSMs: "
                             "exhaustive state-space exploration, fault "
                             "scenarios, counterexample replay")
    pv.add_argument("--mesh", default="2x2", metavar="RxC",
                    help="mesh shape to verify, e.g. 4x4 (default 2x2)")
    pv.add_argument("--scenario", default="fault-free",
                    help="fault scenario name (see --list)")
    pv.add_argument("--mutation", default=None,
                    help="deliberate FSM bug to inject (see --list); "
                         "the checker must refute safety")
    pv.add_argument("--episodes", type=int, default=1,
                    help="barrier episodes per core (default 1)")
    pv.add_argument("--shard-depth", type=int, default=0, metavar="D",
                    help="split the exploration at BFS depth D and fan "
                         "the shards out over --jobs workers and the "
                         "result cache (default 0: single process)")
    pv.add_argument("--max-states", type=int, default=2_000_000,
                    help="state cap per (sharded) exploration")
    pv.add_argument("--export-prefix", type=Path, default=None,
                    metavar="PREFIX",
                    help="on a violation, replay it on the real "
                         "simulator and write PREFIX.perfetto.json + "
                         "PREFIX.vcd")
    pv.add_argument("--no-replay", action="store_true",
                    help="skip the simulator replay of a counterexample")
    pv.add_argument("--list", action="store_true", dest="list_registry",
                    help="list known scenarios and mutations, then exit")
    # Sweep maintenance: these act on journals/caches, not experiments,
    # so they take only the flags they need.
    pre = sub.add_parser("resume",
                         help="continue an interrupted sweep from its "
                              "journal (completed runs are cache hits, "
                              "never re-simulated)")
    pre.add_argument("journal", type=Path, help="journal written by a "
                     "previous run's --journal flag")
    # Wall-clock benchmarks: times experiments in-process, so it takes
    # only its own flags (no executor/cache machinery).
    pbe = sub.add_parser("bench",
                         help="time fig5/6/7 + stress cases, write "
                              "BENCH_*.json, gate against baselines "
                              "(repro.bench)")
    pbe.add_argument("names", nargs="*",
                     help="cases to run (default: all; see repro.bench)")
    pbe.add_argument("--quick", action="store_true",
                     help="smoke-scale variants (what CI runs)")
    pbe.add_argument("--backend", default="both",
                     choices=["heap", "batched", "both"],
                     help="engine backend(s) to time (default: both)")
    pbe.add_argument("--repeats", type=int, default=None, metavar="N",
                     help="repeats per case, median reported "
                          "(default: 3, or 2 with --quick)")
    pbe.add_argument("--out", type=Path, default=None, metavar="DIR",
                     help="directory for fresh BENCH_*.json snapshots "
                          "(e.g. CI artifacts; default: don't write)")
    pbe.add_argument("--baseline-dir", type=Path, default=None,
                     metavar="DIR",
                     help="committed baselines to gate against "
                          "(default: benchmarks/perf)")
    pbe.add_argument("--write", action="store_true",
                     help="refresh the baseline files in --baseline-dir "
                          "instead of gating against them")
    pbe.add_argument("--check", action="store_true",
                     help="exit 1 on any regression beyond tolerance")
    pbe.add_argument("--tolerance", type=float, default=None,
                     help="allowed normalized-score regression "
                          "(default 0.25)")
    pdse = sub.add_parser(
        "dse", parents=[common],
        help="Pareto design-space exploration over the G-line config "
             "space (repro.dse; see docs/dse.md)")
    pdse.add_argument("--space", default="default", metavar="NAME|FILE",
                      help="preset space name or JSON space file "
                           "(default: 'default'; presets: see "
                           "repro.dse.SPACES)")
    pdse.add_argument("--objectives", nargs="+",
                      default=list(DSE_DEFAULT_OBJECTIVES),
                      metavar="NAME",
                      help="objectives to minimize (default: "
                           f"{' '.join(DSE_DEFAULT_OBJECTIVES)}; also: "
                           "failover)")
    pdse.add_argument("--budget", type=int, default=40, metavar="N",
                      help="evaluation requests the search may spend "
                           "(cache hits included; default 40)")
    pdse.add_argument("--seed", type=int, default=7,
                      help="search seed (default 7); the whole "
                           "trajectory is deterministic per seed")
    pdse.add_argument("--rungs", type=int, nargs="+", default=None,
                      metavar="ITERS",
                      help="successive-halving fidelity rungs, workload "
                           "iterations (default: 3 6 12)")
    pdse.add_argument("--pools", default=None, metavar="NAME:JOBS,...",
                      help="named worker pools, e.g. 'fast:8,slow:2' "
                           "(default: one pool of --jobs workers)")
    pdse.add_argument("--resume", type=Path, default=None,
                      metavar="JOURNAL",
                      help="shorthand for --journal JOURNAL plus a "
                           "completed-count report; with a warm cache "
                           "nothing finished is re-simulated")
    pdse.add_argument("--crossover", action="store_true",
                      help="run the per-mesh crossover study "
                           "(8x8/16x16 by default) instead of a single "
                           "search")
    pdse.add_argument("--core-counts", type=int, nargs="+", default=None,
                      metavar="N",
                      help="mesh sizes for --crossover (default 64 256)")
    pca = sub.add_parser("cache", help="inspect or maintain the result "
                                       "cache")
    pca.add_argument("action", choices=["stats", "clear", "prune"],
                     help="stats: entries/bytes/per-fingerprint; clear: "
                          "delete everything; prune: drop entries from "
                          "other code versions")
    pca.add_argument("--cache-dir", type=Path, default=None,
                     help="cache directory (default: $REPRO_CACHE_DIR "
                          "or ~/.cache/repro)")
    pca.add_argument("--dry-run", action="store_true",
                     help="with prune: report what would be evicted "
                          "(count/bytes, oldest first) without deleting")
    sub.add_parser("all", parents=[common], help="everything above")
    return parser


def main(argv: list[str] | None = None) -> int:
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "dse":
        return _run_dse(args, raw_argv)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or default_cache_dir()
    if cache_dir.exists() and not cache_dir.is_dir():
        print(f"error: --cache-dir {cache_dir} exists and is not a "
              f"directory", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(cache_dir)
    chaos = ChaosPlan.from_env()
    if chaos is not None and chaos.enabled:
        print(f"[repro.exec] chaos enabled: {chaos}", file=sys.stderr)
    journal_path = getattr(args, "journal", None)
    journal = SweepJournal(journal_path, argv=raw_argv) \
        if journal_path is not None else None
    executor = ParallelRunner(
        jobs=jobs, cache=cache,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", None),
        keep_going=getattr(args, "keep_going", False),
        journal=journal, chaos=chaos)
    interrupted = False
    try:
        with use_executor(executor):
            try:
                rc = _dispatch(args)
            except KeyboardInterrupt:
                interrupted, rc = True, 130
                if journal is not None:
                    journal.interrupted()
            except RunFailureError as exc:
                _report_failures(exc.failures)
                rc = 1
            except Exception:
                if executor.keep_going and executor.failures:
                    # A driver choked on a keep-going hole (a None
                    # result); the partial work is cached -- report what
                    # failed instead of a bare traceback.
                    _report_failures(executor.failures)
                    rc = 1
                else:
                    raise
    finally:
        if journal is not None:
            journal.close()
    if executor.failures and rc == 0:
        _report_failures(executor.failures)
        rc = 1
    # The summary goes to stderr so stdout (the figure data) is
    # byte-identical whether results were simulated or served from cache.
    if cache is not None:
        print(f"[repro.exec] {executor.summary()}", file=sys.stderr)
    if interrupted or rc == 1:
        if journal_path is not None:
            print(f"[repro.exec] completed work is cached; continue "
                  f"with: repro resume {journal_path}", file=sys.stderr)
        if interrupted:
            print("[repro.exec] interrupted; workers drained, no "
                  "zombies left", file=sys.stderr)
    metrics_path = getattr(args, "metrics", None)
    if metrics_path is not None:
        if metrics_path.suffix == ".csv":
            executor.metrics.to_csv(metrics_path)
        else:
            executor.metrics.to_json(metrics_path)
        print(f"[repro.obs] metrics snapshot written to {metrics_path}",
              file=sys.stderr)
    return rc


def _report_failures(failures) -> None:
    for failure in failures:
        print(f"[repro.exec] FAILED {failure}", file=sys.stderr)


def _run_resume(args) -> int:
    """Replay the command recorded in a sweep journal.

    The journal's argv includes its own ``--journal`` flag, so the replay
    appends to the same file; completed specs are served by the result
    cache, so nothing already finished is re-simulated.
    """
    from .exec import JournalError

    try:
        recorded = SweepJournal.load_argv(args.journal)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not recorded or recorded[0] in ("resume", "cache"):
        print(f"error: journal {args.journal} does not record a "
              f"resumable command (argv={recorded})", file=sys.stderr)
        return 2
    done = len(SweepJournal.completed_keys(args.journal))
    print(f"[repro.exec] resuming: repro {' '.join(recorded)}  "
          f"({done} run(s) already completed)", file=sys.stderr)
    return main(recorded)


def _parse_pools(arg: str):
    """``'fast:8,slow:2'`` -> worker pools (ValueError on bad syntax)."""
    from .dse import WorkerPool

    pools = []
    for part in arg.split(","):
        name, sep, jobs = part.partition(":")
        if not sep:
            raise ValueError(f"pool {part!r} is not NAME:JOBS")
        pools.append(WorkerPool(name.strip(), int(jobs)))
    return pools


def _run_dse(args, raw_argv: list[str]) -> int:
    """``repro dse``: Pareto search (or crossover study) with its own
    scheduler; handled outside the generic executor path because the
    search owns dispatch.  Always runs keep-going: a design point that
    fails at runtime is an infeasible design, not a fatal error."""
    from .common.errors import ReproError
    from .dse import (SweepScheduler, front_csv, front_json, run_search,
                      space_from_arg)
    from .experiments import run_dse_crossover

    try:
        space = space_from_arg(args.space)
        pools = _parse_pools(args.pools) if args.pools else None
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or default_cache_dir()
    if cache_dir.exists() and not cache_dir.is_dir():
        print(f"error: --cache-dir {cache_dir} exists and is not a "
              f"directory", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(cache_dir)
    chaos = ChaosPlan.from_env()
    if chaos is not None and chaos.enabled:
        print(f"[repro.exec] chaos enabled: {chaos}", file=sys.stderr)
    journal_path = args.resume if args.resume is not None \
        else args.journal
    if args.resume is not None and args.resume.exists():
        done = len(SweepJournal.completed_keys(args.resume))
        print(f"[repro.dse] resuming from {args.resume} "
              f"({done} run(s) already completed)", file=sys.stderr)
    journal = SweepJournal(journal_path, argv=raw_argv) \
        if journal_path is not None else None
    scheduler = SweepScheduler(
        pools=pools, jobs=None if pools else jobs, cache=cache,
        journal=journal, timeout=args.timeout,
        retries=args.retries if args.retries is not None else 2,
        keep_going=True, chaos=chaos)
    rc = 0
    try:
        rungs = tuple(args.rungs) if args.rungs else None
        if args.crossover:
            kwargs = {"rungs": rungs} if rungs else {}
            if args.core_counts:
                kwargs["core_counts"] = tuple(args.core_counts)
            result = run_dse_crossover(
                budget=args.budget, seed=args.seed,
                objectives=tuple(args.objectives),
                scheduler=scheduler, **kwargs)
            _emit(result.table(), args.out, "dse_crossover")
        else:
            kwargs = {"rungs": rungs} if rungs else {}
            search = run_search(
                space, tuple(args.objectives), budget=args.budget,
                seed=args.seed, scheduler=scheduler, **kwargs)
            _emit(search.table(), args.out, "dse")
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / "dse_front.json").write_text(
                    front_json(search), encoding="utf-8")
                (args.out / "dse_front.csv").write_text(
                    front_csv(search), encoding="utf-8")
                print(f"[repro.dse] front exported to "
                      f"{args.out}/dse_front.{{json,csv}}",
                      file=sys.stderr)
    except KeyboardInterrupt:
        rc = 130
        if journal is not None:
            journal.interrupted()
            print(f"[repro.exec] completed work is cached; continue "
                  f"with: repro resume {journal_path}", file=sys.stderr)
        print("[repro.exec] interrupted; workers drained, no zombies "
              "left", file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 2
    finally:
        if journal is not None:
            journal.close()
    if scheduler.failures:
        _report_failures(scheduler.failures)
        print(f"[repro.dse] {len(scheduler.failures)} point(s) failed "
              f"at runtime and were treated as infeasible",
              file=sys.stderr)
    if cache is not None:
        print(f"[repro.dse] {scheduler.summary()}", file=sys.stderr)
    if args.metrics is not None:
        if args.metrics.suffix == ".csv":
            scheduler.metrics.to_csv(args.metrics)
        else:
            scheduler.metrics.to_json(args.metrics)
        print(f"[repro.obs] metrics snapshot written to {args.metrics}",
              file=sys.stderr)
    return rc


def _run_bench(args) -> int:
    """``repro bench``: time cases, snapshot, gate against baselines.

    Exit codes: 0 ok; 1 a regression beyond tolerance with ``--check``;
    2 usage errors (unknown case, incomparable baseline).
    """
    from .bench import (CASES, DEFAULT_REPEATS, DEFAULT_TOLERANCE,
                        BenchSnapshot, calibrate, compare_snapshots,
                        get_case, load_snapshot, run_case, write_snapshot)
    from .bench.runner import BenchError, config_digest

    names = args.names or sorted(CASES)
    try:
        cases = [get_case(name) for name in names]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    backends = ["heap", "batched"] if args.backend == "both" \
        else [args.backend]
    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else DEFAULT_REPEATS)
    tolerance = args.tolerance if args.tolerance is not None \
        else DEFAULT_TOLERANCE

    calibration_eps = calibrate()
    print(f"[repro.bench] calibration: {calibration_eps:,.0f} "
          f"events/sec (pure-python reference loop)", file=sys.stderr)

    regressed = False
    for case in cases:
        snapshot = BenchSnapshot(name=case.name, quick=args.quick,
                                 config_digest=config_digest(
                                     case, args.quick))
        for backend in backends:
            meas = run_case(case, backend, quick=args.quick,
                            repeats=repeats,
                            calibration_eps=calibration_eps)
            snapshot.backends[backend] = meas
            print(f"{case.name:<12} {backend:<8} "
                  f"median {meas.median_wall_s * 1000:8.1f} ms   "
                  f"{meas.events_per_sec:12,.0f} ev/s   "
                  f"norm {meas.normalized_score:.3f}   "
                  f"({meas.events:,} events x{meas.repeats})")
        # --write refreshes the committed baselines; --out drops fresh
        # snapshots elsewhere (CI artifacts).  A plain run writes nothing.
        if args.write:
            path = write_snapshot(snapshot, args.baseline_dir)
            print(f"[repro.bench] wrote {path}", file=sys.stderr)
        elif args.out is not None:
            path = write_snapshot(snapshot, args.out)
            print(f"[repro.bench] wrote {path}", file=sys.stderr)
        if not args.write:
            baseline = load_snapshot(case.name, args.baseline_dir)
            if baseline is None:
                print(f"[repro.bench] no baseline for {case.name}; "
                      f"seed one with: repro bench --write "
                      + ("--quick " if args.quick else "") + case.name,
                      file=sys.stderr)
                continue
            try:
                comparisons = compare_snapshots(snapshot, baseline,
                                                tolerance=tolerance)
            except BenchError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            for comp in comparisons:
                print("[repro.bench] " + comp.summary())
                regressed = regressed or comp.regressed
    if regressed and args.check:
        print("[repro.bench] regression beyond tolerance (see above)",
              file=sys.stderr)
        return 1
    return 0


def _run_cache(args) -> int:
    """``repro cache stats|clear|prune``."""
    cache_dir = args.cache_dir or default_cache_dir()
    if cache_dir.exists() and not cache_dir.is_dir():
        print(f"error: --cache-dir {cache_dir} exists and is not a "
              f"directory", file=sys.stderr)
        return 2
    cache = ResultCache(cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache directory: {cache.directory}")
        print(f"entries: {stats['entries']}  "
              f"bytes: {stats['bytes']}  corrupt: {stats['corrupt']}")
        from .exec import code_fingerprint
        current = code_fingerprint()
        for code, count in stats["by_code"].items():
            marker = "  (current)" if code == current else ""
            print(f"  {code[:16]}: {count} entries{marker}")
    elif args.action == "clear":
        print(f"removed {cache.clear()} entries from {cache.directory}")
    elif args.dry_run:
        candidates = cache.prune_candidates()
        total = sum(size for _, size, _ in candidates)
        print(f"would prune {len(candidates)} stale entries "
              f"({total} bytes) from {cache.directory}")
        for path, size, _ in candidates:       # oldest first
            print(f"  {path.relative_to(cache.directory)}  "
                  f"{size} bytes")
    else:
        print(f"pruned {cache.prune()} stale entries from "
              f"{cache.directory}")
    return 0


def _dispatch(args) -> int:
    command = args.command

    if command in ("table1", "all"):
        _emit(run_table1(), args.out, "table1")
    if command in ("table2", "all"):
        _emit(run_table2(num_cores=args.cores, scale=args.scale).table(),
              args.out, "table2")
    if command in ("fig5", "all"):
        iterations = getattr(args, "iterations", 60)
        result = run_fig5(iterations=iterations)
        _emit(result.table(), args.out, "fig5")
        if not result.is_ordered():
            print("WARNING: CSW > DSW > GL ordering violated",
                  file=sys.stderr)
            return 1
    if command in ("figs", "all"):
        fig6, fig7 = run_fig6_and_fig7(num_cores=args.cores,
                                       scale=args.scale)
        _emit(fig6.table() + "\n\n" + fig6.stacked_table(), args.out,
              "fig6")
        _emit(fig7.table() + "\n\n" + fig7.stacked_table(), args.out,
              "fig7")
    if command in ("energy", "all"):
        result = run_energy(num_cores=args.cores, scale=args.scale)
        text = result.table() + (
            f"\naverage network-energy reduction: "
            f"{result.average_reduction() * 100:.1f}%  "
            f"(G-line share of GL energy: "
            f"{result.gline_share() * 100:.2f}%)")
        _emit(text, args.out, "energy")
    if command in ("stages", "all"):
        result = run_stages(num_cores=args.cores, scale=args.scale)
        _emit(result.table(), args.out, "stages")
    if command in ("shootout", "all"):
        iterations = getattr(args, "iterations", 30)
        result = run_shootout(iterations=iterations)
        _emit(result.table(), args.out, "shootout")
    if command in ("collectives", "all"):
        kwargs = {}
        if getattr(args, "core_counts", None):
            kwargs["core_counts"] = tuple(args.core_counts)
        result = run_collectives(
            iterations=getattr(args, "iterations", 24),
            value_width=getattr(args, "value_width", 8), **kwargs)
        _emit(result.table(), args.out, "collectives")
    if command in ("ablations", "all"):
        names = getattr(args, "names", None) or list(ABLATIONS)
        for name in names:
            _emit(ABLATIONS[name](args.cores).table(), args.out,
                  f"ablation_{name}")
    if command == "resilience":
        if args.recovery:
            kwargs = {}
            if args.duties is not None:
                kwargs["duties"] = tuple(args.duties)
            result = run_recovery(num_cores=args.cores,
                                  iterations=args.iterations,
                                  seed=args.seed, failover=args.failover,
                                  **kwargs)
            _emit(result.table(), args.out, "resilience_recovery")
        else:
            kwargs = {}
            if args.rates is not None:
                kwargs["rates"] = tuple(args.rates)
            result = run_resilience(num_cores=args.cores,
                                    iterations=args.iterations,
                                    seed=args.seed, failover=args.failover,
                                    **kwargs)
            _emit(result.table(), args.out, "resilience")
    if command == "integrity":
        kwargs = {}
        if args.rates is not None:
            kwargs["rates"] = tuple(args.rates)
        if args.modes is not None:
            kwargs["modes"] = tuple(args.modes)
        result = run_integrity(num_cores=args.cores,
                               iterations=args.iterations,
                               seed=args.seed, **kwargs)
        _emit(result.table(), args.out, "integrity")
    if command == "run":
        from .chip.cmp import CMP
        from .experiments.runner import paper_config

        workload = WORKLOADS[args.workload](args.scale)
        chip = CMP(paper_config(args.cores), barrier=args.barrier)
        result = chip.run(workload)
        print(result.summary())
        if args.verify:
            workload.verify(chip)
            print("dataflow verified against the reference")
    if command == "trace":
        return _run_trace(args)
    if command == "verify":
        return _run_verify(args)
    return 0


#: Artifact file extension per trace format.
TRACE_EXTENSIONS = {"perfetto": "json", "vcd": "vcd", "jsonl": "jsonl"}


def _run_trace(args) -> int:
    """One fully-observed run, exported as a trace artifact.

    The run's *result* is cached with the metrics snapshot stripped, so a
    later untraced run of the same point is a byte-identical cache hit --
    tracing seeds the cache, it never forks it.
    """
    from .exec import RunSpec, current_executor
    from .obs import (DEFAULT_CAPACITY, Observability, write_jsonl,
                      write_perfetto, write_vcd)

    if args.experiment == "fig5":
        # Exactly the spec run_fig5 builds for this (barrier, cores) point.
        workload = SyntheticBarrierWorkload(iterations=args.iterations)
    else:
        workload = WORKLOADS[args.experiment](args.scale)
    spec = RunSpec.make(workload, args.barrier, num_cores=args.cores)
    capacity = DEFAULT_CAPACITY if args.capacity is None \
        else (None if args.capacity == 0 else args.capacity)
    obs = Observability.full(args.cores, capacity=capacity)
    result = spec.execute(obs=obs)

    executor = current_executor()
    executor.misses += 1
    executor.metrics.counter("exec.cache.misses").inc()
    key = None
    if executor.cache is not None:
        key = spec.key()
        executor.cache.put(key, spec.fingerprint(),
                           dict(result.to_dict(), metrics={}))

    ext = TRACE_EXTENSIONS[args.fmt]
    out = args.out if args.out is not None else Path(f"trace.{ext}")
    events = obs.tracer.events
    if args.fmt == "perfetto":
        write_perfetto(events, out, accounting=obs.tracer.accounting())
    elif args.fmt == "vcd":
        write_vcd(events, out)
    else:
        write_jsonl(events, out)
    if key is not None:
        # Keep a copy keyed next to the cache entry, so the artifact that
        # explains a cached number is findable from the number's key.
        keyed = executor.cache.directory / key[:2] / f"{key}.trace.{ext}"
        keyed.parent.mkdir(parents=True, exist_ok=True)
        keyed.write_bytes(Path(out).read_bytes())

    executor.metrics.merge(obs.metrics)
    acc = obs.tracer.accounting()
    print(f"[repro.obs] {out} ({args.fmt}): {acc['retained']} events "
          f"retained, {acc['dropped']} dropped, {acc['filtered']} filtered",
          file=sys.stderr)
    if key is not None:
        print(f"[repro.obs] artifact keyed at {key[:2]}/{key}.trace.{ext}",
              file=sys.stderr)
    print(result.summary())
    return 0


def _run_verify(args) -> int:
    """``repro verify``: model-check one (mesh, scenario, mutation).

    Exit codes: 0 when the outcome matches the scenario's registered
    expectation (all properties proved, or -- for violation demos and
    mutations -- a counterexample found *and*, unless ``--no-replay``,
    confirmed on the real simulator); 1 otherwise; 2 for usage errors.
    """
    from . import verify as v
    from .exec import current_executor

    if args.list_registry:
        print("scenarios:")
        for name in sorted(v.SCENARIOS):
            sc = v.SCENARIOS[name]
            print(f"  {name} [{sc.expect}]: {sc.description}")
        print("mutations:")
        for name in sorted(v.MUTATIONS):
            print(f"  {name}: {v.MUTATIONS[name].description}")
        return 0
    try:
        rows_s, _, cols_s = args.mesh.lower().partition("x")
        rows, cols = int(rows_s), int(cols_s)
    except ValueError:
        print(f"error: --mesh must look like RxC, got {args.mesh!r}",
              file=sys.stderr)
        return 2
    try:
        scenario = v.get_scenario(args.scenario)
        if args.mutation is not None:
            v.get_mutation(args.mutation)
        model = v.GLBarrierModel(rows, cols, scenario=scenario,
                                 mutation=args.mutation,
                                 episodes=args.episodes)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.shard_depth > 0:
        prefixes, early = v.shard_prefixes(model, args.shard_depth)
        if early is not None:
            # The violation is shallower than the shard depth; a direct
            # exploration refinds it immediately with full verdicts.
            result = v.explore(model, max_states=args.max_states)
        else:
            specs = [v.VerifyShardSpec(
                         rows=rows, cols=cols, scenario=scenario.name,
                         mutation=args.mutation, episodes=args.episodes,
                         prefix=p, max_states=args.max_states)
                     for p in prefixes]
            print(f"[repro.verify] {len(specs)} shard(s) at depth "
                  f"{args.shard_depth}", file=sys.stderr)
            shard_results = current_executor().run(specs)
            result = v.merge_shards(
                [r for r in shard_results if r is not None], model)
    else:
        result = v.explore(model, max_states=args.max_states)

    print(v.render_report(model, result))

    replay = None
    conc_path = None
    if result.violation is not None:
        print()
        print(v.render_counterexample(model, result.violation))
        if not args.no_replay:
            conc_path = v.concretize(model,
                                     result.violation.action_indices)
            replay = v.replay_on_simulator(
                rows, cols, conc_path.schedules, scenario=scenario,
                mutation=args.mutation, glitches=conc_path.glitches)
            print(f"simulator replay: {replay.summary()}")
            if args.export_prefix is not None:
                paths = v.export_counterexample(
                    replay, args.export_prefix,
                    {"property": result.violation.prop,
                     "message": result.violation.message})
                print(f"[repro.verify] counterexample exported: "
                      f"{paths['perfetto']}, {paths['vcd']}",
                      file=sys.stderr)

    if args.out is not None:
        args.out.write_text(json.dumps(
            v.report_dict(model, result, path=conc_path, replay=replay),
            indent=2, sort_keys=True) + "\n")
        print(f"[repro.verify] report written: {args.out}",
              file=sys.stderr)

    expect = scenario.expect
    if args.mutation is not None:
        expect = "violation"    # mutations must be refuted
    if expect == "violation":
        ok = result.violation is not None and (
            args.no_replay or (replay is not None and replay.confirmed))
    else:
        ok = result.ok and all(
            verdict in ("proved", "skipped")
            for verdict in result.properties.values())
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
