"""Run specifications: the unit of work the parallel executor schedules.

A :class:`RunSpec` captures everything that determines a simulation run --
the chip configuration, the workload (class + its primitive state), the
barrier kind, the seed and the event budget.  Two properties make it the
foundation of the executor:

* it is **picklable**, so a worker process can execute it verbatim, and
* it has a **stable content hash** (:meth:`RunSpec.key`) that also covers
  the simulator's code version, so a cache entry can never outlive the
  code that produced it.

Simulation is fully deterministic (the event engine breaks ties by
``(priority, seq)`` and no behavior-relevant iteration happens over
unordered containers), so a spec's key identifies its result exactly --
the contract pinned down by ``tests/exec/test_determinism.py``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..chip.results import RunResult
from ..common.errors import ReproError
from ..common.params import CMPConfig
from ..workloads.base import Workload
from .version import code_fingerprint

#: Types allowed (recursively, via tuple/list) in a workload fingerprint.
_PRIMITIVES = (bool, int, float, str, type(None))


class SpecError(ReproError):
    """The workload cannot be captured as a stable, hashable spec."""


def _freeze(value, path: str):
    """Return a JSON-stable form of *value* or raise :class:`SpecError`."""
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (tuple, list)):
        return [_freeze(v, path) for v in value]
    raise SpecError(
        f"workload attribute {path!r} of type {type(value).__name__} is not "
        f"a primitive; cannot build a stable cache key for it")


def workload_fingerprint(workload: Workload) -> dict:
    """Stable, JSON-serializable digest input for a workload instance.

    Captures the class (dotted path) and every public instance attribute,
    which for the repo's workloads fully determines behavior (they are
    deterministic functions of their primitive parameters and seeds).
    Non-primitive public attributes raise :class:`SpecError` -- refusing
    to cache is always safer than caching under an incomplete key.
    Attributes starting with ``_`` are scratch state and are skipped.
    """
    if not isinstance(workload, Workload):
        raise SpecError(f"not a Workload: {type(workload).__name__}")
    cls = type(workload)
    state = {}
    for name in sorted(vars(workload)):
        if name.startswith("_"):
            continue
        state[name] = _freeze(getattr(workload, name),
                              f"{cls.__name__}.{name}")
    return {"cls": f"{cls.__module__}.{cls.__qualname__}", "state": state}


@dataclass
class RunSpec:
    """One independent simulation run, ready for dispatch or hashing."""

    workload: Workload
    barrier: str
    config: CMPConfig
    max_events: int | None = None
    #: Reserved entropy input.  The repo's workloads carry their own seeds
    #: as constructor state (already in the fingerprint); this field keys
    #: future stochastic sweeps without a cache-format change.
    seed: int = 0

    @classmethod
    def make(cls, workload: Workload, barrier: str,
             num_cores: int = 32, config: CMPConfig | None = None,
             max_events: int | None = None, seed: int = 0) -> "RunSpec":
        """Build a spec the way ``run_benchmark`` builds a run (a ``None``
        config means the paper's Table-1 configuration for *num_cores*).

        Raises :class:`SpecError` if the workload cannot be fingerprinted.
        """
        from ..experiments.runner import paper_config

        cfg = config or paper_config(num_cores)
        workload_fingerprint(workload)  # validate spec-ability eagerly
        return cls(workload=workload, barrier=str(barrier).lower(),
                   config=cfg, max_events=max_events, seed=seed)

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> dict:
        """The full cache-key input as a plain dict (for inspection)."""
        config = self.config.to_dict()
        # The engine backend is result-invariant (the batched kernel is
        # bit-identical to the heap reference -- the dual-run oracle's
        # contract), so both backends share cache entries.
        config.pop("sim_backend", None)
        return {
            "config": config,
            "workload": workload_fingerprint(self.workload),
            "barrier": self.barrier,
            "seed": self.seed,
            "max_events": self.max_events,
            "code": code_fingerprint(),
        }

    def key(self) -> str:
        """Stable content hash identifying this run (and its result)."""
        blob = json.dumps(self.fingerprint(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------ #
    def execute(self, obs=None) -> RunResult:
        """Run the simulation described by this spec (in this process).

        *obs* (an :class:`repro.obs.Observability`) attaches tracing and
        metric streams for this run only; it is deliberately not part of
        the spec or its key -- observability never changes results.
        """
        from ..chip.cmp import CMP

        chip = CMP(self.config, barrier=self.barrier, obs=obs)
        return chip.run(self.workload, max_events=self.max_events)
