"""Code-version fingerprint for cache invalidation.

A cached result is only valid for the exact simulator that produced it, so
the cache key includes a digest of every ``repro`` source file.  Any edit
to the package -- a timing-model tweak, a protocol fix -- changes the
fingerprint and silently invalidates the whole cache, which is the safe
default for a research artifact (stale numbers are worse than recomputed
ones).

The fingerprint is content-based (file bytes, not mtimes), so it is stable
across checkouts, machines and processes running the same code.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

#: Root of the ``repro`` package (the directory this file lives in, up one).
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` file of the ``repro`` package.

    Files are visited in sorted relative-path order and both the path and
    the content are hashed, so renames count as changes too.
    """
    digest = hashlib.sha256()
    for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
        rel = path.relative_to(_PACKAGE_ROOT).as_posix()
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
