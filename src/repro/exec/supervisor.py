"""Supervised execution: deadlines, retries, quarantine, clean shutdown.

The plain pool path in :mod:`repro.exec.parallel` assumes workers are
well-behaved: they return a result or raise a picklable exception.  Real
sweeps meet worse -- OOM-killed children, wedged runs, flaky hosts -- and
a bare pool turns any of those into a lost batch.  This module is the
job-supervisor answer:

* **One process per attempt.**  Each pending spec runs in its own
  ``multiprocessing`` ``Process`` with a dedicated pipe, so the parent can
  observe three distinct terminal states: a message arrived (``ok`` or
  ``sim-error``), the process died silently (``crash`` -- the exitcode
  says how), or a wall-clock deadline passed (``timeout`` -- the child is
  killed).
* **Deadlines.**  Per-spec, from an explicit ``timeout`` or derived from
  the spec's event budget (`deadline_for`).  No deadline means hangs are
  tolerated, exactly like the unsupervised path.
* **Bounded retries with full-jitter backoff.**  ``timeout`` and
  ``crash`` failures are environmental and retried up to ``retries``
  times, each after ``uniform(0, base * 2**attempt)`` seconds.
  ``sim-error`` failures are *deterministic* (the simulator is) and fail
  fast -- retrying would reproduce the same exception.
* **Quarantine.**  A spec that exhausts its retries is quarantined: a
  :class:`RunFailure` of kind ``quarantined`` records the last underlying
  kind, and -- under ``keep_going`` -- the sweep continues without it.
* **Graceful degradation.**  Every crash shrinks the in-flight width by
  one (never below 1), so a host that kills big pools decays toward
  serial execution instead of thrashing.
* **Clean interrupts.**  On SIGINT the supervisor stops launching,
  terminates and joins everything in flight (no zombies), journals an
  ``interrupted`` marker and re-raises -- everything already completed is
  in the cache and the journal, ready for ``repro resume``.

Chaos (:class:`~repro.faults.chaos.ChaosPlan`) is enacted *inside* the
worker, before the simulation starts, keyed by the supervisor's stable
dispatch ordinal -- so a seeded chaos run strikes the same attempts on
every machine, and results (when attempts survive) are byte-identical to
a calm run's.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait

from ..common.errors import ReproError
from ..faults.chaos import HANG, KILL, OOM, ChaosPlan
from .spec import RunSpec

#: Failure taxonomy (the ``kind`` field of :class:`RunFailure`).
TIMEOUT, CRASH, SIM_ERROR, QUARANTINED = \
    "timeout", "crash", "sim-error", "quarantined"

#: Deadline heuristic when only an event budget is known: a generous
#: floor plus a conservative per-event allowance (the simulator runs
#: far more than 10k events/s on any supported host).
DEADLINE_FLOOR_S = 10.0
SECONDS_PER_EVENT = 1e-4

#: Hang-chaos without a deadline would wedge forever; supervised runs
#: with ``hang_rate > 0`` and no explicit timeout get this one.
CHAOS_DEFAULT_TIMEOUT_S = 60.0

#: Default base for the full-jitter exponential backoff, seconds.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


def deadline_for(spec: RunSpec, timeout: float | None) -> float | None:
    """Wall-clock budget for one attempt at *spec* (None = unlimited).

    An explicit *timeout* wins; otherwise a spec with an event budget
    gets ``DEADLINE_FLOOR_S + max_events * SECONDS_PER_EVENT``.
    """
    if timeout is not None:
        return timeout
    if spec.max_events is not None:
        return DEADLINE_FLOOR_S + spec.max_events * SECONDS_PER_EVENT
    return None


@dataclass
class RunFailure:
    """One spec's terminal failure, reported positionally."""

    #: Position of the failed spec in the caller's batch.
    index: int
    #: Cache key (None when the executor runs uncached).
    key: str | None
    #: ``timeout | crash | sim-error | quarantined``.
    kind: str
    #: Attempts consumed (1 = failed on the first try, no retry left).
    attempts: int
    #: Human-readable cause: exception repr, exitcode, deadline.
    detail: str

    def __str__(self) -> str:
        where = f"spec[{self.index}]"
        if self.key:
            where += f" {self.key[:12]}"
        return (f"{where}: {self.kind} after {self.attempts} "
                f"attempt(s) -- {self.detail}")


class RunFailureError(ReproError):
    """A supervised batch had terminal failures (and ``keep_going`` was
    off, so partial results were cached but not returned)."""

    def __init__(self, failures: list[RunFailure]):
        self.failures = failures
        lines = "; ".join(str(f) for f in failures[:4])
        more = f" (+{len(failures) - 4} more)" if len(failures) > 4 else ""
        super().__init__(
            f"{len(failures)} run(s) failed: {lines}{more}")


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
def _enact_chaos(action: str | None, hang_seconds: float) -> None:
    """Carry out a chaos strike in the worker process (or return)."""
    if action == KILL:
        os._exit(40)                      # unclean exit, no traceback
    elif action == OOM:
        os.kill(os.getpid(), signal.SIGKILL)   # the OOM killer's signature
    elif action == HANG:
        deadline = time.monotonic() + hang_seconds
        while time.monotonic() < deadline:     # only SIGKILL ends this
            time.sleep(min(1.0, hang_seconds))


def _supervised_worker(conn, spec: RunSpec, chaos: dict | None,
                       token: str, attempt: int) -> None:
    """Process entry point: one attempt at one spec.

    Sends ``("ok", result_dict)`` or ``("sim-error", detail)`` over
    *conn*; a chaos strike (or a real crash) sends nothing and the parent
    reads the exitcode instead.
    """
    # Nested-parallelism guard: whatever ambient executor the parent had
    # installed (inherited wholesale under the fork start method), this
    # process must never fork its own pool or write the parent's cache.
    from .parallel import ParallelRunner, use_executor

    if chaos is not None:
        plan = ChaosPlan.from_dict(chaos)
        _enact_chaos(plan.roll(token, attempt), plan.hang_seconds)
    try:
        with use_executor(ParallelRunner(jobs=1, cache=None)):
            result = spec.execute().to_dict()
    except Exception as exc:            # noqa: BLE001 -- shipped, not hidden
        conn.send((SIM_ERROR, f"{type(exc).__name__}: {exc}"))
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
@dataclass
class _Task:
    """One pending spec's supervision state."""

    index: int                  # position in the caller's batch
    spec: RunSpec
    key: str | None
    token: str                  # stable chaos/dispatch ordinal
    attempt: int = 0            # 0-based attempt about to run / running
    ready_at: float = 0.0       # monotonic time the next attempt may start


class _InFlight:
    """A launched attempt: process + pipe + deadline."""

    def __init__(self, task: _Task, process, conn,
                 deadline: float | None):
        self.task = task
        self.process = process
        self.conn = conn
        self.started = time.monotonic()
        self.deadline = None if deadline is None \
            else self.started + deadline


class Supervisor:
    """Runs a batch of pending specs under full supervision.

    The constructor captures policy; :meth:`dispatch` executes one batch,
    caching and journaling as results land, and returns the list of
    :class:`RunFailure`\\ s (empty on full success).
    """

    def __init__(self, jobs: int, *, timeout: float | None = None,
                 retries: int = 2, keep_going: bool = False,
                 journal=None, chaos: ChaosPlan | None = None,
                 metrics=None, backoff_base: float = BACKOFF_BASE_S,
                 cache=None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = max(1, jobs)
        self.timeout = timeout
        if self.timeout is None and chaos is not None and chaos.hang_rate:
            self.timeout = CHAOS_DEFAULT_TIMEOUT_S
        self.retries = retries
        self.keep_going = keep_going
        self.journal = journal
        self.chaos = chaos if (chaos is not None and chaos.enabled) \
            else None
        self.metrics = metrics
        self.backoff_base = backoff_base
        self.cache = cache
        #: Runner-lifetime dispatch ordinal: the chaos token of the n-th
        #: pending spec ever enqueued.  Stable for a fixed command line,
        #: independent of the code fingerprint, so seeded chaos strikes
        #: the same runs on every commit.
        self._ordinal = 0
        # Backoff jitter: seeded so a retried sweep schedules (not
        # results -- delays never reach the journal) reproducibly.
        self._rng = random.Random(chaos.seed if chaos is not None else 0)

    # ------------------------------------------------------------------ #
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _ctx(self):
        import multiprocessing
        return multiprocessing.get_context()

    # ------------------------------------------------------------------ #
    def dispatch(self, pending, results: list) -> list[RunFailure]:
        """Run *pending* -- ``(index, spec, key)`` triples -- under
        supervision, filling ``results[index]`` and caching each success.

        Returns terminal failures; raises :class:`RunFailureError` for
        them instead when ``keep_going`` is off (after draining, caching
        and journaling everything else in flight).
        """
        ctx = self._ctx()
        queue: list[_Task] = []
        for index, spec, key in pending:
            queue.append(_Task(index=index, spec=spec, key=key,
                               token=str(self._ordinal)))
            self._ordinal += 1
        width = min(self.jobs, len(queue))
        if self.metrics is not None:
            self.metrics.gauge("exec.pool.width").set(width)
        inflight: list[_InFlight] = []
        failures: list[RunFailure] = []
        aborting = False        # a failure occurred and keep_going is off

        try:
            while queue or inflight:
                # Launch while there is width and ready work (when
                # aborting we only drain what is already in flight).
                now = time.monotonic()
                if not aborting:
                    ready = [t for t in queue if t.ready_at <= now]
                    while ready and len(inflight) < width:
                        task = ready.pop(0)
                        queue.remove(task)
                        inflight.append(self._launch(ctx, task))
                if not inflight:
                    if aborting:
                        break
                    # Everything pending is backing off; sleep to the
                    # soonest ready time.
                    soonest = min(t.ready_at for t in queue)
                    time.sleep(max(0.0, soonest - now))
                    continue

                self._await(inflight)
                for flight in list(inflight):
                    outcome = self._reap(flight)
                    if outcome is None:
                        continue            # still running
                    inflight.remove(flight)
                    kind, payload = outcome
                    task = flight.task
                    if kind == "ok":
                        self._complete(task, payload, results)
                        continue
                    if self.journal is not None:
                        self.journal.attempt(task.key or task.token,
                                             task.attempt, kind,
                                             detail=payload)
                    if kind == CRASH:
                        width = max(1, width - 1)
                        if self.metrics is not None:
                            self.metrics.gauge("exec.pool.width") \
                                .set(width)
                    if kind != SIM_ERROR and task.attempt < self.retries:
                        self._schedule_retry(task)
                        queue.append(task)
                        continue
                    failure = self._fail(task, kind, payload)
                    failures.append(failure)
                    if not self.keep_going:
                        aborting = True
        except KeyboardInterrupt:
            self._terminate_all(inflight)
            if self.journal is not None:
                self.journal.interrupted()
            raise
        if failures and not self.keep_going:
            raise RunFailureError(failures)
        return failures

    # ------------------------------------------------------------------ #
    def _launch(self, ctx, task: _Task) -> _InFlight:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        chaos = self.chaos.to_dict() if self.chaos is not None else None
        process = ctx.Process(
            target=_supervised_worker,
            args=(child_conn, task.spec, chaos, task.token, task.attempt),
            daemon=True)
        process.start()
        child_conn.close()
        return _InFlight(task, process, parent_conn,
                         deadline_for(task.spec, self.timeout))

    def _await(self, inflight: list[_InFlight]) -> None:
        """Block until a result lands, a process dies, or the nearest
        deadline (or a short poll tick) expires."""
        now = time.monotonic()
        waits = [0.1]
        for flight in inflight:
            if flight.deadline is not None:
                waits.append(flight.deadline - now)
        timeout = max(0.0, min(waits))
        handles = [f.conn for f in inflight] + \
            [f.process.sentinel for f in inflight]
        _conn_wait(handles, timeout)

    def _reap(self, flight: _InFlight):
        """Terminal state of *flight*, or None if it is still running.

        Returns ``("ok", result_dict)`` or ``(failure_kind, detail)``.
        """
        # Sample liveness BEFORE polling the pipe: a worker's last acts
        # are send-then-exit, so a death observed here guarantees any
        # result it produced is already visible to poll() below.  The
        # opposite order has a race -- an exit between poll() and
        # is_alive() would misread a completed run as a crash.
        alive = flight.process.is_alive()
        if flight.conn.poll():
            try:
                kind, payload = flight.conn.recv()
            except (EOFError, OSError):
                return self._crash_outcome(flight)
            flight.process.join()
            flight.conn.close()
            return (kind, payload)
        if not alive:
            flight.process.join()
            return self._crash_outcome(flight)
        if flight.deadline is not None \
                and time.monotonic() >= flight.deadline:
            self._kill(flight.process)
            flight.conn.close()
            elapsed = time.monotonic() - flight.started
            self._count("exec.timeouts")
            return (TIMEOUT, f"deadline {elapsed:.1f}s exceeded")
        return None

    def _crash_outcome(self, flight: _InFlight):
        flight.conn.close()
        self._count("exec.crashes")
        code = flight.process.exitcode
        how = f"signal {-code}" if (code is not None and code < 0) \
            else f"exitcode {code}"
        return (CRASH, f"worker died ({how})")

    @staticmethod
    def _kill(process) -> None:
        process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():          # SIGTERM ignored; escalate
            process.kill()
            process.join()

    def _terminate_all(self, inflight: list[_InFlight]) -> None:
        for flight in inflight:
            # Drain finished workers -- their results are real -- and
            # kill the rest so nothing is leaked.
            if flight.conn.poll():
                try:
                    kind, payload = flight.conn.recv()
                    if kind == "ok":
                        self._store(flight.task, payload)
                        if self.journal is not None:
                            self.journal.done(
                                flight.task.key or flight.task.token,
                                flight.task.attempt + 1)
                except (EOFError, OSError):
                    pass
            self._kill(flight.process)
            flight.conn.close()
        inflight.clear()

    # ------------------------------------------------------------------ #
    def _store(self, task: _Task, result_dict: dict) -> None:
        if self.cache is not None and task.key is not None:
            self.cache.put(task.key, task.spec.fingerprint(), result_dict)

    def _complete(self, task: _Task, result_dict: dict,
                  results: list) -> None:
        from .parallel import _result_decoder

        self._store(task, result_dict)
        results[task.index] = _result_decoder(task.spec)(result_dict)
        if self.journal is not None:
            self.journal.attempt(task.key or task.token, task.attempt,
                                 "ok")
            self.journal.done(task.key or task.token, task.attempt + 1)

    def _schedule_retry(self, task: _Task) -> None:
        delay = self._rng.uniform(
            0.0, min(BACKOFF_CAP_S,
                     self.backoff_base * (2 ** task.attempt)))
        task.attempt += 1
        task.ready_at = time.monotonic() + delay
        self._count("exec.retries")
        if self.metrics is not None:
            self.metrics.histogram("exec.retry.delay_ms") \
                .record(int(delay * 1000))

    def _fail(self, task: _Task, kind: str, detail: str) -> RunFailure:
        attempts = task.attempt + 1
        if kind == SIM_ERROR:
            self._count("exec.sim_errors")
            failure = RunFailure(index=task.index, key=task.key,
                                 kind=SIM_ERROR, attempts=attempts,
                                 detail=detail)
        else:
            # Retries exhausted: the spec is poison; quarantine it.
            self._count("exec.quarantined")
            failure = RunFailure(index=task.index, key=task.key,
                                 kind=QUARANTINED, attempts=attempts,
                                 detail=f"last failure: {kind} ({detail})")
        if self.journal is not None:
            self.journal.quarantine(task.key or task.token, attempts,
                                    kind)
        return failure
