"""Content-addressed on-disk result cache.

Each entry is one JSON file named by the :meth:`RunSpec.key` hash, stored
under a two-character fan-out directory (``ab/abcdef....json``).  The
payload carries the serialized :class:`~repro.chip.results.RunResult`
(the same dict the worker IPC ships) plus the spec fingerprint that
produced it, so an entry is self-describing and auditable with any JSON
tool.

Invalidation is purely key-based: the key covers the chip config, the
workload state, the barrier kind, the seed, the event budget and the
simulator's code fingerprint, so editing any simulator source orphans old
entries rather than returning stale numbers.  Orphans are garbage, not
hazards; ``clear()`` removes everything.

Writes are atomic (temp file + ``os.replace``), so a cache shared by
concurrent sweeps never serves a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Persistent ``key -> RunResult.to_dict()`` store."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached result dict for *key*, or ``None`` on a miss.

        A corrupt entry (interrupted write from a pre-atomic-rename
        version, disk fault) counts as a miss and is removed.
        """
        path = self._path(key)
        try:
            with path.open() as fh:
                entry = json.load(fh)
            return entry["result"]
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # ValueError covers both json.JSONDecodeError (truncated or
            # garbled text) and UnicodeDecodeError (binary garbage);
            # TypeError covers well-formed JSON of the wrong shape (e.g.
            # ``null`` or a list, where ``entry["result"]`` can't index).
            # Whatever the flavor of corruption: treat it as a miss and
            # remove the bad file so it cannot hurt the next run either.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass        # e.g. the cache path is not a directory
            return None

    def put(self, key: str, fingerprint: dict, result: dict) -> None:
        """Store *result* (a ``RunResult.to_dict()``) under *key*."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "fingerprint": fingerprint, "result": result}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------ #
    def entries(self):
        """Yield ``(path, entry | None)`` for every stored file, in
        sorted order; ``None`` marks an unreadable/corrupt entry."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("??/*.json")):
            try:
                with path.open() as fh:
                    entry = json.load(fh)
                if not isinstance(entry, dict) or "result" not in entry:
                    entry = None
            except (ValueError, OSError):
                entry = None
            yield path, entry

    def stats(self) -> dict:
        """Aggregate inventory: entry/byte counts and a per-code-
        fingerprint breakdown (orphaned fingerprints are reclaimable)."""
        total = nbytes = corrupt = 0
        by_code: dict[str, int] = {}
        for path, entry in self.entries():
            total += 1
            try:
                nbytes += path.stat().st_size
            except OSError:
                pass
            if entry is None:
                corrupt += 1
                continue
            code = str((entry.get("fingerprint") or {}).get("code",
                                                           "<unknown>"))
            by_code[code] = by_code.get(code, 0) + 1
        return {"entries": total, "bytes": nbytes, "corrupt": corrupt,
                "by_code": dict(sorted(by_code.items()))}

    def prune_candidates(self, current_code: str | None = None):
        """``(path, bytes, mtime)`` of every entry :meth:`prune` would
        evict -- stale code fingerprints and corrupt files -- oldest
        first (mtime, then path, so the order is total even when a
        filesystem's timestamps tie).  This is the eviction order:
        ``prune --dry-run`` reports it and ``prune`` deletes in it."""
        if current_code is None:
            from .version import code_fingerprint
            current_code = code_fingerprint()
        candidates = []
        for path, entry in self.entries():
            code = None if entry is None \
                else (entry.get("fingerprint") or {}).get("code")
            if code != current_code:
                try:
                    stat = path.stat()
                except OSError:
                    continue            # raced away; nothing to evict
                candidates.append((path, stat.st_size, stat.st_mtime))
        candidates.sort(key=lambda item: (item[2], str(item[0])))
        return candidates

    def prune(self, current_code: str | None = None, *,
              dry_run: bool = False) -> int:
        """Delete entries whose code fingerprint is not *current_code*
        (default: this tree's), plus corrupt ones; returns the number
        removed (or, under *dry_run*, the number that would be -- with
        no filesystem writes).  Pruned entries were unreachable anyway
        -- the key embeds the fingerprint -- so this only reclaims
        disk."""
        candidates = self.prune_candidates(current_code)
        if not dry_run:
            for path, _, _ in candidates:
                path.unlink(missing_ok=True)
        return len(candidates)

    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("??/*.json")) \
            if self.directory.is_dir() else 0

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("??/*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
