"""Parallel experiment executor with cache-aware, supervisable dispatch.

:class:`ParallelRunner` takes batches of independent :class:`RunSpec`\\ s
and returns their :class:`~repro.chip.results.RunResult`\\ s, fanning cache
misses out over ``multiprocessing`` workers.  Three invariants keep it a
drop-in replacement for the old sequential loops:

* **Same numbers.**  Simulation is deterministic, so a result is identical
  whether it came from this process, a worker, or the cache.  Every result
  -- including in-process ones -- passes through the
  ``RunResult.to_dict()``/``from_dict()`` round trip, so all paths return
  byte-for-byte the same object graph.
* **Order-preserving.**  ``run(specs)`` returns results positionally,
  regardless of which were hits and which ran where.
* **Parent-only cache writes.**  Workers only compute; the parent stores
  results *as they complete* (association-preserving async dispatch), so
  work finished before a batch error is never lost, and the cache needs
  no cross-process locking.

Two dispatch paths share those invariants:

* the **basic** path (default) -- a ``Pool`` of long-lived workers,
  byte-identical in behavior and output to the pre-supervision executor;
* the **supervised** path (:mod:`repro.exec.supervisor`) -- engaged by
  any of ``timeout``, ``retries``, ``keep_going``, ``journal`` or
  ``chaos`` -- which adds per-spec deadlines, crash/hang detection,
  bounded retries with backoff, quarantine and resumable journaling.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Iterator, Sequence

from ..chip.results import RunResult
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .spec import RunSpec


def _result_decoder(spec):
    """The dict->result decoder for *spec*'s result type.

    ``RunSpec`` produces ``RunResult``; other spec kinds (e.g.
    :class:`~repro.verify.shard.VerifyShardSpec`) advertise their own
    decoder via a ``result_from_dict`` attribute.  The cache stores plain
    dicts either way, so storage and IPC stay format-agnostic."""
    return getattr(spec, "result_from_dict", RunResult.from_dict)


def _execute_to_dict(spec: RunSpec) -> dict:
    """Worker entry point: run one spec, ship the result as a plain dict
    (the same format the cache stores).

    The ambient executor is forced to a serial, uncached runner for the
    duration: under the ``fork`` start method a worker inherits the
    parent's executor, and a workload that (transitively) calls
    ``run_many`` would otherwise fork a pool *inside* the pool and write
    the cache from a process that must not own it.
    """
    with use_executor(ParallelRunner(jobs=1, cache=None)):
        return spec.execute().to_dict()


class ParallelRunner:
    """Executes batches of runs over worker processes, consulting a cache.

    The supervision keywords are all opt-in; a runner constructed with
    none of them behaves exactly like the pre-supervision executor.

    :param timeout: per-spec wall-clock deadline in seconds (supervised).
    :param retries: bounded retries for crashed/timed-out attempts
        (supervised; default 2 once supervision is engaged).
    :param keep_going: return partial results -- failed positions are
        ``None`` and recorded in :attr:`failures` -- instead of raising
        :class:`~repro.exec.supervisor.RunFailureError`.
    :param journal: a :class:`~repro.exec.journal.SweepJournal` receiving
        hit/attempt/done/quarantine records (enables ``repro resume``).
    :param chaos: a :class:`~repro.faults.ChaosPlan`; workers are
        killed/hung/OOMed per its seeded schedule (testing the
        supervisor is the only sane use).
    """

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 start_method: str | None = None, *,
                 timeout: float | None = None,
                 retries: int | None = None,
                 keep_going: bool = False,
                 journal=None,
                 chaos=None,
                 backoff_base: float | None = None):
        #: Worker-pool width; ``None`` means one worker per CPU.
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        #: ``None`` disables caching entirely.
        self.cache = cache
        self.start_method = start_method
        self.timeout = timeout
        self.keep_going = keep_going
        self.journal = journal
        self.chaos = chaos if (chaos is not None and chaos.enabled) \
            else None
        #: Engaged by any supervision knob; never by plain jobs/cache.
        self.supervised = (timeout is not None or retries is not None
                           or keep_going or journal is not None
                           or self.chaos is not None)
        #: Effective retry budget (crash/timeout only; sim-errors are
        #: deterministic and never retried).
        self.retries = retries if retries is not None \
            else (2 if self.supervised else 0)
        self.backoff_base = backoff_base
        #: Batch-lifetime counters for the CLI's summary line.
        self.hits = 0
        self.misses = 0
        #: Terminal :class:`~repro.exec.supervisor.RunFailure`\\ s across
        #: this runner's lifetime (only populated under ``keep_going``;
        #: otherwise they arrive inside :class:`RunFailureError`).
        self.failures = []
        #: The same counters as metric streams ("exec.cache.hits" /
        #: "exec.cache.misses", plus "exec.retries" / "exec.timeouts" /
        #: "exec.crashes" / "exec.quarantined" when supervised),
        #: exportable via ``--metrics`` -- not just a throwaway print.
        self.metrics = MetricsRegistry()
        self._supervisor = None

    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute *specs*, returning results in the same order.

        Cache hits are served without simulating; misses run in-process
        (one miss, or ``jobs == 1``, unsupervised) or across worker
        processes, then are written back to the cache as each completes.
        Under ``keep_going`` a failed spec's slot is ``None`` and the
        failure is appended to :attr:`failures`.
        """
        results: list[RunResult | None] = [None] * len(specs)
        pending: list[tuple[int, RunSpec, str | None]] = []
        for i, spec in enumerate(specs):
            key = spec.key() if self.cache is not None else None
            if key is not None:
                stored = self.cache.get(key)
                if stored is not None:
                    self.hits += 1
                    self.metrics.counter("exec.cache.hits").inc()
                    if self.journal is not None:
                        self.journal.hit(key)
                    results[i] = _result_decoder(spec)(stored)
                    continue
            self.misses += 1
            self.metrics.counter("exec.cache.misses").inc()
            pending.append((i, spec, key))

        if pending:
            if self.supervised:
                self._run_supervised(pending, results)
            else:
                self._run_basic(pending, results)
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    # ------------------------------------------------------------------ #
    # Basic path: the pre-supervision pool, made association-preserving.
    # ------------------------------------------------------------------ #
    def _store(self, index: int, spec: RunSpec, key: str | None,
               result_dict: dict, results: list) -> None:
        if key is not None:
            self.cache.put(key, spec.fingerprint(), result_dict)
        results[index] = _result_decoder(spec)(result_dict)

    def _run_basic(self, pending, results: list) -> None:
        """Unsupervised dispatch.  Each result is cached the moment it
        lands, so a later spec's exception (raised after the loop, with
        its original type) no longer forfeits completed work."""
        first_error: BaseException | None = None
        if self.jobs > 1 and len(pending) > 1:
            ctx = multiprocessing.get_context(self.start_method)
            with ctx.Pool(min(self.jobs, len(pending))) as pool:
                handles = [(i, spec, key,
                            pool.apply_async(_execute_to_dict, (spec,)))
                           for i, spec, key in pending]
                for i, spec, key, handle in handles:
                    try:
                        result_dict = handle.get()
                    except BaseException as exc:  # noqa: BLE001
                        if first_error is None:
                            first_error = exc
                        continue
                    self._store(i, spec, key, result_dict, results)
        else:
            for i, spec, key in pending:
                try:
                    result_dict = _execute_to_dict(spec)
                except BaseException as exc:  # noqa: BLE001
                    first_error = exc
                    break       # serial: nothing later has completed
                self._store(i, spec, key, result_dict, results)
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------ #
    # Supervised path
    # ------------------------------------------------------------------ #
    def _run_supervised(self, pending, results: list) -> None:
        from .supervisor import BACKOFF_BASE_S, Supervisor

        if self._supervisor is None:
            self._supervisor = Supervisor(
                self.jobs, timeout=self.timeout, retries=self.retries,
                keep_going=self.keep_going, journal=self.journal,
                chaos=self.chaos, metrics=self.metrics,
                backoff_base=(self.backoff_base
                              if self.backoff_base is not None
                              else BACKOFF_BASE_S),
                cache=self.cache)
        self.failures.extend(self._supervisor.dispatch(pending, results))

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line cache-hit/miss digest for the CLI."""
        total = self.hits + self.misses
        failed = f", {len(self.failures)} failed" if self.failures else ""
        if self.cache is None:
            return f"cache disabled; {total} runs executed{failed}"
        rate = (self.hits / total * 100) if total else 0.0
        return (f"{self.hits}/{total} cache hits ({rate:.0f}%), "
                f"{self.misses} simulated{failed}  "
                f"[dir={self.cache.directory}, jobs={self.jobs}]")


# ---------------------------------------------------------------------- #
# Ambient executor: library code routes through whatever is current, so
# the CLI (or a test) can widen the pool / enable the cache for everything
# below it without threading an argument through every driver.
# ---------------------------------------------------------------------- #
#: The default executor: sequential, uncached -- byte-identical behavior
#: to the pre-executor code for library users who never opt in.
_DEFAULT = ParallelRunner(jobs=1, cache=None)
_current: ParallelRunner = _DEFAULT


def current_executor() -> ParallelRunner:
    """The executor experiment drivers route through."""
    return _current


@contextmanager
def use_executor(executor: ParallelRunner) -> Iterator[ParallelRunner]:
    """Install *executor* as the ambient executor within the block."""
    global _current
    previous = _current
    _current = executor
    try:
        yield executor
    finally:
        _current = previous
