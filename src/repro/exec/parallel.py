"""Parallel experiment executor with cache-aware dispatch.

:class:`ParallelRunner` takes batches of independent :class:`RunSpec`\\ s
and returns their :class:`~repro.chip.results.RunResult`\\ s, fanning cache
misses out over a ``multiprocessing`` pool.  Three invariants keep it a
drop-in replacement for the old sequential loops:

* **Same numbers.**  Simulation is deterministic, so a result is identical
  whether it came from this process, a worker, or the cache.  Every result
  -- including in-process ones -- passes through the
  ``RunResult.to_dict()``/``from_dict()`` round trip, so all three paths
  return byte-for-byte the same object graph.
* **Order-preserving.**  ``run(specs)`` returns results positionally,
  regardless of which were hits and which ran where.
* **No worker-side cache writes.**  Workers only compute; the parent
  stores results, so the cache never needs cross-process locking.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Iterator, Sequence

from ..chip.results import RunResult
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .spec import RunSpec


def _execute_to_dict(spec: RunSpec) -> dict:
    """Worker entry point: run one spec, ship the result as a plain dict
    (the same format the cache stores)."""
    return spec.execute().to_dict()


class ParallelRunner:
    """Executes batches of runs over a worker pool, consulting a cache."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 start_method: str | None = None):
        #: Worker-pool width; ``None`` means one worker per CPU.
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        #: ``None`` disables caching entirely.
        self.cache = cache
        self.start_method = start_method
        #: Batch-lifetime counters for the CLI's summary line.
        self.hits = 0
        self.misses = 0
        #: The same counters as metric streams ("exec.cache.hits" /
        #: "exec.cache.misses"), exportable via ``--metrics`` -- not just
        #: a throwaway stderr print.
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute *specs*, returning results in the same order.

        Cache hits are served without simulating; misses run in-process
        (one miss, or ``jobs == 1``) or across the worker pool, then are
        written back to the cache.
        """
        results: list[RunResult | None] = [None] * len(specs)
        pending: list[tuple[int, RunSpec, str | None]] = []
        for i, spec in enumerate(specs):
            key = spec.key() if self.cache is not None else None
            if key is not None:
                stored = self.cache.get(key)
                if stored is not None:
                    self.hits += 1
                    self.metrics.counter("exec.cache.hits").inc()
                    results[i] = RunResult.from_dict(stored)
                    continue
            self.misses += 1
            self.metrics.counter("exec.cache.misses").inc()
            pending.append((i, spec, key))

        if pending:
            to_run = [spec for _, spec, _ in pending]
            if self.jobs > 1 and len(pending) > 1:
                ctx = multiprocessing.get_context(self.start_method)
                with ctx.Pool(min(self.jobs, len(pending))) as pool:
                    dicts = pool.map(_execute_to_dict, to_run)
            else:
                dicts = [_execute_to_dict(spec) for spec in to_run]
            for (i, spec, key), result_dict in zip(pending, dicts):
                if key is not None:
                    self.cache.put(key, spec.fingerprint(), result_dict)
                results[i] = RunResult.from_dict(result_dict)
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line cache-hit/miss digest for the CLI."""
        total = self.hits + self.misses
        if self.cache is None:
            return f"cache disabled; {total} runs executed"
        rate = (self.hits / total * 100) if total else 0.0
        return (f"{self.hits}/{total} cache hits ({rate:.0f}%), "
                f"{self.misses} simulated  "
                f"[dir={self.cache.directory}, jobs={self.jobs}]")


# ---------------------------------------------------------------------- #
# Ambient executor: library code routes through whatever is current, so
# the CLI (or a test) can widen the pool / enable the cache for everything
# below it without threading an argument through every driver.
# ---------------------------------------------------------------------- #
#: The default executor: sequential, uncached -- byte-identical behavior
#: to the pre-executor code for library users who never opt in.
_DEFAULT = ParallelRunner(jobs=1, cache=None)
_current: ParallelRunner = _DEFAULT


def current_executor() -> ParallelRunner:
    """The executor experiment drivers route through."""
    return _current


@contextmanager
def use_executor(executor: ParallelRunner) -> Iterator[ParallelRunner]:
    """Install *executor* as the ambient executor within the block."""
    global _current
    previous = _current
    _current = executor
    try:
        yield executor
    finally:
        _current = previous
