"""Parallel experiment execution with a persistent result cache.

The paper's evaluation is dozens of independent ``(config, workload,
barrier)`` simulations; this subsystem fans them out over a process pool
and memoizes every completed run on disk:

* :class:`RunSpec` -- a picklable, content-hashable description of one run
  (chip config + workload state + barrier + seed + code version).
* :class:`ResultCache` -- content-addressed JSON store; the cache format
  is exactly ``RunResult.to_dict()``, the same dict the worker IPC ships.
* :class:`ParallelRunner` -- batch executor (``jobs`` workers) that serves
  hits from the cache and writes back misses.
* :func:`current_executor` / :func:`use_executor` -- the ambient executor
  all of :mod:`repro.experiments` routes through; the CLI's ``--jobs``,
  ``--cache-dir`` and ``--no-cache`` flags install one here.

See ``docs/parallel-execution.md`` for the design and the cache-key
definition.
"""

from .cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from .parallel import ParallelRunner, current_executor, use_executor
from .spec import RunSpec, SpecError, workload_fingerprint
from .version import code_fingerprint

__all__ = [
    "CACHE_DIR_ENV", "ResultCache", "default_cache_dir",
    "ParallelRunner", "current_executor", "use_executor",
    "RunSpec", "SpecError", "workload_fingerprint",
    "code_fingerprint",
]
