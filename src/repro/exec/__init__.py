"""Parallel experiment execution with a persistent result cache.

The paper's evaluation is dozens of independent ``(config, workload,
barrier)`` simulations; this subsystem fans them out over worker
processes, memoizes every completed run on disk, and -- when asked --
supervises the whole sweep like a job scheduler:

* :class:`RunSpec` -- a picklable, content-hashable description of one run
  (chip config + workload state + barrier + seed + code version).
* :class:`ResultCache` -- content-addressed JSON store; the cache format
  is exactly ``RunResult.to_dict()``, the same dict the worker IPC ships.
* :class:`ParallelRunner` -- batch executor (``jobs`` workers) that serves
  hits from the cache and writes back misses as they complete.
* :class:`~repro.exec.supervisor.Supervisor` (engaged via the runner's
  ``timeout`` / ``retries`` / ``keep_going`` / ``journal`` / ``chaos``
  keywords) -- per-spec deadlines, crash/hang detection, bounded retries
  with full-jitter backoff, quarantine (:class:`RunFailure`), and clean
  SIGINT draining.
* :class:`SweepJournal` -- JSONL manifest of every hit/attempt/outcome,
  the input to ``repro resume``.
* :func:`current_executor` / :func:`use_executor` -- the ambient executor
  all of :mod:`repro.experiments` routes through; the CLI's ``--jobs``,
  ``--cache-dir``, ``--no-cache``, ``--timeout``, ``--retries``,
  ``--keep-going`` and ``--journal`` flags install one here.

See ``docs/parallel-execution.md`` for the design, the cache-key
definition and the supervision lifecycle.
"""

from .cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from .journal import JournalError, SweepJournal
from .parallel import ParallelRunner, current_executor, use_executor
from .spec import RunSpec, SpecError, workload_fingerprint
from .supervisor import RunFailure, RunFailureError, deadline_for
from .version import code_fingerprint

__all__ = [
    "CACHE_DIR_ENV", "ResultCache", "default_cache_dir",
    "JournalError", "SweepJournal",
    "ParallelRunner", "current_executor", "use_executor",
    "RunSpec", "SpecError", "workload_fingerprint",
    "RunFailure", "RunFailureError", "deadline_for",
    "code_fingerprint",
]
