"""Sweep journal: a JSONL manifest of what a sweep did, and resume state.

A :class:`SweepJournal` is an append-only file of one-JSON-object lines
recording the lifecycle of every spec an executor touched: cache hits,
per-attempt outcomes (``ok | timeout | crash | sim-error``), completions
and quarantines.  It serves three roles:

* **Audit trail.**  After a chaotic or faulty sweep, the journal shows
  exactly which runs were retried, why, and what won.
* **Resume manifest.**  The first line records the CLI argv that produced
  the sweep, so ``repro resume <journal>`` can replay the same command;
  completed specs then short-circuit through the result cache and are
  never re-simulated.
* **Interrupt record.**  A SIGINT'd supervisor appends an ``interrupted``
  marker after draining, so a journal always ends in a known state.

Writes are single ``write()`` calls of one ``\\n``-terminated line, each
flushed and fsynced -- on POSIX that makes concurrent append-side damage
impossible for lines under the pipe-buffer size, the same "no torn reads"
property the result cache gets from atomic renames.  Line *content* is
deterministic for a given chaos seed; line *order* is completion order,
which may vary across runs of a parallel sweep.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..common.errors import ReproError

#: Journal schema version (bumped on incompatible record changes).
JOURNAL_VERSION = 1


class JournalError(ReproError):
    """The journal file is missing, malformed, or not resumable."""


class SweepJournal:
    """Append-only JSONL sweep manifest, loadable for resume."""

    def __init__(self, path: str | Path, argv: list[str] | None = None):
        self.path = Path(path)
        #: Keys whose results were already obtained (``hit`` or ``done``
        #: records), including those loaded from a pre-existing file.
        self.completed: set[str] = set()
        #: Keys quarantined in this or a previous session.
        self.quarantined: set[str] = set()
        self._fh = None
        self._interrupted = False
        if self.path.exists() and self.path.stat().st_size:
            argv_prev, completed, quarantined = self._scan(self.path)
            self.completed |= completed
            self.quarantined |= quarantined
            self._append({"type": "resume"})
        else:
            self._append({"v": JOURNAL_VERSION, "type": "begin",
                          "argv": list(argv or [])})

    # ------------------------------------------------------------------ #
    # Record writers (one line per event, flushed through to disk)
    # ------------------------------------------------------------------ #
    def _append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def hit(self, key: str) -> None:
        """A spec's result came straight from the cache."""
        self._append({"type": "hit", "key": key})
        self.completed.add(key)

    def attempt(self, key: str, attempt: int, outcome: str,
                detail: str | None = None) -> None:
        """One execution attempt finished with *outcome* (``ok`` or a
        failure kind from the supervisor's taxonomy)."""
        record = {"type": "attempt", "key": key, "attempt": attempt,
                  "outcome": outcome}
        if detail:
            record["detail"] = detail
        self._append(record)

    def done(self, key: str, attempts: int) -> None:
        """A spec completed successfully after *attempts* attempts."""
        self._append({"type": "done", "key": key, "attempts": attempts})
        self.completed.add(key)

    def quarantine(self, key: str, attempts: int, last: str) -> None:
        """A spec exhausted its retries; *last* is the final failure
        kind observed."""
        self._append({"type": "quarantined", "key": key,
                      "attempts": attempts, "last": last})
        self.quarantined.add(key)

    def interrupted(self) -> None:
        """The sweep was interrupted (SIGINT) after draining workers.
        Idempotent per session: the supervisor and the CLI may both
        report the same interrupt."""
        if not self._interrupted:
            self._interrupted = True
            self._append({"type": "interrupted"})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------ #
    # Reading side
    # ------------------------------------------------------------------ #
    @staticmethod
    def _scan(path: Path) -> tuple[list[str] | None, set[str], set[str]]:
        """Parse *path*, returning (argv, completed keys, quarantined)."""
        argv: list[str] | None = None
        completed: set[str] = set()
        quarantined: set[str] = set()
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") \
                from exc
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record["type"]
            except (ValueError, TypeError, KeyError) as exc:
                raise JournalError(
                    f"{path}:{lineno}: malformed journal line") from exc
            if kind == "begin":
                argv = record.get("argv")
            elif kind in ("hit", "done"):
                completed.add(record["key"])
            elif kind == "quarantined":
                quarantined.add(record["key"])
        return argv, completed, quarantined

    @classmethod
    def load_argv(cls, path: str | Path) -> list[str]:
        """The recorded CLI argv (for ``repro resume``)."""
        argv, _, _ = cls._scan(Path(path))
        if argv is None:
            raise JournalError(
                f"{path}: no 'begin' record; not a resumable journal")
        return argv

    @classmethod
    def completed_keys(cls, path: str | Path) -> set[str]:
        """Keys recorded as completed (``hit`` or ``done``) in *path*."""
        _, completed, _ = cls._scan(Path(path))
        return completed

    @classmethod
    def records(cls, path: str | Path) -> list[dict]:
        """Every record in *path*, in file order."""
        out = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out
