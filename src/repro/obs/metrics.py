"""Metric streams: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the quantitative side of the observability
subsystem.  It is layered *on top of* -- not replacing -- the paper-figure
:class:`~repro.common.stats.StatsRegistry`: StatsRegistry carries exactly
the aggregates the paper's tables and figures need (and is part of every
cached ``RunResult``), while MetricsRegistry carries operational
distributions (barrier-episode latency histograms, MSHR occupancy, NoC
queueing) that exist only when observability is enabled and never feed a
figure.

Histograms are HDR-style fixed-bucket: the bucket edges are chosen at
creation time (default: powers of two, which keeps relative error bounded
like an HDR histogram's coarse configuration) and recording is a bisect --
O(log #buckets), no allocation, deterministic.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path

#: Default histogram edges: powers of two from 1 to 64k cycles.  A sample
#: lands in the first bucket whose edge is >= the value; larger samples
#: land in the overflow bucket.
DEFAULT_EDGES = tuple(1 << i for i in range(17))


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-written value plus the peak it ever reached."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def to_dict(self) -> dict:
        return {"value": self.value, "peak": self.peak}


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``edges`` are ascending upper bounds (inclusive); a sample ``v`` is
    counted in the first bucket with ``edge >= v``, or in the overflow
    bucket past the last edge.  ``counts`` therefore has
    ``len(edges) + 1`` entries.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: tuple[int, ...] = DEFAULT_EDGES):
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram edges must be strictly ascending, got {edges}")
        self.name = name
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int | None:
        """Upper bucket edge covering the *p*-th percentile (None if
        empty; the last edge is returned for overflow samples)."""
        if not self.count:
            return None
        rank = max(1, int(p / 100.0 * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.edges[min(i, len(self.edges) - 1)]
        return self.edges[-1]  # pragma: no cover - seen always reaches count

    def to_dict(self) -> dict:
        return {"edges": list(self.edges), "counts": list(self.counts),
                "count": self.count, "sum": self.total,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named counters, gauges and histograms with snapshot export."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Get-or-create accessors (instrumentation hot path)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  edges: tuple[int, ...] = DEFAULT_EDGES) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, edges)
        return h

    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s streams into this registry (counters add,
        gauges take the later value, histograms add bucket-wise)."""
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            mine = self.gauge(name)
            mine.value = g.value
            mine.peak = max(mine.peak, g.peak)
        for name, h in other.histograms.items():
            mine = self.histogram(name, h.edges)
            if mine.edges != h.edges:
                raise ValueError(
                    f"histogram {name!r}: cannot merge differing edges")
            for i, n in enumerate(h.counts):
                mine.counts[i] += n
            mine.count += h.count
            mine.total += h.total
            for attr in ("min", "max"):
                theirs = getattr(h, attr)
                if theirs is not None:
                    mine_v = getattr(mine, attr)
                    pick = min if attr == "min" else max
                    setattr(mine, attr,
                            theirs if mine_v is None else pick(mine_v, theirs))

    # ------------------------------------------------------------------ #
    # Snapshot export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Deterministic (sorted-name) plain-dict snapshot."""
        return {
            "counters": {n: self.counters[n].value
                         for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].to_dict()
                       for n in sorted(self.gauges)},
            "histograms": {n: self.histograms[n].to_dict()
                           for n in sorted(self.histograms)},
        }

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def to_csv(self, path: str | Path | None = None) -> str:
        """Flat ``name,type,field,value`` rows (spreadsheet-friendly)."""
        rows = ["name,type,field,value"]
        for n in sorted(self.counters):
            rows.append(f"{n},counter,value,{self.counters[n].value}")
        for n in sorted(self.gauges):
            g = self.gauges[n]
            rows.append(f"{n},gauge,value,{g.value}")
            rows.append(f"{n},gauge,peak,{g.peak}")
        for n in sorted(self.histograms):
            h = self.histograms[n]
            rows.append(f"{n},histogram,count,{h.count}")
            rows.append(f"{n},histogram,sum,{h.total}")
            rows.append(f"{n},histogram,min,{h.min if h.min is not None else ''}")
            rows.append(f"{n},histogram,max,{h.max if h.max is not None else ''}")
            for edge, cnt in zip(h.edges, h.counts):
                rows.append(f"{n},histogram,le_{edge},{cnt}")
            rows.append(f"{n},histogram,overflow,{h.counts[-1]}")
        text = "\n".join(rows) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text
