"""repro.obs -- the observability subsystem.

Structured tracing, metric streams, trace exporters and the barrier
flight recorder.  The pieces:

* :mod:`repro.obs.events` -- the typed :class:`TraceEvent` schema and the
  kind vocabulary every instrumented layer emits.
* :mod:`repro.obs.tracer` -- :class:`RingTracer`, a bounded drop-counting
  ring buffer with per-kind/per-source filtering (plus the historical
  :class:`ListTracer` alias and the no-op :data:`NULL_TRACER`).
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with JSON/CSV snapshots, layered on
  top of the paper-figure ``StatsRegistry``.
* :mod:`repro.obs.flight` -- the per-core barrier flight recorder dumped
  into deadlock and watchdog-failover reports.
* :mod:`repro.obs.perfetto` / :mod:`repro.obs.vcd` -- Chrome
  trace-event/Perfetto JSON and VCD waveform exporters.
* :class:`Observability` -- the bundle a :class:`~repro.chip.cmp.CMP`
  threads through the engine and all device layers.

See ``docs/observability.md`` for the event schema and exporter formats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .events import (ALL_KINDS, FLIGHT_KINDS, TraceEvent)
from .flight import DEFAULT_DEPTH, FlightRecorder
from .metrics import (DEFAULT_EDGES, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .observability import NULL_OBS, Observability
from .perfetto import to_perfetto, validate_perfetto, write_perfetto
from .tracer import (DEFAULT_CAPACITY, NULL_TRACER, ListTracer, RingTracer,
                     Tracer)
from .vcd import parse_vcd, rise_times, to_vcd, write_vcd

__all__ = [
    "TraceEvent", "ALL_KINDS", "FLIGHT_KINDS",
    "Tracer", "RingTracer", "ListTracer", "NULL_TRACER", "DEFAULT_CAPACITY",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_EDGES",
    "FlightRecorder", "DEFAULT_DEPTH",
    "Observability", "NULL_OBS",
    "to_perfetto", "write_perfetto", "validate_perfetto",
    "to_vcd", "write_vcd", "parse_vcd", "rise_times",
    "write_jsonl",
]


def write_jsonl(trace: Iterable[TraceEvent], path: str | Path) -> int:
    """Write one JSON object per event; returns the number written."""
    n = 0
    with Path(path).open("w") as fh:
        for e in trace:
            fh.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")
            n += 1
    return n
