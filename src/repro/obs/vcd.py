"""VCD (Value Change Dump) export of G-line wire activity.

Renders the ``gline.wire`` events of a trace as an IEEE-1364 VCD file so
a barrier episode can be read like a logic-analyzer capture in GTKWave:
each G-line contributes a 1-bit ``level`` signal (did the line sample
high) and an 8-bit ``count`` bus (the S-CSMA transmitter count the
receivers decoded).

The network only emits wire events on cycles where the barrier network is
clocked, and an asserted line is a one-cycle pulse -- so any wire *not*
mentioned at a timestep that previously carried a nonzero value is
explicitly driven back to 0, and a final all-zero timestep is appended
one cycle after the last event.  No wall-clock date is written: equal
runs produce byte-identical dumps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .events import GL_WIRE, TraceEvent

COUNT_BITS = 8


def _ident(index: int) -> str:
    """Short printable VCD identifier codes: '!', '\"', ... then 2-char."""
    chars = [chr(c) for c in range(33, 127) if chr(c) != " "]
    base = len(chars)
    out = chars[index % base]
    index //= base
    while index:
        out = chars[index % base] + out
        index //= base
    return out


def to_vcd(trace: Iterable[TraceEvent]) -> str:
    """Build a VCD document from the gline.wire events of *trace*."""
    # Gather (time -> {wire: (level, count)}) preserving first-seen wire
    # order for stable $var declaration order.
    wires: list[str] = []
    by_time: dict[int, dict[str, tuple[int, int]]] = {}
    for e in trace:
        if e.kind != GL_WIRE:
            continue
        by_time.setdefault(e.time, {})
        if e.source not in wires:
            wires.append(e.source)
        by_time[e.time][e.source] = (int(e.detail.get("level", 0)),
                                     int(e.detail.get("count", 0)))

    lines = [
        "$comment repro.obs g-line waveform $end",
        "$timescale 1 ns $end",
        "$scope module gline $end",
    ]
    level_id: dict[str, str] = {}
    count_id: dict[str, str] = {}
    for i, w in enumerate(wires):
        level_id[w] = _ident(2 * i)
        count_id[w] = _ident(2 * i + 1)
        safe = w.replace(" ", "_")
        lines.append(f"$var wire 1 {level_id[w]} {safe}.level $end")
        lines.append(
            f"$var wire {COUNT_BITS} {count_id[w]} {safe}.count $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Initial values: everything low.
    lines.append("$dumpvars")
    for w in wires:
        lines.append(f"0{level_id[w]}")
        lines.append(f"b0 {count_id[w]}")
    lines.append("$end")

    state: dict[str, tuple[int, int]] = {w: (0, 0) for w in wires}
    last_time = 0
    for t in sorted(by_time):
        changes = []
        seen = by_time[t]
        for w in wires:
            new = seen.get(w, (0, 0))  # unmentioned wires fall back low
            if new != state[w]:
                if new[0] != state[w][0]:
                    changes.append(f"{new[0]}{level_id[w]}")
                if new[1] != state[w][1]:
                    changes.append(f"b{new[1]:b} {count_id[w]}")
                state[w] = new
        if changes:
            lines.append(f"#{t}")
            lines.extend(changes)
            last_time = t
    # Trailing all-zero step: asserted lines are one-cycle pulses.
    trailing = []
    for w in wires:
        if state[w][0]:
            trailing.append(f"0{level_id[w]}")
        if state[w][1]:
            trailing.append(f"b0 {count_id[w]}")
    if trailing:
        lines.append(f"#{last_time + 1}")
        lines.extend(trailing)
    return "\n".join(lines) + "\n"


def write_vcd(trace: Iterable[TraceEvent], path: str | Path) -> str:
    text = to_vcd(trace)
    Path(path).write_text(text)
    return text


def parse_vcd(text: str) -> dict[str, list[tuple[int, int]]]:
    """Minimal VCD reader: signal name -> [(time, value), ...].

    Understands exactly what :func:`to_vcd` writes (scalar and binary
    vector changes, one flat scope); used by the parse-back tests and the
    CI artifact check.  Raises ``ValueError`` on malformed input.
    """
    names: dict[str, str] = {}
    changes: dict[str, list[tuple[int, int]]] = {}
    time = 0
    in_defs = True
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_defs:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <id> <name> $end
                if len(parts) < 6 or parts[-1] != "$end":
                    raise ValueError(f"malformed $var line: {line!r}")
                names[parts[3]] = parts[4]
                changes[parts[4]] = []
            elif line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("$"):  # $dumpvars / $end wrappers
            continue
        if line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b"):
            value_str, ident = line[1:].split()
            if ident not in names:
                raise ValueError(f"change for undeclared id {ident!r}")
            changes[names[ident]].append((time, int(value_str, 2)))
        else:
            value, ident = line[0], line[1:]
            if value not in "01xz" or ident not in names:
                raise ValueError(f"malformed scalar change: {line!r}")
            changes[names[ident]].append(
                (time, int(value) if value in "01" else 0))
    if in_defs:
        raise ValueError("no $enddefinitions in VCD input")
    return changes


def rise_times(changes: dict[str, list[tuple[int, int]]],
               signal: str) -> list[int]:
    """Times at which *signal* transitions to a nonzero value."""
    out = []
    prev = 0
    for t, v in changes.get(signal, []):
        if v and not prev:
            out.append(t)
        prev = v
    return out
