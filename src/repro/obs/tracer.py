"""Tracers: where instrumented components send their events.

The base :class:`Tracer` discards everything and advertises
``enabled = False``; every instrumentation site in the simulator guards its
emit with that flag, so a run without tracing pays a single attribute read
per site and allocates nothing -- the property the overhead-guard tests
pin down.

:class:`RingTracer` is the real sink: a bounded ring buffer that keeps the
*newest* events, counts what it had to drop, and can filter by event kind
and/or source at emit time (filtering early keeps a long run's buffer
full of the events you actually asked for).

:class:`ListTracer` is the historical name kept for compatibility: it used
to be an unbounded ``list.append`` tracer that grew without limit on long
runs; it is now a thin alias over :class:`RingTracer` with the default
capacity (pass ``capacity=None`` to opt back into unbounded growth).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from .events import TraceEvent

#: Default ring capacity -- roomy enough for full small-chip runs, bounded
#: enough that a million-barrier sweep cannot exhaust memory.
DEFAULT_CAPACITY = 1 << 16


class Tracer:
    """Base tracer: discards everything."""

    enabled = False

    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        """Record one trace event (no-op in the base class)."""


class RingTracer(Tracer):
    """Bounded ring-buffer tracer with drop accounting and filtering.

    *capacity* bounds the buffer (``None`` = unbounded); when full, the
    oldest event is evicted and ``dropped`` incremented, so
    ``emitted == len(events) + dropped + filtered`` always holds.
    *kinds* / *sources* restrict what is kept (exact-match sets; ``None``
    keeps everything).
    """

    enabled = True

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY,
                 kinds: set[str] | None = None,
                 sources: set[str] | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.kinds = set(kinds) if kinds is not None else None
        self.sources = set(sources) if sources is not None else None
        self._ring: deque[TraceEvent] = deque()
        #: Events accepted into the ring (survived filters), total.
        self.emitted = 0
        #: Events evicted because the ring was full.
        self.dropped = 0
        #: Events rejected by the kind/source filters.
        self.filtered = 0

    # ------------------------------------------------------------------ #
    def emit(self, time: int, source: str, kind: str, **detail: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            self.filtered += 1
            return
        if self.sources is not None and source not in self.sources:
            self.filtered += 1
            return
        if self.capacity is not None and len(self._ring) >= self.capacity:
            self._ring.popleft()
            self.dropped += 1
        self._ring.append(TraceEvent(time, source, kind, detail))
        self.emitted += 1

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self._ring)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._ring if e.kind == kind]

    def of_source(self, source: str) -> list[TraceEvent]:
        return [e for e in self._ring if e.source == source]

    def clear(self) -> None:
        """Drop all retained events and reset the accounting."""
        self._ring.clear()
        self.emitted = 0
        self.dropped = 0
        self.filtered = 0

    def accounting(self) -> dict[str, int]:
        """Emit/drop/filter counters (exported alongside trace artifacts)."""
        return {"retained": len(self._ring), "emitted": self.emitted,
                "dropped": self.dropped, "filtered": self.filtered}


class ListTracer(RingTracer):
    """Compatibility alias: the old unbounded list tracer, now bounded.

    Keeps the historical ``ListTracer(kinds=...)`` signature; the buffer
    is capped at :data:`DEFAULT_CAPACITY` by default (the old class grew
    without bound).  Pass ``capacity=None`` to opt out of the bound.
    """

    def __init__(self, kinds: set[str] | None = None,
                 capacity: int | None = DEFAULT_CAPACITY):
        super().__init__(capacity=capacity, kinds=kinds)


#: Shared do-nothing tracer instance.
NULL_TRACER = Tracer()
