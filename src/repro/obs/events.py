"""The typed trace-event schema shared by every instrumented layer.

A :class:`TraceEvent` is one timestamped observation: *when* (integer
cycle), *where* (the component or wire name), *what* (a dotted ``kind``
from the vocabulary below) and free-form structured ``detail``.  Every
``detail`` value is a JSON primitive, so an event stream can be exported
losslessly (JSONL, Perfetto, VCD) without per-exporter conversion.

Kinds are namespaced by layer (``engine.*``, ``core.*``, ``gline.*``,
``noc.*``, ``l1.*``, ``dir.*``); exporters dispatch on the prefix to
assign tracks.  :data:`FLIGHT_KINDS` is the barrier-relevant subset the
flight recorder keeps per core -- cheap enough to stay on for a whole run
and exactly what a deadlock or failover post-mortem needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# ---------------------------------------------------------------------- #
# Event-kind vocabulary
# ---------------------------------------------------------------------- #
# Engine lifecycle.
ENGINE_RUN_BEGIN = "engine.run.begin"
ENGINE_RUN_END = "engine.run.end"

# Core-side barrier lifecycle (sources: "core<N>").
CORE_BARRIER_ENTER = "core.barrier.enter"
CORE_BARRIER_RESUME = "core.barrier.resume"
CORE_STRAGGLER = "core.straggler"
CORE_FAILSTOP = "core.failstop"

# G-line barrier network (sources: network or wire names).
GL_ARRIVE = "gline.arrive"                # bar_reg write became visible
GL_WIRE = "gline.wire"                    # one wire's sampled level/count
GL_FSM = "gline.fsm"                      # master-controller register state
GL_RELEASE = "gline.release"              # cores released this cycle
GL_EPISODE = "gline.episode"              # one completed barrier episode
GL_WATCHDOG_RETRY = "gline.watchdog.retry"
GL_WATCHDOG_FAILOVER = "gline.watchdog.failover"
GL_PROBE = "gline.recovery.probe"          # idle-cycle wire probe episode
GL_READMIT = "gline.recovery.readmit"      # probation entry / healthy again
GL_REDEGRADE = "gline.recovery.redegrade"  # probation tripped; degraded

# G-line collective engine (repro.collectives; sources: network names).
GL_REDUCE_ARRIVE = "gline.reduce.arrive"      # operand latched (col_reg)
GL_REDUCE_START = "gline.reduce.start"        # episode opened (kind, width)
GL_REDUCE_ROUND = "gline.reduce.round"        # one clocked fabric cycle
GL_REDUCE_RESULT = "gline.reduce.result"      # a core got its result
GL_REDUCE_FAILOVER = "gline.reduce.failover"  # episode bounced to software

# Counting-line integrity ladder (repro.gline.integrity wiring).
GL_INTEGRITY_FAIL = "gline.integrity.fail"          # corrupted round seen
GL_INTEGRITY_RETRY = "gline.integrity.retry"        # round retried in-wire
GL_INTEGRITY_ESCALATE = "gline.integrity.escalate"  # whole-op retry rung
GL_INTEGRITY_FAILOVER = "gline.integrity.failover"  # ladder gave up

# Data NoC (source: "noc" / "vct").
NOC_SEND = "noc.send"
NOC_DELIVER = "noc.deliver"

# Memory hierarchy (sources: "l1_<t>" / "home<t>").
L1_MISS = "l1.miss"
L1_FILL = "l1.fill"
L1_EVICT = "l1.evict"
DIR_MSG = "dir.msg"

#: Every kind the built-in instrumentation emits.
ALL_KINDS = frozenset({
    ENGINE_RUN_BEGIN, ENGINE_RUN_END,
    CORE_BARRIER_ENTER, CORE_BARRIER_RESUME, CORE_STRAGGLER, CORE_FAILSTOP,
    GL_ARRIVE, GL_WIRE, GL_FSM, GL_RELEASE, GL_EPISODE,
    GL_WATCHDOG_RETRY, GL_WATCHDOG_FAILOVER,
    GL_PROBE, GL_READMIT, GL_REDEGRADE,
    GL_REDUCE_ARRIVE, GL_REDUCE_START, GL_REDUCE_ROUND, GL_REDUCE_RESULT,
    GL_REDUCE_FAILOVER,
    GL_INTEGRITY_FAIL, GL_INTEGRITY_RETRY, GL_INTEGRITY_ESCALATE,
    GL_INTEGRITY_FAILOVER,
    NOC_SEND, NOC_DELIVER,
    L1_MISS, L1_FILL, L1_EVICT, DIR_MSG,
})

#: Barrier-relevant kinds the flight recorder keeps per core.
FLIGHT_KINDS = frozenset({
    CORE_BARRIER_ENTER, CORE_BARRIER_RESUME, CORE_STRAGGLER, CORE_FAILSTOP,
    GL_ARRIVE, GL_RELEASE, GL_WATCHDOG_RETRY, GL_WATCHDOG_FAILOVER,
    GL_READMIT, GL_REDEGRADE,
    GL_REDUCE_ARRIVE, GL_REDUCE_RESULT, GL_REDUCE_FAILOVER,
})


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation from an instrumented component."""

    time: int
    source: str
    kind: str
    detail: dict[str, Any]

    def to_dict(self) -> dict:
        """JSON-ready form (the JSONL export line format)."""
        return {"time": self.time, "source": self.source,
                "kind": self.kind, "detail": self.detail}

    def __str__(self) -> str:
        if not self.detail:
            return f"@{self.time} {self.source} {self.kind}"
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"@{self.time} {self.source} {self.kind} [{fields}]"
