"""Chrome trace-event / Perfetto JSON export.

Converts a stream of :class:`~repro.obs.events.TraceEvent` into the JSON
object format that https://ui.perfetto.dev and ``chrome://tracing`` load
directly: one process per simulator layer, one track (thread) per tile,
per G-line wire and per NoC router, with barrier episodes as duration
("X") events, wire levels and S-CSMA counts as counter ("C") tracks and
everything else as instants.

Timestamps are simulator cycles reported as microseconds (1 cycle = 1 us)
so the viewer's zoom labels read directly as cycle counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from . import events as ev
from .events import TraceEvent

# Process ids, one per simulator layer (stable => stable golden artifacts).
PID_BARRIERS = 0
PID_CORES = 1
PID_GLINES = 2
PID_NOC = 3
PID_MEM = 4
PID_ENGINE = 5

_PROCESS_NAMES = {
    PID_BARRIERS: "barrier episodes",
    PID_CORES: "cores",
    PID_GLINES: "g-lines",
    PID_NOC: "noc routers",
    PID_MEM: "memory",
    PID_ENGINE: "engine",
}

_VALID_PH = frozenset({"M", "X", "i", "C", "B", "E"})


def _tid_from_suffix(source: str) -> int:
    """Trailing-integer tid ("core7" -> 7, "home12" -> 12); 0 if none."""
    digits = ""
    for ch in reversed(source):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return int(digits) if digits else 0


class _TrackTable:
    """Assigns dense thread ids per process and remembers their names."""

    def __init__(self) -> None:
        self._tracks: dict[tuple[int, str], int] = {}
        self._next: dict[int, int] = {}

    def tid(self, pid: int, name: str, want: int | None = None) -> int:
        key = (pid, name)
        if key not in self._tracks:
            if want is None:
                want = self._next.get(pid, 0)
            self._tracks[key] = want
            self._next[pid] = max(self._next.get(pid, 0), want + 1)
        return self._tracks[key]

    def metadata(self) -> list[dict]:
        out = [{"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": pname}}
               for pid, pname in _PROCESS_NAMES.items()]
        for (pid, name), tid in sorted(self._tracks.items(),
                                       key=lambda kv: (kv[0][0], kv[1])):
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "args": {"name": name}})
        return out


def to_perfetto(trace: Iterable[TraceEvent],
                accounting: dict | None = None) -> dict:
    """Build the Perfetto JSON object for an event stream."""
    tracks = _TrackTable()
    out: list[dict] = []
    # Open core barrier-wait slices awaiting their resume.
    open_waits: dict[str, TraceEvent] = {}

    def instant(pid: int, tid: int, e: TraceEvent) -> None:
        out.append({"ph": "i", "name": e.kind, "pid": pid, "tid": tid,
                    "ts": e.time, "s": "t", "args": dict(e.detail)})

    for e in trace:
        kind = e.kind
        if kind.startswith("core."):
            tid = tracks.tid(PID_CORES, e.source,
                             want=_tid_from_suffix(e.source))
            if kind == ev.CORE_BARRIER_ENTER:
                open_waits[e.source] = e
            elif kind == ev.CORE_BARRIER_RESUME:
                enter = open_waits.pop(e.source, None)
                ts = enter.time if enter is not None else e.time
                out.append({"ph": "X", "name": "barrier wait",
                            "pid": PID_CORES, "tid": tid, "ts": ts,
                            "dur": e.time - ts, "args": dict(e.detail)})
            else:
                instant(PID_CORES, tid, e)
        elif kind == ev.GL_EPISODE:
            tid = tracks.tid(PID_BARRIERS, e.source)
            first = e.detail.get("first", e.time)
            release = e.detail.get("release", e.time)
            out.append({"ph": "X",
                        "name": f"barrier {e.detail.get('barrier', '?')}",
                        "pid": PID_BARRIERS, "tid": tid, "ts": first,
                        "dur": max(0, release - first),
                        "args": dict(e.detail)})
        elif kind == ev.GL_WIRE:
            tid = tracks.tid(PID_GLINES, e.source)
            out.append({"ph": "C", "name": e.source, "pid": PID_GLINES,
                        "tid": tid, "ts": e.time,
                        "args": {"level": e.detail.get("level", 0),
                                 "count": e.detail.get("count", 0)}})
        elif kind.startswith("gline."):
            instant(PID_GLINES, tracks.tid(PID_GLINES, e.source), e)
        elif kind == ev.NOC_SEND:
            router = f"router{e.detail.get('src', 0)}"
            instant(PID_NOC, tracks.tid(PID_NOC, router,
                                        want=_tid_from_suffix(router)), e)
        elif kind == ev.NOC_DELIVER:
            router = f"router{e.detail.get('dst', 0)}"
            instant(PID_NOC, tracks.tid(PID_NOC, router,
                                        want=_tid_from_suffix(router)), e)
        elif kind.startswith(("l1.", "dir.")):
            tid = tracks.tid(PID_MEM, e.source,
                             want=_tid_from_suffix(e.source))
            instant(PID_MEM, tid, e)
        else:  # engine.* and anything future
            instant(PID_ENGINE, tracks.tid(PID_ENGINE, e.source), e)

    # A core still waiting at end-of-trace gets an open-ended zero-length
    # slice so the stall is visible rather than silently dropped.
    for source, enter in open_waits.items():
        tid = tracks.tid(PID_CORES, source, want=_tid_from_suffix(source))
        out.append({"ph": "i", "name": "barrier wait (unresumed)",
                    "pid": PID_CORES, "tid": tid, "ts": enter.time,
                    "s": "t", "args": dict(enter.detail)})

    doc = {"traceEvents": tracks.metadata() + out,
           "displayTimeUnit": "ms",
           "otherData": {"generator": "repro.obs",
                         "timeUnit": "cycles"}}
    if accounting is not None:
        doc["otherData"]["tracer"] = dict(accounting)
    return doc


def write_perfetto(trace: Iterable[TraceEvent], path: str | Path,
                   accounting: dict | None = None) -> dict:
    doc = to_perfetto(trace, accounting=accounting)
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return doc


def validate_perfetto(doc: dict) -> int:
    """Schema-check a trace document; returns the event count.

    Raises ``ValueError`` on the first malformed event -- used by both the
    test suite and the CI trace-smoke artifact check.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace document: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    open_slices: dict[tuple, int] = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise ValueError(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in _VALID_PH:
            raise ValueError(f"{where}: bad ph {ph!r}")
        if not isinstance(e.get("name"), str):
            raise ValueError(f"{where}: missing/bad name")
        for field in ("pid", "tid"):
            if not isinstance(e.get(field), int):
                raise ValueError(f"{where}: missing/bad {field}")
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            raise ValueError(f"{where}: missing/bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ValueError(f"{where}: X event needs dur >= 0")
        elif ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                raise ValueError(f"{where}: C event needs numeric args")
        elif ph == "B":
            open_slices[(e["pid"], e["tid"])] = \
                open_slices.get((e["pid"], e["tid"]), 0) + 1
        elif ph == "E":
            key = (e["pid"], e["tid"])
            if open_slices.get(key, 0) < 1:
                raise ValueError(f"{where}: E without matching B on {key}")
            open_slices[key] -= 1
    dangling = {k: v for k, v in open_slices.items() if v}
    if dangling:
        raise ValueError(f"unbalanced B/E slices on tracks {dangling}")
    return len(events)
