"""Barrier flight recorder: the last N barrier-relevant events per core.

Unlike the full tracer (which may be filtered, bounded globally, or off),
the flight recorder is a tiny always-cheap ring *per core* holding only
:data:`~repro.obs.events.FLIGHT_KINDS` events.  When a run deadlocks or
the hardened G-line watchdog fails over, the recorder's tail for the
affected cores is appended to the report -- turning "core 7 blocked" into
the sequence of arrivals, releases and retries that led there.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from .events import TraceEvent

DEFAULT_DEPTH = 16


class FlightRecorder:
    """Per-core bounded ring of barrier-relevant events."""

    def __init__(self, num_cores: int, depth: int = DEFAULT_DEPTH):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.num_cores = num_cores
        self.depth = depth
        self._rings: list[deque[TraceEvent]] = [
            deque(maxlen=depth) for _ in range(num_cores)]

    def record(self, core: int, time: int, source: str, kind: str,
               **detail: Any) -> None:
        if 0 <= core < self.num_cores:
            self._rings[core].append(TraceEvent(time, source, kind, detail))

    def tail(self, core: int) -> list[TraceEvent]:
        """The retained events for *core*, oldest first."""
        if not (0 <= core < self.num_cores):
            return []
        return list(self._rings[core])

    def format_tail(self, cores: Iterable[int] | None = None) -> str:
        """Human-readable dump for a deadlock/failover report.

        Only cores with at least one recorded event appear; an empty
        recorder formats to the empty string so callers can append the
        result unconditionally.
        """
        if cores is None:
            cores = range(self.num_cores)
        blocks = []
        for core in cores:
            events = self.tail(core)
            if not events:
                continue
            lines = [f"  core {core} (last {len(events)} barrier events):"]
            lines.extend(f"    {e}" for e in events)
            blocks.append("\n".join(lines))
        if not blocks:
            return ""
        return "flight recorder:\n" + "\n".join(blocks)
