"""The Observability bundle wired through a chip.

One :class:`Observability` object carries the three optional streams --
tracer, metrics, flight recorder -- so the chip builder has a single
handle to thread through the engine and every device layer.  Each stream
is independently optional; ``Observability()`` (all off) is behaviourally
identical to not passing one at all, which is what keeps untraced runs
byte-identical to the pre-obs simulator.
"""

from __future__ import annotations

from .flight import DEFAULT_DEPTH, FlightRecorder
from .metrics import MetricsRegistry
from .tracer import DEFAULT_CAPACITY, NULL_TRACER, RingTracer, Tracer


class Observability:
    """Bundle of tracer + metrics + flight recorder handed to a CMP."""

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 flight: FlightRecorder | None = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.flight = flight

    @property
    def enabled(self) -> bool:
        """True if any stream is active (used by cheap emit guards)."""
        return (self.tracer.enabled or self.metrics is not None
                or self.flight is not None)

    @classmethod
    def full(cls, num_cores: int,
             capacity: int | None = DEFAULT_CAPACITY,
             kinds: set[str] | None = None,
             sources: set[str] | None = None,
             flight_depth: int = DEFAULT_DEPTH) -> "Observability":
        """All three streams on -- what ``repro trace`` uses."""
        return cls(tracer=RingTracer(capacity=capacity, kinds=kinds,
                                     sources=sources),
                   metrics=MetricsRegistry(),
                   flight=FlightRecorder(num_cores, depth=flight_depth))


#: Shared all-off bundle (safe default for components built standalone).
NULL_OBS = Observability()
