"""GL: the hardware barrier implementation backed by the G-line network.

From the core's point of view (Figure 3 of the paper) a barrier is::

    GL_Barrier() {
        mov 1, bar_reg      # arrival (S1)
      loop:
        bnz bar_reg, loop   # wait until hardware clears bar_reg (S2+S3)
    }

The op sequence models the library-call entry overhead (the paper measures
13 cycles end-to-end against the 4-cycle theoretical minimum and attributes
the difference to its application library; ``GLineConfig.entry_overhead``
reproduces that) followed by the bar_reg write; the "spin on bar_reg" is
the core sleeping until the release stage clears the register -- a core
spinning on its own register produces no external activity, so the timing
is identical.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError, GLineError
from ..common.params import GLineConfig
from ..cpu import isa
from ..cpu.core import HWBarrierArrive
from ..faults import FAILOVER
from ..sync.api import BarrierImpl


class GLBarrier(BarrierImpl):
    """Hardware G-line barrier bound to one or more network contexts."""

    name = "GL"

    def __init__(self, networks, config: GLineConfig | None = None,
                 fallback: BarrierImpl | None = None):
        """*networks*: one network per barrier context (space
        multiplexing extension; the base design has a single context).
        Each entry must expose ``arrive(core_id, resume)`` -- either a
        :class:`~repro.gline.network.GLineBarrierNetwork` or a
        :class:`~repro.gline.hierarchical.HierarchicalGLineBarrier`.

        *fallback* is the software barrier used to complete an episode
        when the watchdog quarantines a network (repro.faults); the chip
        wires it automatically when the watchdog is enabled."""
        if not networks:
            raise ConfigError("GLBarrier needs at least one network context")
        self.networks = list(networks)
        self.config = config or GLineConfig()
        self.fallback = fallback
        #: Cores of the current episode already committed to the software
        #: fallback, per context.  While non-zero, *every* core of that
        #: episode goes software even if the recovery controller re-admits
        #: the network mid-episode -- splitting one episode between the
        #: hardware and software barriers would deadlock both cohorts.
        self._sw_cohort: dict[int, int] = {}

    def sequence(self, core, barrier_id: int) -> Generator:
        if not (0 <= barrier_id < len(self.networks)):
            raise ConfigError(
                f"barrier context {barrier_id} not provisioned "
                f"(have {len(self.networks)})")
        if self.config.entry_overhead:
            yield isa.Compute(self.config.entry_overhead)
        net = self.networks[barrier_id]
        if self.fallback is not None \
                and (self._sw_cohort.get(barrier_id, 0)
                     or getattr(net, "quarantined", False)):
            # The network is quarantined (or this episode's cohort is
            # already completing over software); go software directly.
            yield from self._join_software(core, barrier_id, net)
            return
        outcome = yield HWBarrierArrive(net)
        if outcome == FAILOVER:
            if self.fallback is None:
                raise GLineError(
                    f"barrier context {barrier_id} failed over but no "
                    f"software fallback is configured")
            yield from self._join_software(core, barrier_id, net)

    def _join_software(self, core, barrier_id: int, net) -> Generator:
        """Complete this episode over the software fallback, keeping the
        episode's cohort together (see ``_sw_cohort``)."""
        core.stats.bump("faults.failover.sw_arrivals")
        joined = self._sw_cohort.get(barrier_id, 0) + 1
        # The software episode is fully subscribed once every core has
        # joined; the next episode decides hardware-vs-software afresh.
        self._sw_cohort[barrier_id] = \
            0 if joined >= getattr(net, "num_cores", 0) else joined
        yield from self.fallback.sequence(core, barrier_id)

    def describe(self) -> str:
        net = self.networks[0]
        wires = getattr(net, "num_glines", "?")
        desc = (f"G-line hardware barrier ({len(self.networks)} context(s), "
                f"{wires} G-lines per context, "
                f"entry overhead {self.config.entry_overhead} cycles)")
        if self.fallback is not None:
            desc += f" with {self.fallback.name} watchdog failover"
        return desc
