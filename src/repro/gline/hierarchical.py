"""Hierarchical G-line barrier networks (the paper's future-work extension).

A single G-line network is limited to 7x7 cores by the S-CSMA fan-in (six
transmitters per line).  The paper proposes overcoming this by "using
groups of G-line-based networks linked together through additional
G-lines".  This module implements that scheme:

* the mesh is partitioned into rectangular *clusters*, each at most 7x7,
  each with its own first-level G-line network;
* a second-level network spans the cluster grid (one participant per
  cluster -- its *leader*, the cluster's (0,0) core position);
* a cluster that gathers all of its cores signals the second level over an
  inter-level G-line (modelled as the leader's arrival, one line-latency
  cycle); when the second level's release reaches a leader, it opens the
  cluster's release gate and the cluster release proceeds locally.

Latency: gather(cluster) + 1 + full(second level) + gather-release(cluster)
-- e.g. ~10 cycles for a 14x14 mesh split into 2x2 clusters of 7x7, versus
4 for a single-level network; still orders of magnitude below software
barriers.
"""

from __future__ import annotations

import math

from ..common.errors import CapacityError, ConfigError
from ..common.params import GLineConfig
from ..common.stats import BarrierSample, StatsRegistry
from ..faults import FAILOVER
from ..sim.component import Component
from ..sim.engine import Engine
from .network import GLineBarrierNetwork


def partition(dim: int, max_dim: int) -> list[tuple[int, int]]:
    """Split *dim* into contiguous chunks of at most *max_dim*.

    Returns (start, length) pairs, as evenly sized as possible.
    """
    if dim < 1:
        raise ConfigError("dimension must be >= 1")
    nchunks = math.ceil(dim / max_dim)
    base, extra = divmod(dim, nchunks)
    out = []
    start = 0
    for i in range(nchunks):
        length = base + (1 if i < extra else 0)
        out.append((start, length))
        start += length
    return out


class HierarchicalGLineBarrier(Component):
    """Two-level G-line barrier for meshes larger than 7x7.

    Exposes the same ``arrive(core_id, resume)`` interface as
    :class:`~repro.gline.network.GLineBarrierNetwork`, so it plugs
    directly into :class:`~repro.gline.barrier.GLBarrier`.
    """

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, config: GLineConfig | None = None,
                 name: str = "hglnet"):
        super().__init__(engine, stats, name)
        self.config = config or GLineConfig()
        self.rows = rows
        self.cols = cols
        max_dim = self.config.max_transmitters + 1
        row_chunks = partition(rows, max_dim)
        col_chunks = partition(cols, max_dim)
        self.cluster_rows = len(row_chunks)
        self.cluster_cols = len(col_chunks)
        if self.cluster_rows > max_dim or self.cluster_cols > max_dim:
            raise CapacityError(
                f"{rows}x{cols} needs more than {max_dim}x{max_dim} "
                f"clusters; a deeper hierarchy is not implemented")

        #: Private stats sink for the sub-networks so cluster-level barrier
        #: samples don't pollute the chip-level Figure-5 measurements.
        self._sub_stats = StatsRegistry(rows * cols)
        self.clusters: list[GLineBarrierNetwork] = []
        self._cluster_of_core: dict[int, int] = {}
        for ri, (r0, rlen) in enumerate(row_chunks):
            for ci, (c0, clen) in enumerate(col_chunks):
                ids = [(r0 + r) * cols + (c0 + c)
                       for r in range(rlen) for c in range(clen)]
                k = len(self.clusters)
                net = GLineBarrierNetwork(
                    engine, self._sub_stats, rlen, clen, self.config,
                    name=f"{name}.c{ri}_{ci}", core_ids=ids)
                net.install_gate(lambda k=k: self._cluster_gathered(k))
                net.on_all_released = lambda k=k: self._cluster_released(k)
                self.clusters.append(net)
                for cid in ids:
                    self._cluster_of_core[cid] = k

        # Second level: one participant per cluster.
        self.top = GLineBarrierNetwork(
            engine, self._sub_stats, self.cluster_rows, self.cluster_cols,
            self.config, name=f"{name}.top")

        # The sub-networks measure into the private sink, but fault and
        # watchdog counters must surface at chip level.
        for net in [*self.clusters, self.top]:
            net.fault_stats = stats

        self.barriers_completed = 0
        self.samples: list[BarrierSample] = []
        self._first_arrival: int | None = None
        self._last_arrival: int | None = None
        self._released_clusters = 0
        self._release_time: int | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_glines(self) -> int:
        """Total wires: all cluster networks + the inter-cluster level."""
        return (sum(net.num_glines for net in self.clusters)
                + self.top.num_glines)

    @property
    def num_cores(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------ #
    # Fault-handling plumbing (repro.faults)
    # ------------------------------------------------------------------ #
    @property
    def quarantined(self) -> bool:
        """True once any level of the hierarchy was retired -- chip-wide
        hardware synchronization is then impossible, so the barrier
        library routes every arrival to the software fallback."""
        return (self.top.quarantined
                or any(net.quarantined for net in self.clusters))

    @property
    def detections(self) -> int:
        return (self.top.detections
                + sum(net.detections for net in self.clusters))

    @property
    def retries(self) -> int:
        return self.top.retries + sum(net.retries for net in self.clusters)

    @property
    def failovers(self) -> int:
        return (self.top.failovers
                + sum(net.failovers for net in self.clusters))

    def set_injector(self, injector) -> None:
        for net in [*self.clusters, self.top]:
            net.injector = injector

    def set_stats(self, stats: StatsRegistry) -> None:
        """Chip ``reset_stats`` hook: episode samples keep flowing into
        the private sub-sink, fault counters into the new registry."""
        self.stats = stats
        for net in [*self.clusters, self.top]:
            net.fault_stats = stats

    def set_obs(self, obs) -> None:
        """Attach observability to every level of the hierarchy."""
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        for net in [*self.clusters, self.top]:
            net.set_obs(obs)

    @property
    def failover_reports(self) -> list[str]:
        return [r for net in [*self.clusters, self.top]
                for r in net.failover_reports]

    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, resume) -> None:
        if self._first_arrival is None:
            # +write latency: mirrors GLineBarrierNetwork's episode stamps,
            # which record the bar_reg-visible time.
            self._first_arrival = self.now + self.config.barreg_write_cycles
        self._last_arrival = self.now + self.config.barreg_write_cycles
        cluster = self.clusters[self._cluster_of_core[core_id]]
        cluster.arrive(core_id, resume)

    # ------------------------------------------------------------------ #
    def _cluster_gathered(self, k: int) -> None:
        # Inter-level G-line: the cluster leader signals the second level
        # (modelled as an arrival whose bar_reg write is the line hop).
        leader = self.top.core_ids[k]
        self.top.arrive(leader,
                        lambda outcome=None, k=k: self._top_released(
                            k, outcome))

    def _top_released(self, k: int, outcome=None) -> None:
        if outcome == FAILOVER:
            # The inter-cluster level was quarantined by its watchdog:
            # chip-wide release can no longer be coordinated in hardware,
            # so the gathered cluster fails its cores over to software
            # instead of opening the gate (which would release them
            # without chip-wide synchronization).
            self.clusters[k].failover()
            return
        self.clusters[k].open_gate()

    def _cluster_released(self, k: int) -> None:
        self._released_clusters += 1
        self._release_time = self.now
        if self._released_clusters == len(self.clusters):
            self._released_clusters = 0
            self.barriers_completed += 1
            self.stats.bump("gline.barriers")
            self.samples.append(BarrierSample(
                barrier_id=self.barriers_completed,
                first_arrival=self._first_arrival,
                last_arrival=self._last_arrival,
                release=self._release_time))
            self._first_arrival = None
            self._last_arrival = None

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        return (f"hierarchical G-line barrier: "
                f"{self.cluster_rows}x{self.cluster_cols} clusters over a "
                f"{self.rows}x{self.cols} mesh, {self.num_glines} wires")
