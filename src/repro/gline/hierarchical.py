"""Hierarchical G-line barrier networks (the paper's future-work extension).

A single G-line network is limited to 7x7 cores by the S-CSMA fan-in (six
transmitters per line).  The paper proposes overcoming this by "using
groups of G-line-based networks linked together through additional
G-lines".  This module implements that scheme:

* the mesh is partitioned into rectangular *clusters*, each at most 7x7,
  each with its own first-level G-line network;
* a second-level network spans the cluster grid (one participant per
  cluster -- its *leader*, the cluster's (0,0) core position);
* a cluster that gathers all of its cores signals the second level over an
  inter-level G-line (modelled as the leader's arrival, one line-latency
  cycle); when the second level's release reaches a leader, it opens the
  cluster's release gate and the cluster release proceeds locally.

Latency: gather(cluster) + 1 + full(second level) + gather-release(cluster)
-- e.g. ~10 cycles for a 14x14 mesh split into 2x2 clusters of 7x7, versus
4 for a single-level network; still orders of magnitude below software
barriers.
"""

from __future__ import annotations

import math

from ..common.errors import CapacityError, ConfigError
from ..common.params import GLineConfig
from ..common.stats import BarrierSample, StatsRegistry
from ..faults import FAILOVER
from ..sim.component import Component
from ..sim.engine import Engine
from .network import GLineBarrierNetwork


def partition(dim: int, max_dim: int) -> list[tuple[int, int]]:
    """Split *dim* into contiguous chunks of at most *max_dim*.

    Returns (start, length) pairs, as evenly sized as possible.
    """
    if dim < 1:
        raise ConfigError("dimension must be >= 1")
    nchunks = math.ceil(dim / max_dim)
    base, extra = divmod(dim, nchunks)
    out = []
    start = 0
    for i in range(nchunks):
        length = base + (1 if i < extra else 0)
        out.append((start, length))
        start += length
    return out


class HierarchicalGLineBarrier(Component):
    """Two-level G-line barrier for meshes larger than 7x7.

    Exposes the same ``arrive(core_id, resume)`` interface as
    :class:`~repro.gline.network.GLineBarrierNetwork`, so it plugs
    directly into :class:`~repro.gline.barrier.GLBarrier`.
    """

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, config: GLineConfig | None = None,
                 name: str = "hglnet"):
        super().__init__(engine, stats, name)
        self.config = config or GLineConfig()
        self.rows = rows
        self.cols = cols
        max_dim = self.config.max_transmitters + 1
        row_chunks = partition(rows, max_dim)
        col_chunks = partition(cols, max_dim)
        self.cluster_rows = len(row_chunks)
        self.cluster_cols = len(col_chunks)
        if self.cluster_rows > max_dim or self.cluster_cols > max_dim:
            raise CapacityError(
                f"{rows}x{cols} needs more than {max_dim}x{max_dim} "
                f"clusters; a deeper hierarchy is not implemented")

        #: Private stats sink for the sub-networks so cluster-level barrier
        #: samples don't pollute the chip-level Figure-5 measurements.
        self._sub_stats = StatsRegistry(rows * cols)
        self.clusters: list[GLineBarrierNetwork] = []
        self._cluster_of_core: dict[int, int] = {}
        #: Per-segment degradation (``config.segment_failover``): cores of
        #: a quarantined cluster gather in a software cohort that still
        #: joins the chip-wide barrier through the top-level network, so
        #: healthy clusters stay on G-line hardware.
        self.segment_mode = self.config.segment_failover
        self._sw_pending: list[list] = []
        self._leader_sent: list[bool] = []
        self._gate_open_phase: list[bool] = []
        self._sw_latency: list[int] = []
        for ri, (r0, rlen) in enumerate(row_chunks):
            for ci, (c0, clen) in enumerate(col_chunks):
                ids = [(r0 + r) * cols + (c0 + c)
                       for r in range(rlen) for c in range(clen)]
                k = len(self.clusters)
                net = GLineBarrierNetwork(
                    engine, self._sub_stats, rlen, clen, self.config,
                    name=f"{name}.c{ri}_{ci}", core_ids=ids)
                net.install_gate(lambda k=k: self._cluster_gathered(k))
                net.on_all_released = lambda k=k: self._cluster_released(k)
                self.clusters.append(net)
                for cid in ids:
                    self._cluster_of_core[cid] = k
                self._sw_pending.append([])
                self._leader_sent.append(False)
                self._gate_open_phase.append(False)
                # Software-segment combine penalty: a library-call entry
                # plus a NoC-ish gather/scatter across the cluster's
                # diameter, paid once on gather and once on release.
                self._sw_latency.append(
                    self.config.entry_overhead + 2 * (rlen + clen))

        # Second level: one participant per cluster.
        self.top = GLineBarrierNetwork(
            engine, self._sub_stats, self.cluster_rows, self.cluster_cols,
            self.config, name=f"{name}.top")

        # The sub-networks measure into the private sink, but fault and
        # watchdog counters must surface at chip level.
        for net in [*self.clusters, self.top]:
            net.fault_stats = stats

        self.barriers_completed = 0
        self.samples: list[BarrierSample] = []
        self._first_arrival: int | None = None
        self._last_arrival: int | None = None
        self._released_clusters = 0
        self._release_time: int | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_glines(self) -> int:
        """Total wires: all cluster networks + the inter-cluster level."""
        return (sum(net.num_glines for net in self.clusters)
                + self.top.num_glines)

    @property
    def num_cores(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------ #
    # Fault-handling plumbing (repro.faults)
    # ------------------------------------------------------------------ #
    @property
    def quarantined(self) -> bool:
        """True once chip-wide hardware synchronization is impossible.

        Without ``segment_failover`` any retired level quarantines the
        whole chip (the pre-recovery behaviour).  With it, a quarantined
        *cluster* only degrades its own segment (cores complete over a
        software cohort that still joins the top-level barrier); only
        losing the top-level network forces the chip-wide fallback."""
        if self.segment_mode:
            return self.top.quarantined
        return (self.top.quarantined
                or any(net.quarantined for net in self.clusters))

    @property
    def detections(self) -> int:
        return (self.top.detections
                + sum(net.detections for net in self.clusters))

    @property
    def retries(self) -> int:
        return self.top.retries + sum(net.retries for net in self.clusters)

    @property
    def failovers(self) -> int:
        return (self.top.failovers
                + sum(net.failovers for net in self.clusters))

    def set_injector(self, injector) -> None:
        for net in [*self.clusters, self.top]:
            net.injector = injector

    def set_stats(self, stats: StatsRegistry) -> None:
        """Chip ``reset_stats`` hook: episode samples keep flowing into
        the private sub-sink, fault counters into the new registry."""
        self.stats = stats
        for net in [*self.clusters, self.top]:
            net.fault_stats = stats

    def set_obs(self, obs) -> None:
        """Attach observability to every level of the hierarchy."""
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        for net in [*self.clusters, self.top]:
            net.set_obs(obs)

    @property
    def failover_reports(self) -> list[str]:
        return [r for net in [*self.clusters, self.top]
                for r in net.failover_reports]

    @property
    def failover_reports_dropped(self) -> int:
        return sum(net.failover_reports_dropped
                   for net in [*self.clusters, self.top])

    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, resume) -> None:
        if self._first_arrival is None:
            # +write latency: mirrors GLineBarrierNetwork's episode stamps,
            # which record the bar_reg-visible time.
            self._first_arrival = self.now + self.config.barreg_write_cycles
        self._last_arrival = self.now + self.config.barreg_write_cycles
        k = self._cluster_of_core[core_id]
        cluster = self.clusters[k]
        if not self.segment_mode:
            cluster.arrive(core_id, resume)
            return
        if self._sw_pending[k] and not cluster.quarantined:
            # The cluster was re-admitted mid-episode while a software
            # cohort was already collecting: keep the cohort together.
            self._segment_arrive(k, resume)
            return
        cluster.arrive(core_id, self._wrap_segment(k, resume))

    # ------------------------------------------------------------------ #
    # Per-segment software fallback (segment_failover mode)
    # ------------------------------------------------------------------ #
    def _wrap_segment(self, k: int, resume):
        """Intercept a cluster-level FAILOVER bounce: while the top level
        is still up, the core joins its segment's software cohort instead
        of the chip-wide software barrier."""
        def wrapped(outcome=None, _k=k, _resume=resume):
            if outcome == FAILOVER and not self.top.quarantined:
                self._segment_arrive(_k, _resume)
            elif _resume is not None:
                if outcome is None:
                    _resume()
                else:
                    _resume(outcome)
        return wrapped

    def _segment_arrive(self, k: int, resume) -> None:
        pend = self._sw_pending[k]
        pend.append(resume)
        self.stats.bump("faults.failover.segment_arrivals")
        if len(pend) != self.clusters[k].num_cores:
            return
        if self._gate_open_phase[k]:
            # The cluster degraded *mid-release*, after the top level
            # already released it: chip-wide coordination for this
            # episode is done, so the cohort just finishes locally.
            self._scatter_segment(k)
            return
        # Software gather complete: the segment joins the chip-wide
        # barrier through the top level after the combine penalty.
        # (_cluster_gathered is idempotent per episode, covering a
        # leader arrival already in flight from before the degrade.)
        self.schedule(self._sw_latency[k], self._cluster_gathered, k)

    def _scatter_segment(self, k: int) -> None:
        """Resume a complete software cohort (release-side penalty) and
        account the cluster's episode completion."""
        release_time = self.now + self._sw_latency[k]
        for resume in self._drain_segment(k):
            if resume is not None:
                self.engine.schedule_at(release_time, resume)
        self._cluster_released(k)

    def _drain_segment(self, k: int):
        pend = self._sw_pending[k]
        self._sw_pending[k] = []
        return pend

    # ------------------------------------------------------------------ #
    def _cluster_gathered(self, k: int) -> None:
        if self._leader_sent[k]:
            # Idempotent per episode across the hardware and segment
            # paths: a cluster that degrades after its gate reported must
            # not re-arrive its leader at the second level.
            return
        self._leader_sent[k] = True
        # Inter-level G-line: the cluster leader signals the second level
        # (modelled as an arrival whose bar_reg write is the line hop).
        leader = self.top.core_ids[k]
        self.top.arrive(leader,
                        lambda outcome=None, k=k: self._top_released(
                            k, outcome))

    def _top_released(self, k: int, outcome=None) -> None:
        self._leader_sent[k] = False
        if outcome == FAILOVER:
            # The inter-cluster level was quarantined by its watchdog:
            # chip-wide release can no longer be coordinated in hardware,
            # so the gathered cluster fails its cores over to software
            # instead of opening the gate (which would release them
            # without chip-wide synchronization).
            pend = self._drain_segment(k)
            if pend:
                for resume in pend:
                    if resume is not None:
                        self.engine.schedule_at(self.now + 1, resume,
                                                FAILOVER)
                return
            self.clusters[k].failover()
            return
        pend = self._sw_pending[k]
        if len(pend) == self.clusters[k].num_cores:
            # Chip-wide release reached a software segment: scatter it to
            # the cohort with the segment's release-side penalty.
            self._scatter_segment(k)
            return
        if self.segment_mode:
            # Top-level coordination for this episode is done; a cohort
            # still collecting (failover bounces in flight) finishes
            # locally once complete (_segment_arrive's gate-open branch).
            self._gate_open_phase[k] = True
        if not pend:
            self.clusters[k].open_gate()

    def _cluster_released(self, k: int) -> None:
        self._gate_open_phase[k] = False
        self._released_clusters += 1
        self._release_time = self.now
        if self._released_clusters == len(self.clusters):
            self._released_clusters = 0
            self.barriers_completed += 1
            self.stats.bump("gline.barriers")
            self.samples.append(BarrierSample(
                barrier_id=self.barriers_completed,
                first_arrival=self._first_arrival,
                last_arrival=self._last_arrival,
                release=self._release_time))
            self._first_arrival = None
            self._last_arrival = None

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        return (f"hierarchical G-line barrier: "
                f"{self.cluster_rows}x{self.cluster_cols} clusters over a "
                f"{self.rows}x{self.cols} mesh, {self.num_glines} wires")
