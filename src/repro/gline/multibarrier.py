"""Multiple concurrent barrier contexts (the paper's future-work
space-multiplexing extension).

The base design dedicates one G-line network to one barrier.  The paper's
future work proposes "multiplexing in space and time, in which several
barrier executions can coexist".  Space multiplexing is direct: replicate
the (cheap: ``2*(rows+1)`` wires) network per context and let ``BarrierOp
(barrier_id=k)`` select context *k*.  This module builds the context
vector; :class:`~repro.gline.barrier.GLBarrier` dispatches on it.

A context may also span a *subset* of cores (e.g. the two halves of the
chip synchronizing independently): pass ``core_ids`` covering a sub-mesh.
"""

from __future__ import annotations

from ..common.errors import CapacityError, ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..sim.engine import Engine
from .hierarchical import HierarchicalGLineBarrier
from .network import GLineBarrierNetwork


def build_contexts(engine: Engine, stats: StatsRegistry, rows: int,
                   cols: int, config: GLineConfig | None = None,
                   name: str = "glnet"):
    """Build ``config.num_barriers`` full-chip barrier contexts.

    Falls back to the hierarchical scheme automatically when the mesh
    exceeds what a single network supports.
    """
    config = config or GLineConfig()
    max_dim = config.max_transmitters + 1
    contexts = []
    for k in range(config.num_barriers):
        ctx_name = f"{name}{k}" if config.num_barriers > 1 else name
        if rows <= max_dim and cols <= max_dim:
            contexts.append(GLineBarrierNetwork(
                engine, stats, rows, cols, config, name=ctx_name))
        else:
            contexts.append(HierarchicalGLineBarrier(
                engine, stats, rows, cols, config, name=ctx_name))
    return contexts


def build_submesh_context(engine: Engine, stats: StatsRegistry,
                          mesh_cols: int, row0: int, col0: int, rows: int,
                          cols: int, config: GLineConfig | None = None,
                          name: str = "glsub") -> GLineBarrierNetwork:
    """Build a barrier context over the sub-mesh with top-left corner
    ``(row0, col0)`` and shape ``rows x cols`` of a chip whose mesh has
    ``mesh_cols`` columns.  Core ids are global tile ids."""
    config = config or GLineConfig()
    if rows < 1 or cols < 1:
        raise ConfigError("sub-mesh must be at least 1x1")
    if row0 < 0 or col0 < 0:
        raise ConfigError("sub-mesh origin must be non-negative")
    if col0 + cols > mesh_cols:
        # Without this check the id arithmetic below silently wraps the
        # overflowing columns onto the next mesh row -- a context that
        # "works" but synchronizes the wrong cores.
        raise ConfigError(
            f"sub-mesh columns {col0}..{col0 + cols - 1} overflow a "
            f"{mesh_cols}-column mesh (core ids would wrap to the next "
            f"row)")
    max_dim = config.max_transmitters + 1
    if rows > max_dim or cols > max_dim:
        raise CapacityError(
            f"sub-mesh {rows}x{cols} exceeds the {max_dim}x{max_dim} "
            f"single-network limit")
    ids = [(row0 + r) * mesh_cols + (col0 + c)
           for r in range(rows) for c in range(cols)]
    return GLineBarrierNetwork(engine, stats, rows, cols, config,
                               name=name, core_ids=ids)


def total_wires(contexts) -> int:
    """Physical wire budget across all contexts (reporting helper)."""
    return sum(ctx.num_glines for ctx in contexts)
