"""The G-line barrier network: wiring, clocking and the arrival interface.

Wiring for an R x C mesh (Figure 1): every row gets a TX G-line (slaves ->
master) and a release G-line (master -> slaves); the first column gets a
vertical TX/release pair.  Total wires: ``2*rows + 2`` (the paper's
``2 * (sqrt(N) + 1)`` for square meshes), degenerating gracefully for
single-row or single-column meshes.

The network is clocked **only while a barrier is in flight** (the paper
switches controllers on at bar_reg writes and off after the release, to
save power); each tick runs every controller's assert phase, then every
sample phase, modelling the 1-cycle G-line propagation.

Ideal latency: with all cores arrived, the release reaches every core 4
cycles later (gather-row, gather-column, release-column, release-row) --
asserted by the test-suite for the paper's 2x2 walkthrough and verified for
arbitrary meshes and arrival orders by property tests.
"""

from __future__ import annotations

from collections import deque

from ..common.errors import CapacityError
from ..common.params import GLineConfig
from ..common.stats import BarrierSample, StatsRegistry
from ..faults import FAILOVER
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .controllers import BarRegFile, MasterH, MasterV, SlaveH, SlaveV
from .gline import GLine
from .recovery import RecoveryController

#: Event priority for network ticks: same-cycle bar_reg writes (normal
#: priority 0) become visible to the tick that samples that cycle.
TICK_PRIORITY = 10

#: Cap on retained failover post-mortems.  A flapping line under the
#: recovery controller can fail over an unbounded number of times on a
#: long run; like the PR 3 ListTracer fix, the reports keep the most
#: recent window and count what they drop.
FAILOVER_REPORT_CAP = 64


class ReleaseGate:
    """Decouples gather-complete from release-start (hierarchical mode).

    When installed on a network, reaching the all-arrived state reports
    upward via *on_gathered* instead of starting the release; the upper
    level later opens the gate to let the release proceed.  The report is
    idempotent per episode (``reported``) so a watchdog-retried gather
    does not double-arrive at the upper level.
    """

    def __init__(self, on_gathered):
        self.is_open = False
        self.reported = False
        self._on_gathered = on_gathered

    def on_gathered(self) -> None:
        if self.reported:
            return
        self.reported = True
        self._on_gathered()


class GLineBarrierNetwork(Component):
    """One barrier context over a dedicated G-line network."""

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, config: GLineConfig | None = None,
                 name: str = "glnet",
                 core_ids: list[int] | None = None):
        super().__init__(engine, stats, name)
        self.config = config or GLineConfig()
        max_dim = self.config.max_transmitters + 1
        if rows > max_dim or cols > max_dim:
            raise CapacityError(
                f"a single G-line network supports at most "
                f"{max_dim}x{max_dim} cores (S-CSMA limit of "
                f"{self.config.max_transmitters} transmitters per line); "
                f"use repro.gline.hierarchical for {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        #: Chip-level core ids in row-major mesh order (defaults to 0..N-1;
        #: the hierarchical extension passes cluster-local id maps).
        self.core_ids = core_ids or list(range(rows * cols))
        if len(self.core_ids) != rows * cols:
            raise CapacityError("core_ids must cover the full mesh")
        self.num_cores = rows * cols
        self._local_of = {cid: i for i, cid in enumerate(self.core_ids)}

        self.bar_regs = BarRegFile(self.num_cores)
        self._build()

        self.active = False
        self.active_cycles = 0
        self.barriers_completed = 0
        #: Hardware-level latency samples (last bar_reg write -> release),
        #: kept locally; chip-level episode samples (which include the
        #: library entry overhead) live in the shared StatsRegistry via
        #: repro.sync.accounting.BarrierAccounting.
        self.samples: list[BarrierSample] = []
        #: Episode tracking for BarrierSample records.
        self._first_arrival: int | None = None
        self._last_arrival: int | None = None
        self._arrived = 0
        #: Optional external completion hook (hierarchical extension).
        self.on_all_released = None
        #: Optional release gate (hierarchical extension).
        self._gate: ReleaseGate | None = None

        # ---- watchdog / fault-handling state (repro.faults) ---------- #
        #: Hardened mode: watchdog + spurious-release guard + overshoot
        #: detection.  Off by default, so a plain network schedules the
        #: exact same events it always did.
        self.hardened = self.config.watchdog_budget > 0
        #: Set by CMP when a FaultPlan is enabled; perturbs the wires once
        #: per clocked cycle.
        self.injector = None
        #: Where ``faults.*`` counters go.  Defaults to the local stats
        #: sink; the hierarchical wrapper re-points cluster networks at
        #: the chip-level registry so fault counts are never swallowed by
        #: its private sub-stats.
        self.fault_stats = stats
        #: True once the watchdog gave up on this network; arrivals are
        #: then bounced straight back with the FAILOVER outcome so the
        #: barrier library completes them in software.
        self.quarantined = False
        self.detections = 0
        self.retries = 0
        self.failovers = 0
        #: Barrier flight recorder (set via :meth:`set_obs`).
        self.flight = None
        #: Human-readable failover post-mortems (flight tail included when
        #: the recorder is active); surfaced by resilience reports/tests.
        #: Bounded: keeps the most recent window, counts drops.
        self.failover_reports: deque[str] = deque(maxlen=FAILOVER_REPORT_CAP)
        self.failover_reports_dropped = 0
        #: Self-healing re-admission state machine (repro.gline.recovery);
        #: None keeps failover terminal, exactly the PR 2 semantics.
        self.recovery: RecoveryController | None = (
            RecoveryController(self) if self.config.recovery_enabled
            else None)
        self._episode_retries = 0
        self._spurious_release = False
        self._row_validated = False
        for mh in self.masters_h:
            mh.hardened = self.hardened
        if self.master_v is not None:
            self.master_v.hardened = self.hardened

    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        mt = self.config.max_transmitters
        self.lines: list[GLine] = []
        self.row_tx: list[GLine | None] = []
        self.row_rel: list[GLine | None] = []
        for r in range(self.rows):
            if self.cols > 1:
                tx = GLine(f"{self.name}.SglineH{r}", mt)
                rel = GLine(f"{self.name}.MglineH{r}", mt)
                self.lines += [tx, rel]
            else:
                tx = rel = None
            self.row_tx.append(tx)
            self.row_rel.append(rel)
        if self.rows > 1:
            self.col_tx = GLine(f"{self.name}.SglineV", mt)
            self.col_rel = GLine(f"{self.name}.MglineV", mt)
            self.lines += [self.col_tx, self.col_rel]
        else:
            self.col_tx = self.col_rel = None

        self.masters_h: list[MasterH] = []
        self.slaves_h: list[SlaveH] = []
        self.slaves_v: list[SlaveV] = []
        for r in range(self.rows):
            mh = MasterH(core_id=r * self.cols, row=r, rx=self.row_tx[r],
                         tx=self.row_rel[r], num_slaves=self.cols - 1)
            self.masters_h.append(mh)
            for c in range(1, self.cols):
                self.slaves_h.append(SlaveH(core_id=r * self.cols + c,
                                            tx=self.row_tx[r],
                                            rx=self.row_rel[r]))
        if self.rows > 1:
            for r in range(1, self.rows):
                sv = SlaveV(core_id=r * self.cols, row=r, tx=self.col_tx,
                            rx=self.col_rel, master_h=self.masters_h[r])
                self.slaves_v.append(sv)
                self.masters_h[r].on_release = sv.reset
            self.master_v = MasterV(core_id=0, rx=self.col_tx,
                                    tx=self.col_rel,
                                    master_h0=self.masters_h[0],
                                    num_slaves=self.rows - 1)
            self.masters_h[0].on_release = self._reset_master_v
        else:
            self.master_v = None

    def _reset_master_v(self) -> None:
        self.master_v.scnt = 0
        self.master_v.mcnt = 0
        self.master_v.done = False

    # ------------------------------------------------------------------ #
    @property
    def num_glines(self) -> int:
        """Physical wire count -- 2*(rows+1) on a full 2D mesh."""
        return len(self.lines)

    # ------------------------------------------------------------------ #
    # Arrival interface (called by the core / barrier library)
    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, resume) -> None:
        """Core *core_id* executes ``mov 1, bar_reg``; *resume* runs when the
        hardware clears bar_reg (the release stage)."""
        self.schedule(self.config.barreg_write_cycles, self._set_barreg,
                      core_id, resume)

    def _set_barreg(self, core_id: int, resume) -> None:
        if self.quarantined:
            # The watchdog retired this network; the core completes this
            # episode over the software fallback instead.
            if resume is not None:
                self.schedule(0, resume, FAILOVER)
            return
        local = self._local_of[core_id]
        if self.bar_regs.is_set(local):
            raise CapacityError(
                f"core {core_id} re-arrived at barrier {self.name} before "
                f"release (only one outstanding barrier per context)")
        self.bar_regs.write(local, resume)
        if self._first_arrival is None:
            self._first_arrival = self.now
            if self.hardened and self.config.watchdog_episode_budget:
                self._arm_watchdog(self.config.watchdog_episode_budget,
                                   episode_level=True)
        self._last_arrival = self.now
        self._arrived += 1
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_ARRIVE,
                             core=core_id, arrived=self._arrived,
                             of=self.num_cores)
        if self.flight is not None:
            self.flight.record(core_id, self.now, self.name,
                               obs_ev.GL_ARRIVE, arrived=self._arrived,
                               of=self.num_cores)
        if self.hardened and self._arrived == self.num_cores:
            # All cores present: the gather+release must finish within the
            # budget or the watchdog intervenes.
            self._arm_watchdog(self.config.watchdog_budget,
                               episode_level=False)
        if not self.active:
            self.active = True
            # Tick for the cycle in which bar_reg became visible.
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    # ------------------------------------------------------------------ #
    # Clocking
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        self.active_cycles += 1
        released: list = []

        # Assert phase: drive G-lines from start-of-cycle state.  MasterV
        # runs last so the release trigger it hands to the co-located row-0
        # MasterH is consumed in the *next* cycle, matching the one-cycle
        # hand-off of the SlaveV path (release-column then release-row,
        # Figure 2 cycles 2 and 3).
        for mh in self.masters_h:
            mh.assert_phase(self.bar_regs, released)
        for sh in self.slaves_h:
            sh.assert_phase(self.bar_regs)
        for sv in self.slaves_v:
            sv.assert_phase()
        if self.master_v is not None:
            self.master_v.assert_phase()

        # Wire faults land between the assert and sample sub-phases: the
        # drivers committed their levels, the fault corrupts what the
        # receivers will see.
        if self.injector is not None:
            self.injector.perturb_glines(self.lines, now=self.now)
        if self.hardened:
            self._guard_release_lines()

        # Sample phase: observe lines at end of cycle, update registers.
        # MasterV samples first so the co-located MasterH flag it reads is
        # the one latched at the *end of the previous cycle* -- the
        # intra-core register hand-off costs a cycle boundary, exactly as
        # in the paper's Figure 2 (Mv sets Mcnt in cycle 1 from the flag
        # MasterH set in cycle 0).
        if self.master_v is not None:
            self.master_v.sample_phase()
        for mh in self.masters_h:
            mh.sample_phase(self.bar_regs)
        for sv in self.slaves_v:
            sv.sample_phase()
        for sh in self.slaves_h:
            sh.sample_phase(self.bar_regs, released)
        fault = self.hardened and self._fault_detected()
        if not fault and self.rows == 1 and self.masters_h[0].flag \
                and not self.masters_h[0].release_trigger:
            # Degenerate single-row mesh: the horizontal master releases
            # directly (no vertical stage) -- unless gated by an upper
            # hierarchy level.  Hardened networks hold the release one
            # extra cycle (count-stability validation, mirroring MasterV).
            if self._gate is None or self._gate.is_open:
                if self.hardened and not self._row_validated:
                    self._row_validated = True
                else:
                    self.masters_h[0].release_trigger = True
            else:
                self._gate.on_gathered()

        tracing = self.tracer.enabled
        for line in self.lines:
            if tracing:
                # Post-guard levels: what the receivers actually sampled.
                self.tracer.emit(self.now, line.name, obs_ev.GL_WIRE,
                                 level=int(line.sampled_on()),
                                 count=line.sample_count())
            self.stats.gline_toggles += len(line._asserting)
            line.end_cycle()
        if tracing:
            self.tracer.emit(
                self.now, self.name, obs_ev.GL_FSM,
                flags=[mh.flag for mh in self.masters_h],
                scnt=[mh.scnt for mh in self.masters_h],
                vscnt=self.master_v.scnt if self.master_v else None,
                arrived=self._arrived)

        if released:
            self._complete_release(released)

        if fault and self._arrived > 0:
            self._handle_fault()
            return

        if self._will_act():
            self.schedule(self.config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
        else:
            # Dormant: state is held (Scnt etc. persist) but nothing can
            # change until another bar_reg write reactivates the clock.
            # This both models the paper's controller power-gating and
            # keeps long straggler waits event-free.
            self.active = False

    def _complete_release(self, released: list) -> None:
        if self.hardened and len(released) != self._arrived:
            # Release atomicity: a legitimate release pulse covers every
            # waiting core in one cycle, so a shortfall means a release
            # line dropped the pulse for part of the mesh (stuck or
            # forced low) while the masters -- who release their own
            # cores at drive time -- ran ahead.  Retrying cannot recall
            # the cores already released, so the only sound containment
            # is the same as a shadow mismatch: the whole episode
            # completes as one software cohort.
            self.fault_stats.bump("faults.gline.partial_releases")
            self._abort_release(released, reason="partial release")
            return
        if self.recovery is not None \
                and not self.recovery.release_ok(len(released)):
            # Probation shadow cross-check failed: withhold the hardware
            # release and complete the episode over software instead.
            self._abort_release(released, reason="probation shadow-mismatch")
            return
        # Cores resume at the end of the release cycle.
        release_time = self.now + 1
        for resume in released:
            if resume is not None:
                self.engine.schedule_at(release_time, resume)
        self._arrived -= len(released)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_RELEASE,
                             cores=len(released), release=release_time,
                             remaining=self._arrived)
        if self._arrived == 0:
            self.barriers_completed += 1
            self._episode_retries = 0
            self._row_validated = False
            self.stats.bump("gline.barriers")
            self.samples.append(BarrierSample(
                barrier_id=self.barriers_completed,
                first_arrival=self._first_arrival,
                last_arrival=self._last_arrival,
                release=release_time))
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name, obs_ev.GL_EPISODE,
                                 barrier=self.barriers_completed,
                                 first=self._first_arrival,
                                 last=self._last_arrival,
                                 release=release_time)
            if self.metrics is not None:
                self.metrics.histogram("gline.episode_latency").record(
                    release_time - self._last_arrival)
                self.metrics.histogram("gline.episode_span").record(
                    release_time - self._first_arrival)
                self.metrics.counter("gline.episodes").inc()
            self._first_arrival = None
            self._last_arrival = None
            if self._gate is not None:
                self._gate.is_open = False
                self._gate.reported = False
            if self.recovery is not None:
                self.recovery.on_episode_complete()
            if self.on_all_released is not None:
                self.on_all_released()

    def _abort_release(self, released: list, reason: str) -> None:
        """Bounce an untrusted release's cores to the software fallback.

        Their bar_regs were already cleared by the release path, so the
        subsequent :meth:`failover` sweep (which handles the cores still
        waiting) cannot double-bounce them -- every core of the episode
        ends up in the same software cohort exactly once."""
        release_time = self.now + 1
        for resume in released:
            if resume is not None:
                self.engine.schedule_at(release_time, resume, FAILOVER)
        self._arrived -= len(released)
        self.failover(reason=reason)

    def _will_act(self) -> bool:
        """True if any controller will drive a line or change registers next
        cycle without a further bar_reg write."""
        bar_regs = self.bar_regs
        for mh in self.masters_h:
            if mh.will_act(bar_regs):
                return True
        for sh in self.slaves_h:
            if sh.will_act(bar_regs):
                return True
        for sv in self.slaves_v:
            if sv.will_act():
                return True
        if self.master_v is not None and self.master_v.will_act():
            return True
        if (self.hardened and self.rows == 1 and self.masters_h[0].flag
                and not self.masters_h[0].release_trigger
                and (self._gate is None or self._gate.is_open)):
            # Single-row validation cycle pending: keep the clock running.
            return True
        return False

    # ------------------------------------------------------------------ #
    # Watchdog, retry and failover (repro.faults hardening)
    # ------------------------------------------------------------------ #
    def _guard_release_lines(self) -> None:
        """Mask release-line levels that no master drove this cycle.

        A release line has exactly one legitimate transmitter, so a level
        the master did not drive is wire damage about to release cores
        early -- permanently skewing barrier episodes.  The guard forces
        the apparent level low before the slaves sample it and flags the
        episode for the fault handler."""
        spurious = False
        for r, rel in enumerate(self.row_rel):
            if rel is not None and rel.sampled_on() \
                    and not self.masters_h[r].drove_release:
                rel.glitch_force = 0
                spurious = True
        if self.col_rel is not None and self.col_rel.sampled_on() \
                and not (self.master_v is not None
                         and self.master_v.drove_release):
            self.col_rel.glitch_force = 0
            spurious = True
        if spurious:
            self._spurious_release = True
            self.fault_stats.bump("faults.gline.spurious_releases")

    def _fault_detected(self) -> bool:
        """Collect (and clear) this cycle's fault suspicions."""
        found = self._spurious_release
        self._spurious_release = False
        for mh in self.masters_h:
            found |= mh.fault_suspected
            mh.fault_suspected = False
        if self.master_v is not None:
            found |= self.master_v.fault_suspected
            self.master_v.fault_suspected = False
        return found

    def _arm_watchdog(self, budget: int, episode_level: bool) -> None:
        # The token pins the timer to this exact (episode, retry) attempt;
        # completion, a retry or a failover each invalidate it, so stale
        # timers expire silently.
        token = (self.barriers_completed, self.failovers,
                 self._episode_retries)
        self.schedule(budget, self._watchdog_check, token, episode_level)

    def _watchdog_check(self, token, episode_level: bool) -> None:
        if token != (self.barriers_completed, self.failovers,
                     self._episode_retries):
            return
        if self._arrived == 0 or self.quarantined:
            return
        if not episode_level and self._gate is not None \
                and self._gate.reported and not self._gate.is_open:
            # Local gather is complete, validated and reported upward;
            # the episode is parked on the upper hierarchy level, whose
            # own watchdog owns that wait (a degraded sibling segment may
            # legitimately hold the gate far longer than our budget).
            # ``open_gate`` re-arms us to cover the release pipeline.
            return
        if episode_level and self._arrived < self.num_cores:
            # Cores are genuinely missing (fail-stopped or extreme
            # stragglers) -- re-gathering cannot conjure them up, so skip
            # the retries and fail the episode over directly.
            self.detections += 1
            self.fault_stats.bump("faults.watchdog.detections")
            self.failover()
            return
        self._handle_fault()

    def _handle_fault(self) -> None:
        """A stalled or corrupt episode: retry the gather, else fail over."""
        self.detections += 1
        self.fault_stats.bump("faults.watchdog.detections")
        if self.recovery is not None and self.recovery.in_probation:
            # Zero tolerance during probation: a re-admitted network that
            # raises any suspicion re-degrades immediately (a flap), no
            # retry burn-down.
            self.failover(reason="probation watchdog")
            return
        if self._episode_retries < self.config.watchdog_retries:
            self._episode_retries += 1
            self.retries += 1
            self.fault_stats.bump("faults.watchdog.retries")
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_WATCHDOG_RETRY,
                                 attempt=self._episode_retries,
                                 arrived=self._arrived)
            if self.flight is not None:
                for cid in self._waiting_core_ids():
                    self.flight.record(cid, self.now, self.name,
                                       obs_ev.GL_WATCHDOG_RETRY,
                                       attempt=self._episode_retries)
            self._reset_fsm()
            # bar_regs are still set, so the slaves immediately re-signal;
            # a transient fault heals, a permanent one re-trips the
            # watchdog until the retry budget runs out.
            self.active = True
            self.schedule(self.config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
            if self._arrived == self.num_cores:
                self._arm_watchdog(self.config.watchdog_budget,
                                   episode_level=False)
        else:
            self.failover()

    def _reset_fsm(self) -> None:
        """Return every controller to its gather-start state (bar_regs and
        permanent wire damage are preserved)."""
        for mh in self.masters_h:
            mh.scnt = 0
            mh.mcnt = 0
            mh.flag = False
            mh.release_trigger = False
            mh.fault_suspected = False
        for sh in self.slaves_h:
            sh.signaling = True
        for sv in self.slaves_v:
            sv.sent = False
        if self.master_v is not None:
            self._reset_master_v()
            self.master_v.validating = False
            self.master_v.fault_suspected = False
        self._row_validated = False
        self._spurious_release = False
        for line in self.lines:
            line.end_cycle()

    def failover(self, reason: str = "watchdog") -> None:
        """Give up on this network: quarantine it and bounce every waiting
        core back with the FAILOVER outcome so the episode completes over
        the software fallback barrier.

        Safe by construction: every core that arrived here is re-routed
        into the *same* software episode, and cores that have not arrived
        yet find the network quarantined and go software directly -- no
        core ever skips an episode, so the cohort stays aligned.

        With a recovery controller attached the quarantine is not
        terminal: the controller schedules idle-cycle probes and may
        re-admit the network (see :mod:`repro.gline.recovery`)."""
        self.quarantined = True
        self.failovers += 1
        self.fault_stats.bump("faults.watchdog.failovers")
        waiting = self._waiting_core_ids()
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_WATCHDOG_FAILOVER,
                             waiting=list(waiting), retries=self.retries)
        if self.flight is not None:
            for cid in waiting:
                self.flight.record(cid, self.now, self.name,
                                   obs_ev.GL_WATCHDOG_FAILOVER,
                                   retries=self.retries)
        report = (f"{self.name}: {reason} FAILOVER at cycle {self.now} "
                  f"after {self._episode_retries} retries; waiting cores "
                  f"{waiting} bounced to software fallback")
        if self.flight is not None:
            # Recorder tail only when observability is on -- the base
            # message format stays stable for disabled runs.
            tail = self.flight.format_tail(waiting)
            if tail:
                report += "\n" + tail
        if len(self.failover_reports) == self.failover_reports.maxlen:
            self.failover_reports_dropped += 1
            self.fault_stats.bump("faults.watchdog.reports_dropped")
        self.failover_reports.append(report)
        self._reset_fsm()
        resumes = [self.bar_regs.clear(local)
                   for local in range(self.num_cores)
                   if self.bar_regs.is_set(local)]
        release_time = self.now + 1
        for resume in resumes:
            if resume is not None:
                self.engine.schedule_at(release_time, resume, FAILOVER)
        self._arrived = 0
        self._first_arrival = None
        self._last_arrival = None
        self._episode_retries = 0
        if self._gate is not None:
            self._gate.is_open = False
            self._gate.reported = False
        self.active = False
        if self.recovery is not None:
            self.recovery.on_failover()

    def _waiting_core_ids(self) -> list[int]:
        """Chip-level ids of cores currently holding a set bar_reg."""
        return [self.core_ids[local] for local in range(self.num_cores)
                if self.bar_regs.is_set(local)]

    # ------------------------------------------------------------------ #
    def set_injector(self, injector) -> None:
        self.injector = injector
        # Heal-mode injectors watch this network's recovery state to
        # decide whether their fault is currently active.
        if injector is not None and hasattr(injector, "net"):
            injector.net = self

    def set_stats(self, stats: StatsRegistry) -> None:
        """Re-point both measurement sinks (chip ``reset_stats`` hook)."""
        self.stats = stats
        self.fault_stats = stats

    def set_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` bundle."""
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self.flight = obs.flight

    # ------------------------------------------------------------------ #
    # Hierarchical-mode gating
    # ------------------------------------------------------------------ #
    def install_gate(self, on_gathered) -> ReleaseGate:
        """Defer this network's release stage behind an external gate.

        *on_gathered* fires once per episode when all local cores have
        arrived; call :meth:`open_gate` to start the release."""
        self._gate = ReleaseGate(on_gathered)
        if self.master_v is not None:
            self.master_v.gate = self._gate
        return self._gate

    def open_gate(self) -> None:
        """Upper level grants the release; resume clocking if dormant."""
        if self._gate is None:
            return
        self._gate.is_open = True
        if self.rows == 1 and self.masters_h[0].flag:
            self.masters_h[0].release_trigger = True
        if self.hardened and self._arrived == self.num_cores:
            # Fresh budget for the release pipeline: the gate-parked wait
            # (upper-level coordination) is excluded from the watchdog.
            self._arm_watchdog(self.config.watchdog_budget,
                               episode_level=False)
        if not self.active and self._will_act():
            self.active = True
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    def fully_idle(self) -> bool:
        """All controllers in their initial state and no bar_reg set."""
        return (not any(self.bar_regs.values)
                and all(mh.idle for mh in self.masters_h)
                and all(sh.idle for sh in self.slaves_h)
                and all(sv.idle for sv in self.slaves_v)
                and (self.master_v is None or self.master_v.idle))
