"""The G-line barrier network: the paper's primary contribution."""

from .barrier import GLBarrier
from .controllers import BarRegFile, MasterH, MasterV, SlaveH, SlaveV
from .gline import GLine
from .hierarchical import HierarchicalGLineBarrier, partition
from .multibarrier import build_contexts, build_submesh_context, total_wires
from .network import GLineBarrierNetwork, ReleaseGate
from .timemux import SlotContext, build_time_multiplexed, physical_wires

__all__ = [
    "GLBarrier",
    "BarRegFile", "MasterH", "MasterV", "SlaveH", "SlaveV",
    "GLine",
    "HierarchicalGLineBarrier", "partition",
    "build_contexts", "build_submesh_context", "total_wires",
    "GLineBarrierNetwork", "ReleaseGate",
    "SlotContext", "build_time_multiplexed", "physical_wires",
]
