"""G-line wire model with S-CSMA counting.

A G-line is a global 1-bit wire spanning one dimension of the chip; a
signal asserted on it is visible at the receiver within one clock cycle.
The S-CSMA ("sense carrier multiple access") circuit at the receiver can
tell *how many* transmitters asserted the line in the same cycle -- the
property the paper borrows from Krishna et al.'s EVC work and that the
Master controllers use to accumulate arrival counts in a single cycle even
when several slaves signal simultaneously.

Electrical constraint modelled: at most ``max_transmitters`` (six in the
paper) transmitters may drive one line; attaching more raises
:class:`~repro.common.errors.CapacityError` at build time, and a
(theoretically impossible) cycle with more simultaneous assertions than
attached transmitters raises :class:`~repro.common.errors.GLineError`.
"""

from __future__ import annotations

from ..common.errors import CapacityError, GLineError


class GLine:
    """One shared 1-bit wire with per-cycle S-CSMA counting."""

    __slots__ = ("name", "max_transmitters", "_attached", "_asserting",
                 "toggles", "stuck", "glitch_force", "count_delta")

    def __init__(self, name: str, max_transmitters: int = 6):
        self.name = name
        self.max_transmitters = max_transmitters
        self._attached: set[str] = set()
        #: Transmitter ids asserting during the current cycle.
        self._asserting: set[str] = set()
        #: Total assert events (energy proxy).
        self.toggles = 0
        #: Fault overrides (repro.faults).  ``stuck`` pins the wire at 0/1
        #: permanently; ``glitch_force`` does so for one cycle (it also
        #: wins over ``stuck`` -- the hardened network uses it to mask a
        #: spurious level before the slaves sample); ``count_delta``
        #: skews this cycle's S-CSMA read-out.
        self.stuck: int | None = None
        self.glitch_force: int | None = None
        self.count_delta = 0

    # ------------------------------------------------------------------ #
    def attach(self, transmitter_id: str) -> None:
        """Register a transmitter; enforces the electrical fan-in limit."""
        if transmitter_id in self._attached:
            # A duplicate id is a wiring bug in the network builder, not a
            # fan-in capacity problem -- report it as the generic G-line
            # error so callers can tell the two apart.
            raise GLineError(
                f"{transmitter_id} already attached to {self.name}")
        if len(self._attached) >= self.max_transmitters:
            raise CapacityError(
                f"G-line {self.name} supports at most "
                f"{self.max_transmitters} transmitters")
        self._attached.add(transmitter_id)

    def assert_signal(self, transmitter_id: str) -> None:
        """Drive the line for the current cycle."""
        if transmitter_id not in self._attached:
            raise GLineError(
                f"{transmitter_id} is not attached to {self.name}")
        if transmitter_id not in self._asserting:
            self._asserting.add(transmitter_id)
            self.toggles += 1

    # ------------------------------------------------------------------ #
    def _forced(self) -> int | None:
        """The fault-forced wire level, or None when the wire is healthy."""
        if self.glitch_force is not None:
            return self.glitch_force
        return self.stuck

    def sample_count(self) -> int:
        """S-CSMA read-out: number of simultaneous assertions this cycle."""
        # The sense circuit can never report more than the S-CSMA design
        # limit, no matter how many transmitters are physically attached.
        ceiling = min(self.num_attached, self.max_transmitters)
        forced = self._forced()
        if forced is not None:
            # A forced-high wire looks like every transmitter asserting at
            # once to the S-CSMA sense circuit; forced-low reads as silence.
            return ceiling if forced else 0
        count = len(self._asserting)
        if count > self.max_transmitters:  # pragma: no cover - guarded above
            raise GLineError(
                f"G-line {self.name}: {count} simultaneous transmitters "
                f"exceed the S-CSMA limit of {self.max_transmitters}")
        if self.count_delta:
            count = min(max(count + self.count_delta, 0), ceiling)
        return count

    def sampled_on(self) -> bool:
        """Plain wired read-out: was the line driven this cycle?"""
        forced = self._forced()
        if forced is not None:
            return bool(forced)
        return bool(self._asserting)

    def end_cycle(self) -> None:
        """Clear per-cycle assertion state (signals are 1-cycle pulses).

        Transient fault overrides expire with the cycle; a stuck-at fault
        is permanent wire damage and survives."""
        self._asserting.clear()
        self.glitch_force = None
        self.count_delta = 0

    @property
    def num_attached(self) -> int:
        return len(self._attached)
