"""Time-multiplexed barrier contexts (the paper's future-work extension).

Space multiplexing (``multibarrier``) replicates the G-line network per
barrier context.  *Time* multiplexing shares one physical network between
``num_slots`` logical barriers by dividing the clock into recurring slots:
the controllers of logical barrier *b* drive and sample the wires only in
cycles congruent to *b* modulo ``num_slots``.

Behavioural model: each logical context is a
:class:`~repro.gline.network.GLineBarrierNetwork` whose ``line_latency``
equals the slot period (a signal asserted in one of barrier *b*'s slots is
consumed in its next slot), with arrivals aligned to the context's slot
phase.  Consequences, faithfully reproduced:

* ideal latency becomes ``3 * num_slots + 1`` cycles -- the three
  inter-stage hand-offs each wait a full slot period, the final release is
  consumed in one cycle -- plus up to ``num_slots - 1`` cycles of slot
  alignment (at ``num_slots = 1`` this reduces to the flat network's 4);
* the physical wire budget stays that of a *single* network --
  ``2 * (rows + 1)`` -- regardless of how many logical barriers share it.
"""

from __future__ import annotations

from dataclasses import replace

from ..common.errors import ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..sim.engine import Engine
from .network import GLineBarrierNetwork


class SlotContext:
    """One logical barrier context bound to a recurring time slot.

    Exposes the same ``arrive`` interface as a plain network, so it plugs
    into :class:`~repro.gline.barrier.GLBarrier` directly.
    """

    def __init__(self, net: GLineBarrierNetwork, slot: int,
                 num_slots: int, engine: Engine):
        self.net = net
        self.slot = slot
        self.num_slots = num_slots
        self.engine = engine

    def arrive(self, core_id: int, resume) -> None:
        """Align the bar_reg write so it becomes visible in our slot."""
        write = self.net.config.barreg_write_cycles
        visible = self.engine.now + write
        align = (self.slot - visible) % self.num_slots
        if align:
            self.engine.schedule(align, self.net.arrive, core_id, resume)
        else:
            self.net.arrive(core_id, resume)

    # Pass-throughs used by GLBarrier / reports / tests.
    @property
    def num_cores(self) -> int:
        return self.net.num_cores

    @property
    def num_glines(self) -> int:
        return self.net.num_glines

    @property
    def barriers_completed(self) -> int:
        return self.net.barriers_completed

    @property
    def samples(self):
        return self.net.samples

    # Fault-handling pass-throughs (repro.faults).  Each slot context has
    # its own logical network, so quarantine/recovery is naturally *per
    # segment*: one degraded slot falls back to software while the other
    # slots keep running on the shared physical wires.
    @property
    def quarantined(self) -> bool:
        return self.net.quarantined

    @property
    def recovery(self):
        return self.net.recovery

    @property
    def failover_reports(self):
        return self.net.failover_reports

    @property
    def failover_reports_dropped(self) -> int:
        return self.net.failover_reports_dropped

    @property
    def detections(self) -> int:
        return self.net.detections

    @property
    def retries(self) -> int:
        return self.net.retries

    @property
    def failovers(self) -> int:
        return self.net.failovers

    def set_injector(self, injector) -> None:
        self.net.injector = injector

    def set_stats(self, stats: StatsRegistry) -> None:
        self.net.set_stats(stats)


def build_time_multiplexed(engine: Engine, stats: StatsRegistry, rows: int,
                           cols: int, config: GLineConfig | None = None,
                           num_slots: int = 2, name: str = "gltm"
                           ) -> list[SlotContext]:
    """Build ``num_slots`` logical contexts sharing one physical network's
    wire budget.  Returns slot contexts indexable by ``BarrierOp.
    barrier_id``."""
    if num_slots < 1:
        raise ConfigError("num_slots must be >= 1")
    config = config or GLineConfig()
    slot_config = replace(config, line_latency=config.line_latency
                          * num_slots, num_barriers=1)
    contexts = []
    for slot in range(num_slots):
        net = GLineBarrierNetwork(engine, stats, rows, cols, slot_config,
                                  name=f"{name}.s{slot}")
        contexts.append(SlotContext(net, slot * config.line_latency,
                                    num_slots * config.line_latency,
                                    engine))
    return contexts


def physical_wires(contexts: list[SlotContext]) -> int:
    """The shared physical wire count (one network, not per-context)."""
    return contexts[0].num_glines if contexts else 0
