"""Self-healing recovery for a quarantined G-line barrier network.

PR 2's watchdog retires a faulty network *forever*: one transient burst
on a wire and a 1024-core chip is demoted to the software barrier for
the rest of its life.  This module turns that terminal quarantine into a
verified state machine:

::

                      watchdog FAILOVER
        HEALTHY ─────────────────────────────► DEGRADED
           ▲                                  (software
           │ N clean barriers                  fallback)
           │ under the shadow                      │ backoff expired
           │ cross-check                           ▼
        PROBATION ◄──────────────────────────── PROBING
        (hardware +        probe passed       (idle-cycle
         shadow check)                         wire test)
           │                                       │ probe failed:
           │ shadow mismatch or                    │ backoff *= factor,
           │ watchdog trip:                        ▼ retry (≤ max_probes)
           │ flap += 1                          DEGRADED
           ▼
        DEGRADED ── flaps ≥ K or probes exhausted ──► QUARANTINED
                                                      (permanent)

* **DEGRADED** -- exactly PR 2's quarantine: arrivals bounce straight to
  the software fallback.  A probe is scheduled after an exponential
  backoff (``probe_interval * factor^(failed probes + flaps)``, capped).
* **PROBING** -- a two-cycle idle-line test: every transmitter drives
  its line for one cycle (level must read high and the S-CSMA count must
  equal the attached-transmitter count), then all stay silent for one
  cycle (level must read low, count zero).  The fault injector perturbs
  the wires during both cycles, so an active stuck-at or intermittent
  burst fails the probe; a healed wire passes.
* **PROBATION** -- the next N barriers run on hardware, but every
  release is cross-checked against the network's own software-maintained
  arrival count (the *shadow*): a release that does not cover the full
  cohort is withheld and the episode completes over software.  This
  catches the one fault class the PR 2 guards provably cannot: a
  one-shot gather glitch that lands the count exactly at the target with
  a core missing.  Any watchdog suspicion during probation re-degrades
  immediately (zero tolerance -- no retry burn-down).
* **Flap damping** -- each probation failure counts a *flap*; after K
  flaps (or ``max_probes`` consecutive failed probes in one degraded
  spell) the network is quarantined permanently, exactly as in PR 2.

The controller is pure bookkeeping plus engine-scheduled probe events;
with ``recovery_enabled=False`` (the default) it is never constructed
and the network behaves bit-identically to PR 2.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..obs import events as obs_ev

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import GLineBarrierNetwork

#: Recovery states.
HEALTHY = "healthy"
DEGRADED = "degraded"
PROBING = "probing"
PROBATION = "probation"
QUARANTINED = "quarantined"

#: Cap on the human-readable recovery event log (mirrors the bounded
#: failover_reports deque; a flapping line must not grow memory).
RECOVERY_LOG_CAP = 256


class RecoveryController:
    """Probe/probation re-admission state machine for one network."""

    def __init__(self, net: "GLineBarrierNetwork") -> None:
        self.net = net
        self.config = net.config
        self.state = HEALTHY
        #: Failed re-admissions (probation trips).
        self.flaps = 0
        #: Successful re-admissions (probation entries).
        self.readmissions = 0
        #: Probe episodes run / failed (lifetime).
        self.probes = 0
        self.probe_failures = 0
        #: Consecutive failed probes in the current degraded spell.
        self._spell_probe_failures = 0
        #: Barriers left under the shadow cross-check.
        self.probation_left = 0
        #: Degraded spells entered (lifetime).
        self.degraded_episodes = 0
        #: Total cycles spent degraded (closed spells only).
        self.degraded_cycles = 0
        #: Repair time (degrade -> re-admission) samples, cycles.
        self.mttr_samples: list[int] = []
        #: Set by the planted verification mutation: probation runs
        #: without the shadow cross-check (repro.verify catches this).
        self.shadow_disabled = False
        #: Bounded human-readable event log (golden-regression surface).
        self.log: deque[str] = deque(maxlen=RECOVERY_LOG_CAP)
        self.log_dropped = 0
        self._probe_token = 0
        self._degraded_at = 0

    # ------------------------------------------------------------------ #
    # Hooks called by GLineBarrierNetwork
    # ------------------------------------------------------------------ #
    @property
    def in_probation(self) -> bool:
        return self.state == PROBATION

    def on_failover(self) -> None:
        """The network just failed an episode over to software."""
        if self.state == QUARANTINED:
            return
        if self.state == PROBATION:
            self.flaps += 1
            self.net.fault_stats.bump("faults.recovery.redegrades")
            self._emit(obs_ev.GL_REDEGRADE, flaps=self.flaps,
                       limit=self.config.recovery_max_flaps)
            self._log(f"REDEGRADE at cycle {self.net.now}: probation "
                      f"tripped (flap {self.flaps}/"
                      f"{self.config.recovery_max_flaps})")
            if self.flaps >= self.config.recovery_max_flaps:
                self._retire("flap limit reached")
                return
        self.state = DEGRADED
        self.degraded_episodes += 1
        self._degraded_at = self.net.now
        self._spell_probe_failures = 0
        self.net.fault_stats.bump("faults.recovery.degrades")
        self._schedule_probe()

    def release_ok(self, released: int) -> bool:
        """Shadow cross-check: may this cycle's release be delivered?

        The *shadow* is the network's software-maintained arrival count;
        during probation a release that does not cover the full cohort
        means the wires produced a count the software disagrees with --
        the release is withheld and the network re-degrades."""
        if self.state != PROBATION or self.shadow_disabled:
            return True
        if released == self.net.num_cores == self.net._arrived:
            return True
        self.net.fault_stats.bump("faults.recovery.shadow_aborts")
        self._log(f"SHADOW ABORT at cycle {self.net.now}: hardware "
                  f"released {released}/{self.net.num_cores} cores "
                  f"({self.net._arrived} arrived)")
        return False

    def on_episode_complete(self) -> None:
        """A barrier completed on hardware."""
        if self.state != PROBATION:
            return
        self.probation_left -= 1
        if self.probation_left == 0:
            self.state = HEALTHY
            self.net.fault_stats.bump("faults.recovery.healthy")
            self._emit(obs_ev.GL_READMIT, phase="healthy",
                       flaps=self.flaps)
            self._log(f"HEALTHY at cycle {self.net.now}: probation "
                      f"complete")

    # ------------------------------------------------------------------ #
    # Probe machinery
    # ------------------------------------------------------------------ #
    def _schedule_probe(self) -> None:
        self._probe_token += 1
        backoff = self._backoff()
        self.net.schedule(backoff, self._probe_due, self._probe_token)
        self._log(f"DEGRADED at cycle {self.net.now}: probe in "
                  f"{backoff} cycles")

    def _backoff(self) -> int:
        exponent = self._spell_probe_failures + self.flaps
        backoff = (self.config.recovery_probe_interval
                   * self.config.recovery_backoff_factor ** exponent)
        return min(backoff, self.config.recovery_max_backoff)

    def _probe_due(self, token: int) -> None:
        if token != self._probe_token or self.state != DEGRADED:
            return
        self.state = PROBING
        self.probes += 1
        self.net.fault_stats.bump("faults.recovery.probes")
        drive_ok = self._probe_cycle(drive=True)
        self.net.schedule(self.config.line_latency, self._probe_silence,
                          token, drive_ok)

    def _probe_silence(self, token: int, drive_ok: bool) -> None:
        if token != self._probe_token or self.state != PROBING:
            return  # pragma: no cover - tokens only go stale on retire
        ok = self._probe_cycle(drive=False) and drive_ok
        self._emit(obs_ev.GL_PROBE, result="pass" if ok else "fail",
                   attempt=self._spell_probe_failures + 1)
        self._log(f"PROBE {'pass' if ok else 'fail'} at cycle "
                  f"{self.net.now} "
                  f"(attempt {self._spell_probe_failures + 1})")
        if ok:
            self._readmit()
            return
        self.probe_failures += 1
        self._spell_probe_failures += 1
        self.net.fault_stats.bump("faults.recovery.probe_failures")
        if self._spell_probe_failures >= self.config.recovery_max_probes:
            self._retire("probe attempts exhausted")
            return
        self.state = DEGRADED
        self._schedule_probe()

    def _probe_cycle(self, drive: bool) -> bool:
        """One idle-cycle wire test; True if every line reads clean.

        The network is quarantined while probing, so no controller is
        clocked and the wires are otherwise idle by construction."""
        net = self.net
        if drive:
            for line in net.lines:
                for tid in sorted(line._attached):
                    line.assert_signal(tid)
        if net.injector is not None:
            net.injector.perturb_glines(net.lines, now=net.now)
        ok = True
        for line in net.lines:
            level, count = line.sampled_on(), line.sample_count()
            if drive:
                ok &= level and count == line.num_attached
            else:
                ok &= not level and count == 0
            net.stats.gline_toggles += len(line._asserting)
            line.end_cycle()
        return ok

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def _readmit(self) -> None:
        self.state = PROBATION
        self.probation_left = self.config.recovery_probation_barriers
        self.readmissions += 1
        repair = self.net.now - self._degraded_at
        self.degraded_cycles += repair
        self.mttr_samples.append(repair)
        self.net.quarantined = False
        self.net.fault_stats.bump("faults.recovery.readmits")
        self.net.fault_stats.bump("faults.recovery.repair_cycles", repair)
        if self.net.metrics is not None:
            self.net.metrics.histogram(
                "gline.recovery.repair_time").record(repair)
        self._emit(obs_ev.GL_READMIT, phase="probation",
                   probation=self.probation_left, repair=repair)
        self._log(f"READMIT at cycle {self.net.now}: degraded "
                  f"{repair} cycles; probation over "
                  f"{self.probation_left} barriers")

    def _retire(self, why: str) -> None:
        self.state = QUARANTINED
        self._probe_token += 1  # cancel any pending probe
        self.net.quarantined = True
        self.net.fault_stats.bump("faults.recovery.retired")
        self._log(f"QUARANTINED permanently at cycle {self.net.now}: "
                  f"{why}")

    # ------------------------------------------------------------------ #
    def _emit(self, kind: str, **detail: object) -> None:
        net = self.net
        if net.tracer.enabled:
            net.tracer.emit(net.now, net.name, kind, **detail)

    def _log(self, message: str) -> None:
        if len(self.log) == self.log.maxlen:
            self.log_dropped += 1
            self.net.fault_stats.bump("faults.recovery.log_dropped")
        self.log.append(message)
