"""Wire/area accounting for barrier-network alternatives.

The paper's related work (Sartori & Kumar) argues dedicated barrier
interconnects are fastest but can carry "prohibitive area overheads"; the
paper's own pitch is that G-lines make the dedicated-network approach
cheap: ``2*(rows+1)`` chip-spanning wires per barrier context.

This module compares first-order wire budgets (total wire *length* in
units of one tile edge, the dominant area term for global interconnect)
for the organizations discussed in the paper:

* **G-line network** (the paper): 2 wires per row spanning ``cols`` tiles
  + 2 column wires spanning ``rows`` tiles.
* **Dedicated reduction tree** (Sartori/Kumar-style): a binary tree of
  point-to-point links over the mesh, two wires per link (up + down).
* **Global OR/AND bus** (Cyclops-style wired-OR): 2 chip-spanning
  serpentine wires, but requiring every core to drive them (fan-in beyond
  any realistic S-CSMA).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError


@dataclass(frozen=True)
class WireBudget:
    organization: str
    #: Number of distinct wires.
    wires: int
    #: Total wire length, in tile-edge units.
    length: float
    #: Largest number of transmitters any single wire must support.
    max_fanin: int


def gline_budget(rows: int, cols: int, contexts: int = 1) -> WireBudget:
    _check(rows, cols)
    horizontal = 2 * rows if cols > 1 else 0
    vertical = 2 if rows > 1 else 0
    wires = (horizontal + vertical) * contexts
    length = (horizontal * (cols - 1) + vertical * (rows - 1)) * contexts
    return WireBudget("G-line network", wires, float(length),
                      max(cols - 1, rows - 1, 1))


def tree_budget(rows: int, cols: int, contexts: int = 1) -> WireBudget:
    """Binary reduction tree with point-to-point links routed on the mesh.

    Link length is approximated by the Manhattan distance between the
    centroids of the subtrees it connects (standard H-tree-ish estimate).
    """
    _check(rows, cols)
    n = rows * cols
    positions = [(t // cols, t % cols) for t in range(n)]
    total_length = 0.0
    links = 0
    level = [[p] for p in positions]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                a, b = level[i], level[i + 1]
                ca = _centroid(a)
                cb = _centroid(b)
                total_length += abs(ca[0] - cb[0]) + abs(ca[1] - cb[1])
                links += 1
                nxt.append(a + b)
            else:
                nxt.append(level[i])
        level = nxt
    # Up + down wires per link.
    return WireBudget("dedicated reduction tree", 2 * links * contexts,
                      2 * total_length * contexts, 1)


def bus_budget(rows: int, cols: int, contexts: int = 1) -> WireBudget:
    """Chip-spanning serpentine wired-OR bus (arrival + release)."""
    _check(rows, cols)
    serpentine = rows * cols - 1
    return WireBudget("global wired-OR bus", 2 * contexts,
                      2.0 * serpentine * contexts, rows * cols)


def comparison_rows(rows: int, cols: int,
                    contexts: int = 1) -> list[WireBudget]:
    return [gline_budget(rows, cols, contexts),
            tree_budget(rows, cols, contexts),
            bus_budget(rows, cols, contexts)]


def _centroid(points) -> tuple[float, float]:
    return (sum(p[0] for p in points) / len(points),
            sum(p[1] for p in points) / len(points))


def _check(rows: int, cols: int) -> None:
    if rows < 1 or cols < 1:
        raise ConfigError("mesh dims must be >= 1")
