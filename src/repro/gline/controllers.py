"""The four G-line controller finite-state automata of Figure 4.

Each controller is clocked in two sub-phases per cycle by the barrier
network: ``assert_phase`` (drive G-lines based on state at the start of the
cycle) and ``sample_phase`` (observe the lines at the end of the cycle and
update registers/state).  This two-phase discipline models the paper's
single-cycle G-line propagation: a signal asserted in cycle *t* is observed
by every receiver at the end of cycle *t*.

Controller placement on an R x C mesh (Figure 1):

* ``SlaveH``  -- every core in columns 1..C-1 (signals row arrival).
* ``MasterH`` -- every core in column 0 (counts its row; relays release).
* ``SlaveV``  -- cores (r, 0) for r >= 1 (signal row completion upward).
* ``MasterV`` -- core (0, 0) (counts rows; initiates release).

Register vocabulary follows the paper: ``Scnt`` (S-CSMA accumulated count
of slave signals), ``Mcnt`` (own core arrived), ``flag`` (row/chip
complete), plus ``release_trigger`` which models the intra-core
master/slave flag hand-off used during the release stage.
"""

from __future__ import annotations

from .gline import GLine


class BarRegFile:
    """The per-core ``bar_reg`` registers plus resume plumbing.

    Programmers write ``bar_reg`` (a value > 0) to announce arrival and spin
    until the hardware clears it (Figure 3).  In the simulator the "spin" is
    the core sleeping on a resume callback -- architecturally identical
    because a core spinning on its own register generates no external
    activity.
    """

    def __init__(self, num_cores: int):
        self.values = [0] * num_cores
        self._resume = [None] * num_cores

    def write(self, core_id: int, resume) -> None:
        self.values[core_id] = 1
        self._resume[core_id] = resume

    def is_set(self, core_id: int) -> bool:
        return self.values[core_id] != 0

    def clear(self, core_id: int):
        """Hardware reset of bar_reg; returns the resume callback."""
        self.values[core_id] = 0
        resume, self._resume[core_id] = self._resume[core_id], None
        return resume


class SlaveH:
    """Horizontal slave: signals its core's arrival on the row TX line."""

    def __init__(self, core_id: int, tx: GLine, rx: GLine):
        self.core_id = core_id
        self.tx = tx      # SglineH: slave -> master
        self.rx = rx      # MglineH: master -> slave (release)
        self.tx.attach(f"ShT{core_id}")
        self.signaling = True   # True: Signaling state; False: Waiting

    def assert_phase(self, bar_regs: BarRegFile) -> None:
        if self.signaling and bar_regs.is_set(self.core_id):
            self.tx.assert_signal(f"ShT{self.core_id}")
            self.signaling = False

    def sample_phase(self, bar_regs: BarRegFile, released: list) -> None:
        if not self.signaling and self.rx.sampled_on():
            # Release stage: hardware clears bar_reg; core resumes.
            self.signaling = True
            released.append(bar_regs.clear(self.core_id))

    @property
    def idle(self) -> bool:
        return self.signaling

    def will_act(self, bar_regs: BarRegFile) -> bool:
        """True if this controller will drive a line next cycle."""
        return self.signaling and bar_regs.is_set(self.core_id)


class MasterH:
    """Horizontal master: counts its row's arrivals, relays the release."""

    def __init__(self, core_id: int, row: int, rx: GLine | None,
                 tx: GLine | None, num_slaves: int):
        self.core_id = core_id
        self.row = row
        self.rx = rx      # SglineH: receives slave signals (None if C == 1)
        self.tx = tx      # MglineH: drives the release (None if C == 1)
        self.num_slaves = num_slaves
        if tx is not None:
            tx.attach(f"MhT{core_id}")
        self.scnt = 0
        self.mcnt = 0
        self.flag = False
        #: Set by the vertical controller hand-off (or by own flag when the
        #: mesh has a single row): release the row next cycle.
        self.release_trigger = False
        #: Hook installed by the network wiring: called when this master
        #: performs its release, so co-located vertical state can reset.
        self.on_release = None
        #: Hardened mode (repro.faults): keep sampling after ``flag`` so a
        #: faulty wire that keeps counting is caught as an overshoot.
        self.hardened = False
        self.fault_suspected = False
        #: True iff this master drove its release line this cycle -- lets
        #: the network's guard spot a release-line level nobody drove.
        self.drove_release = False

    def assert_phase(self, bar_regs: BarRegFile, released: list) -> None:
        self.drove_release = False
        if self.release_trigger:
            if self.tx is not None:
                self.tx.assert_signal(f"MhT{self.core_id}")
                self.drove_release = True
            # Reset all registers (release stage, Figure 4 left-pointing
            # transitions) and clear the local core's bar_reg.
            self.scnt = 0
            self.mcnt = 0
            self.flag = False
            self.release_trigger = False
            released.append(bar_regs.clear(self.core_id))
            if self.on_release is not None:
                self.on_release()

    def sample_phase(self, bar_regs: BarRegFile) -> None:
        if self.flag:
            if self.hardened and self.rx is not None:
                # Keep the S-CSMA sense alive after row completion: in a
                # fault-free episode no slave signals again before the
                # release, so any extra count means a lying wire.
                self.scnt += self.rx.sample_count()
                if self.scnt > self.num_slaves:
                    self.fault_suspected = True
            return
        if self.rx is not None:
            self.scnt += self.rx.sample_count()
        if bar_regs.is_set(self.core_id):
            self.mcnt = 1
        if self.hardened and self.scnt > self.num_slaves:
            self.fault_suspected = True
            return
        if self.mcnt == 1 and self.scnt == self.num_slaves:
            self.flag = True

    @property
    def idle(self) -> bool:
        return (self.scnt == 0 and self.mcnt == 0 and not self.flag
                and not self.release_trigger)

    def will_act(self, bar_regs: BarRegFile) -> bool:
        """True if registers can change or a line will be driven next cycle
        without any further external event (bar_reg write)."""
        if self.release_trigger:
            return True
        return self.mcnt == 0 and bar_regs.is_set(self.core_id)


class SlaveV:
    """Vertical slave (column 0, rows >= 1): reports row completion."""

    def __init__(self, core_id: int, row: int, tx: GLine, rx: GLine,
                 master_h: MasterH):
        self.core_id = core_id
        self.row = row
        self.tx = tx      # SglineV: slave -> vertical master
        self.rx = rx      # MglineV: vertical master -> slave (release)
        self.master_h = master_h
        self.tx.attach(f"SvT{core_id}")
        self.sent = False

    def assert_phase(self) -> None:
        if not self.sent and self.master_h.flag:
            self.tx.assert_signal(f"SvT{self.core_id}")
            self.sent = True

    def sample_phase(self) -> None:
        if self.sent and self.rx.sampled_on():
            # Hand the release to the co-located horizontal master, which
            # will drive its row's release line next cycle.
            self.master_h.release_trigger = True

    def reset(self) -> None:
        self.sent = False

    @property
    def idle(self) -> bool:
        return not self.sent

    def will_act(self) -> bool:
        return not self.sent and self.master_h.flag


class MasterV:
    """Vertical master (core (0,0)): counts rows, initiates the release."""

    def __init__(self, core_id: int, rx: GLine, tx: GLine,
                 master_h0: MasterH, num_slaves: int):
        self.core_id = core_id
        self.rx = rx      # SglineV
        self.tx = tx      # MglineV
        self.master_h0 = master_h0
        self.num_slaves = num_slaves
        self.tx.attach(f"MvT{core_id}")
        self.scnt = 0
        self.mcnt = 0
        self.done = False
        #: Hierarchical extension hook: when set, reaching ``done`` reports
        #: upward instead of starting the release; the release begins when
        #: ``gate_open`` is switched on by the upper level.
        self.gate = None
        #: Hardened mode (repro.faults): one extra count-stability cycle
        #: before committing to the chip-wide release, plus overshoot
        #: detection -- a stuck-at-1 SglineV keeps counting and is caught
        #: during validation instead of releasing the chip early.
        self.hardened = False
        self.fault_suspected = False
        self.validating = False
        self.drove_release = False

    def _gate_allows_release(self) -> bool:
        return self.gate is None or self.gate.is_open

    def assert_phase(self) -> None:
        self.drove_release = False
        if self.done and self._gate_allows_release():
            # Release stage start (cycle 2 of the ideal timeline): drive the
            # vertical release line and hand the trigger to the co-located
            # row-0 horizontal master; reset own counters.
            self.tx.assert_signal(f"MvT{self.core_id}")
            self.drove_release = True
            self.master_h0.release_trigger = True
            self.scnt = 0
            self.mcnt = 0
            self.done = False

    def sample_phase(self) -> None:
        self.scnt += self.rx.sample_count()
        if self.master_h0.flag:
            self.mcnt = 1
        if self.hardened and self.scnt > self.num_slaves:
            self.fault_suspected = True
            self.validating = False
            return
        if not self.done and self.mcnt == 1 and self.scnt == self.num_slaves:
            if self.hardened and not self.validating:
                self.validating = True
                return
            self.validating = False
            self.done = True
            if self.gate is not None:
                self.gate.on_gathered()

    @property
    def idle(self) -> bool:
        return self.scnt == 0 and self.mcnt == 0 and not self.done

    def will_act(self) -> bool:
        if self.done:
            return self._gate_allows_release()
        if self.validating:
            return True
        return self.mcnt == 0 and self.master_h0.flag
