"""Integrity primitives for the S-CSMA counting lines.

The analog transmitter count the collectives fabric samples each round
(:meth:`repro.gline.gline.GLine.sample_count`) is exactly the signal the
fault layer perturbs via ``scsma_miscount_rate``: an in-range miscount
during a bit-serial SUM/MIN round produces a *wrong value with no hang*,
invisible to both the watchdog and the recovery FSM.  This module holds
the shared vocabulary of the end-to-end integrity layer that closes that
hole -- detection-mode names, the residue code used by the ``"residue"``
mode, majority voting for the ``"vote"`` mode, and the deterministic
full-jitter backoff used by the whole-operation retry rung.

Detection modes (``CollectiveConfig.integrity``):

``"off"``
    Legacy behaviour, bit-identical to the pre-integrity fabric.
``"echo"``
    Temporal redundancy: every counted round is sampled twice (the
    slaves re-assert the same bit) and the master accepts the round with
    an explicit ACK pulse on the release line only when both samples
    agree.  A silent ACK tick makes the slaves repeat the round.
``"residue"``
    Arithmetic redundancy for the counting mechanism: after the data
    rounds, :data:`RESIDUE_BITS` extra rounds carry each contributor's
    residue (:func:`residue_of`); the master checks the accumulated
    residue against the reconstructed result before finishing the
    stage.  Elimination stages fall back to the echo scheme (residues
    do not survive MIN/MAX).
``"vote"``
    Triple temporal redundancy: three samples per round with majority
    acceptance; a clean majority over a discrepant sample is *corrected*
    in place (no retry), a three-way split retries like echo.

The residue modulus is deliberately ``2**RESIDUE_BITS - 1`` (a Mersenne
modulus), not ``2**RESIDUE_BITS``: a single miscount in data round *b*
shifts the accumulator by ``±2**b``, and ``2**b mod 2**k == 0`` for
``b >= k`` -- a power-of-two modulus is blind to every high-bit error.
``2**b mod (2**k - 1)`` cycles through ``{1, 2, ..., 2**(k-1)}`` and is
never 0, so every single-round ±1 miscount perturbs the checked residue.
"""

from __future__ import annotations

import hashlib

#: Recognized values of ``CollectiveConfig.integrity``.
INTEGRITY_MODES = ("off", "echo", "residue", "vote")

#: Number of residue rounds appended by the ``"residue"`` mode.
RESIDUE_BITS = 4

#: Mersenne residue modulus (see module docstring for why not ``2**k``).
RESIDUE_MOD = (1 << RESIDUE_BITS) - 1

#: Data samples taken per counted round, by mode.
SAMPLES_PER_ROUND = {"off": 1, "echo": 2, "residue": 1, "vote": 3}


def residue_of(value: int) -> int:
    """The residue digit a contributor serializes in the check rounds."""
    return value % RESIDUE_MOD


def majority(samples: list[int]) -> int | None:
    """Majority value of a redundant sample set, or ``None`` on a tie
    (every sample distinct)."""
    for s in samples:
        if samples.count(s) * 2 > len(samples):
            return s
    return None


def full_jitter(name: str, episode: int, attempt: int,
                base: int = 2, cap: int = 64) -> int:
    """Deterministic full-jitter backoff delay (in cycles).

    AWS-style full jitter -- ``uniform(0, min(cap, base * 2**attempt))``
    -- but drawn from a hash of ``(name, episode, attempt)`` so replays
    and the exec cache stay deterministic: no wall clock, no global RNG.
    """
    window = min(cap, base << min(attempt, 16))
    digest = hashlib.sha256(
        f"glint:{name}:{episode}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % max(1, window)
