"""Design-space exploration over the G-line configuration space.

The paper evaluates one hand-picked configuration per mesh size; this
subsystem turns the repo's full configuration surface -- mesh shape,
flat-vs-hierarchical topology, watchdog budgets, barrier variant,
collective backend and integrity mode, slot multiplexing, recovery
knobs -- into a searchable space and maps its latency/energy/area/
resilience trade-off frontier automatically.  Two layers:

* **Async sweep scheduler** (:mod:`repro.dse.scheduler`): an asyncio
  generalization of :class:`~repro.exec.ParallelRunner` that shards
  arbitrary spec batches over one or more bounded worker pools, serves
  and feeds the content-addressed :class:`~repro.exec.ResultCache`,
  journals every attempt into a :class:`~repro.exec.SweepJournal` (so
  ``repro resume`` works on DSE runs), and reuses the supervisor's
  worker entry point, deadline heuristic, failure taxonomy, chaos hook
  and full-jitter backoff per attempt.  Progress is reported through
  ``dse.*`` metric streams (:mod:`repro.obs`).
* **Pareto search driver** (:mod:`repro.dse.search` over
  :mod:`repro.dse.space` / :mod:`repro.dse.objectives` /
  :mod:`repro.dse.pareto`): a typed :class:`DseSpace` of sweepable
  axes, multi-objective extraction from :class:`~repro.chip.results.
  RunResult` (cycles/episode, network-energy proxy, dedicated-wire
  count, failover rate), dominance/front utilities, and a seeded
  successive-halving + local-mutation loop that proposes batches,
  consumes scheduler results and emits a deterministic Pareto front
  (the ``repro dse`` CLI; CSV/JSON export).

Everything is deterministic per ``--seed``: the search trajectory
depends only on simulation results (themselves deterministic), so a
warm rerun reproduces the committed golden front byte-for-byte with
zero re-simulation.  See ``docs/dse.md``.
"""

from .objectives import OBJECTIVES, Objective, extract_objectives
from .pareto import (crowded_order, dominates, nondominated_sort,
                     pareto_front)
from .scheduler import SweepScheduler, WorkerPool
from .search import (DEFAULT_OBJECTIVES, DEFAULT_RUNGS, FrontPoint,
                     SearchError, SearchResult, front_csv, front_json,
                     run_search)
from .space import (AXES, SPACES, Axis, DseSpace, SpaceError,
                    space_from_arg)

__all__ = [
    "AXES", "SPACES", "Axis", "DseSpace", "SpaceError", "space_from_arg",
    "OBJECTIVES", "Objective", "extract_objectives",
    "dominates", "pareto_front", "nondominated_sort", "crowded_order",
    "SweepScheduler", "WorkerPool",
    "DEFAULT_OBJECTIVES", "DEFAULT_RUNGS", "FrontPoint", "SearchError",
    "SearchResult", "run_search", "front_csv", "front_json",
]
