"""Dominance and Pareto-front utilities over objective vectors.

All objectives are **minimized**.  A vector ``a`` dominates ``b`` when it
is no worse in every coordinate and strictly better in at least one --
the strict product order's covering relation, which makes ``dominates``
a strict partial order (irreflexive, asymmetric, transitive; pinned by
Hypothesis in ``tests/dse/test_pareto_props.py``).

Everything here is pure and deterministic: fronts are returned as sorted
index lists into the caller's sequence, and the *set* of front vectors
is invariant under input permutation (duplicates of a front vector are
all kept -- duplicates do not dominate each other).
"""

from __future__ import annotations

from typing import Sequence

Vector = Sequence[float]


def dominates(a: Vector, b: Vector) -> bool:
    """True when *a* Pareto-dominates *b* (minimization everywhere).

    Raises :class:`ValueError` on dimension mismatch -- comparing
    vectors from different objective sets is always a caller bug.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in dimension: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(vectors: Sequence[Vector]) -> list[int]:
    """Indices of the non-dominated vectors, in ascending index order.

    The front is *minimal* (no member dominates another) and *complete*
    (every non-member is dominated by some member); both properties are
    pinned by the Hypothesis suite.  Equal vectors are all retained.
    """
    n = len(vectors)
    front: list[int] = []
    for i in range(n):
        if not any(dominates(vectors[j], vectors[i]) for j in range(n)
                   if j != i):
            front.append(i)
    return front


def nondominated_sort(vectors: Sequence[Vector]) -> list[list[int]]:
    """Partition indices into Pareto ranks (rank 0 = the front).

    Successive fronts are computed by peeling: remove the current front,
    recompute.  Every index appears in exactly one rank.
    """
    remaining = list(range(len(vectors)))
    ranks: list[list[int]] = []
    while remaining:
        sub = [vectors[i] for i in remaining]
        front_local = set(pareto_front(sub))
        rank = [remaining[k] for k in range(len(remaining))
                if k in front_local]
        ranks.append(rank)
        remaining = [remaining[k] for k in range(len(remaining))
                     if k not in front_local]
    return ranks


def crowded_order(vectors: Sequence[Vector]) -> list[int]:
    """All indices ordered best-first: by Pareto rank, then by a
    normalized objective sum (smaller = better), then by index.

    This is the deterministic selection order the successive-halving
    search truncates -- ties never depend on dict/set iteration order.
    """
    if not vectors:
        return []
    dims = len(vectors[0])
    lo = [min(v[d] for v in vectors) for d in range(dims)]
    hi = [max(v[d] for v in vectors) for d in range(dims)]
    span = [(hi[d] - lo[d]) or 1.0 for d in range(dims)]

    def score(i: int) -> float:
        return sum((vectors[i][d] - lo[d]) / span[d] for d in range(dims))

    rank_of: dict[int, int] = {}
    for r, rank in enumerate(nondominated_sort(vectors)):
        for i in rank:
            rank_of[i] = r
    return sorted(range(len(vectors)),
                  key=lambda i: (rank_of[i], score(i), i))
