"""Typed, serializable description of the sweepable G-line config space.

A :class:`DseSpace` is a named set of :class:`Axis` objects, each a
(name, candidate values) pair drawn from the registry :data:`AXES` --
mesh shape, flat-vs-hierarchical topology, watchdog budgets, barrier
variant, collective backend + integrity mode, slot multiplexing,
recovery and fault-rate knobs.  A **point** is a plain dict mapping
every axis name to one of its values; :meth:`DseSpace.build_spec` turns
a point into the :class:`~repro.exec.RunSpec` that evaluates it (the
synthetic barrier workload, or the all-reduce workload when the point
enables collectives), so every evaluation flows through the exec cache
under the standard content key -- ``CollectiveConfig`` and
``FaultPlan`` included, because the key covers the full ``CMPConfig``.

Spaces serialize losslessly (``to_dict``/``from_dict``), so the CLI's
``--space`` accepts either a preset name from :data:`SPACES` or a JSON
file.  Sampling and mutation are driven by a caller-owned
``random.Random``, never global state: the search trajectory is a pure
function of the seed and the (deterministic) simulation results.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..common.errors import ConfigError, ReproError

AxisValue = bool | int | float | str
DsePoint = dict[str, AxisValue]

#: Fault-plan seed used by the ``stuck_rate`` axis (part of the cache
#: key through the plan, so sweeping the rate stays reproducible).
FAULT_SEED = 1

#: Library-default transmitter bound (the paper's stated S-CSMA limit).
_DEFAULT_MAX_TX = 6

#: Above this many points a space is sampled by per-axis rejection
#: instead of full enumeration.
_ENUMERATE_LIMIT = 65536


class SpaceError(ReproError):
    """The space description (or a point in it) is malformed."""


def _parse_mesh(value: AxisValue) -> tuple[int, int]:
    if not isinstance(value, str):
        raise SpaceError(f"mesh value must be 'RxC', got {value!r}")
    rows_s, sep, cols_s = value.lower().partition("x")
    try:
        rows, cols = int(rows_s), int(cols_s)
    except ValueError:
        raise SpaceError(f"mesh value must be 'RxC', got {value!r}") \
            from None
    if not sep or rows < 1 or cols < 1:
        raise SpaceError(f"mesh value must be 'RxC', got {value!r}")
    return rows, cols


def _is_mesh(value: AxisValue) -> bool:
    try:
        _parse_mesh(value)
    except SpaceError:
        return False
    return True


def _is_nonneg_int(value: AxisValue) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def _is_pos_int(value: AxisValue) -> bool:
    return _is_nonneg_int(value) and value >= 1


def _is_rate(value: AxisValue) -> bool:
    return isinstance(value, int | float) \
        and not isinstance(value, bool) \
        and 0.0 <= float(value) <= 1.0


def _is_choice(*choices: str) -> Callable[[AxisValue], bool]:
    def check(value: AxisValue) -> bool:
        return isinstance(value, str) and value in choices
    return check


@dataclass(frozen=True)
class AxisDef:
    """Registry entry: what an axis means and which values are legal."""

    name: str
    description: str
    check: Callable[[AxisValue], bool]


#: Every sweepable axis.  A space may use any subset; axes it omits take
#: the library defaults of the underlying config dataclasses.
AXES: dict[str, AxisDef] = {a.name: a for a in (
    AxisDef("mesh", "mesh shape 'RxC' (sets num_cores = R*C)", _is_mesh),
    AxisDef("topology",
            "'fit' raises max_transmitters so the mesh stays a flat "
            "single-level network (the paper's evaluation rule); 'hier' "
            "keeps the stated 6-transmitter bound, so larger meshes use "
            "the hierarchical extension", _is_choice("fit", "hier")),
    AxisDef("watchdog_budget",
            "G-line watchdog budget in cycles (0 = unhardened)",
            _is_nonneg_int),
    AxisDef("watchdog_retries",
            "watchdog retries before software failover", _is_nonneg_int),
    AxisDef("barrier", "barrier implementation under test",
            _is_choice("gl", "dsw", "csw", "csw-fa")),
    AxisDef("num_barriers",
            "independent barrier contexts (space multiplexing)",
            _is_pos_int),
    AxisDef("collectives",
            "'off' = barrier workload; otherwise the all-reduce workload "
            "on the chosen fabric: 'gl', 'sw', or 'gl-<integrity>' for a "
            "protected G-line fabric ('gl-echo'/'gl-residue'/'gl-vote')",
            _is_choice("off", "gl", "sw", "gl-echo", "gl-residue",
                       "gl-vote")),
    AxisDef("collective_slots",
            "collective time-multiplexing slots (CollectiveConfig."
            "time_slots)", _is_pos_int),
    AxisDef("value_width", "collective operand width in bits",
            lambda v: _is_pos_int(v) and isinstance(v, int) and v <= 64),
    AxisDef("recovery",
            "'on' enables the self-healing recovery FSM (requires a "
            "nonzero watchdog_budget in the same point)",
            _is_choice("off", "on")),
    AxisDef("failover", "software barrier used after failover",
            _is_choice("csw", "dsw")),
    AxisDef("stuck_rate",
            "per-line per-active-cycle G-line stuck-at fault rate "
            f"(FaultPlan seed {FAULT_SEED})", _is_rate),
)}


@dataclass(frozen=True)
class Axis:
    """One sweepable dimension: a registry name plus candidate values."""

    name: str
    values: tuple[AxisValue, ...]

    def __post_init__(self) -> None:
        if self.name not in AXES:
            raise SpaceError(
                f"unknown axis {self.name!r}; known: {sorted(AXES)}")
        if not self.values:
            raise SpaceError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SpaceError(f"axis {self.name!r} has duplicate values")
        bad = [v for v in self.values if not AXES[self.name].check(v)]
        if bad:
            raise SpaceError(
                f"axis {self.name!r} has invalid value(s) {bad!r} "
                f"({AXES[self.name].description})")


@dataclass(frozen=True)
class DseSpace:
    """An ordered set of axes, with deterministic sampling/mutation."""

    name: str
    axes: tuple[Axis, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.axes:
            raise SpaceError("a space needs at least one axis")
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate axes in space {self.name!r}")

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def points(self) -> Iterator[DsePoint]:
        """Every point, in cartesian-product order over the axis order."""
        for combo in product(*(a.values for a in self.axes)):
            yield {a.name: v for a, v in zip(self.axes, combo)}

    @staticmethod
    def point_key(point: Mapping[str, AxisValue]) -> str:
        """Canonical stable identity of a point (sorted-key JSON)."""
        return json.dumps(dict(point), sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------ #
    def feasible(self, point: Mapping[str, AxisValue]) -> bool:
        """Whether the point maps to a constructible configuration.

        Axes interact (e.g. ``recovery="on"`` needs a nonzero
        ``watchdog_budget``); infeasible combinations are filtered here,
        before any simulation is scheduled.
        """
        try:
            self.build_spec(dict(point), fidelity=1)
        except (ConfigError, SpaceError):
            return False
        return True

    def sample(self, rng: random.Random, k: int) -> list[DsePoint]:
        """*k* distinct feasible points (fewer if the space is smaller),
        chosen by *rng* -- deterministic for a given rng state."""
        if k <= 0:
            return []
        if self.size <= _ENUMERATE_LIMIT:
            pool = [p for p in self.points() if self.feasible(p)]
            if len(pool) <= k:
                return pool
            return rng.sample(pool, k)
        picked: list[DsePoint] = []
        seen: set[str] = set()
        for _ in range(k * 64):
            point: DsePoint = {a.name: rng.choice(a.values)
                               for a in self.axes}
            key = self.point_key(point)
            if key in seen or not self.feasible(point):
                continue
            seen.add(key)
            picked.append(point)
            if len(picked) == k:
                break
        return picked

    def mutate(self, rng: random.Random,
               point: Mapping[str, AxisValue]) -> DsePoint | None:
        """A feasible neighbor of *point* differing in exactly one axis,
        or ``None`` when no mutable axis yields one."""
        mutable = [a for a in self.axes if len(a.values) > 1]
        if not mutable:
            return None
        for _ in range(16):
            axis = mutable[rng.randrange(len(mutable))]
            others = [v for v in axis.values if v != point[axis.name]]
            mutated = dict(point)
            mutated[axis.name] = others[rng.randrange(len(others))]
            if self.feasible(mutated):
                return mutated
        return None

    # ------------------------------------------------------------------ #
    # Point -> RunSpec
    # ------------------------------------------------------------------ #
    def build_spec(self, point: DsePoint, fidelity: int) -> Any:
        """The :class:`~repro.exec.RunSpec` evaluating *point* at
        *fidelity* (workload iterations -- the successive-halving rung).

        Raises :class:`SpaceError` for points not matching this space's
        axes, :class:`~repro.common.errors.ConfigError` for infeasible
        axis combinations.
        """
        from dataclasses import replace

        from ..collectives.config import CollectiveConfig
        from ..common.params import CMPConfig, NocConfig
        from ..exec.spec import RunSpec
        from ..faults.plan import FaultPlan
        from ..workloads.collective import CollectiveAllReduceWorkload
        from ..workloads.synthetic import SyntheticBarrierWorkload

        expected = {a.name for a in self.axes}
        if set(point) != expected:
            raise SpaceError(
                f"point axes {sorted(point)} do not match space axes "
                f"{sorted(expected)}")
        for axis in self.axes:
            if point[axis.name] not in axis.values:
                raise SpaceError(
                    f"value {point[axis.name]!r} not on axis "
                    f"{axis.name!r}")
        if fidelity < 1:
            raise SpaceError(f"fidelity must be >= 1, got {fidelity}")

        rows, cols = _parse_mesh(point.get("mesh", "4x4"))
        num_cores = rows * cols
        cfg = CMPConfig.for_cores(num_cores,
                                  noc=NocConfig(rows=rows, cols=cols))

        gline = cfg.gline
        if point.get("topology", "fit") == "fit":
            need = max(rows, cols) - 1
            if need > gline.max_transmitters:
                gline = replace(gline, max_transmitters=need)
        budget = int(point.get("watchdog_budget", 0))
        gline = replace(
            gline,
            watchdog_budget=budget,
            watchdog_retries=int(point.get("watchdog_retries",
                                           gline.watchdog_retries)),
            num_barriers=int(point.get("num_barriers",
                                       gline.num_barriers)),
            failover_barrier=str(point.get("failover",
                                           gline.failover_barrier)),
            recovery_enabled=point.get("recovery", "off") == "on",
        )

        fabric = str(point.get("collectives", "off"))
        collectives = CollectiveConfig()
        if fabric != "off":
            backend, _, integrity = fabric.partition("-")
            collectives = CollectiveConfig(
                enabled=True, backend=backend,
                integrity=integrity or "off",
                value_width=int(point.get("value_width", 8)),
                time_slots=int(point.get("collective_slots", 1)),
                watchdog_budget=budget if backend == "gl" else 0,
            )

        faults = FaultPlan()
        stuck = float(point.get("stuck_rate", 0.0))
        if stuck > 0.0:
            faults = FaultPlan(seed=FAULT_SEED, gline_stuck_rate=stuck)

        cfg = cfg.with_(gline=gline, collectives=collectives,
                        faults=faults)
        if fabric == "off":
            workload: Any = SyntheticBarrierWorkload(iterations=fidelity)
        else:
            workload = CollectiveAllReduceWorkload(iterations=fidelity)
        return RunSpec(workload=workload,
                       barrier=str(point.get("barrier", "gl")),
                       config=cfg)

    # ------------------------------------------------------------------ #
    # Serialization (the CLI's --space JSON format)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "description": self.description,
                "axes": [{"name": a.name, "values": list(a.values)}
                         for a in self.axes]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DseSpace":
        try:
            axes = tuple(Axis(name=a["name"],
                              values=tuple(a["values"]))
                         for a in data["axes"])
            return cls(name=str(data["name"]), axes=axes,
                       description=str(data.get("description", "")))
        except (KeyError, TypeError) as exc:
            raise SpaceError(f"malformed space description: {exc}") \
                from exc


# ---------------------------------------------------------------------- #
# Preset spaces
# ---------------------------------------------------------------------- #
def _space(name: str, description: str,
           axes: list[tuple[str, tuple[AxisValue, ...]]]) -> DseSpace:
    return DseSpace(name=name, description=description,
                    axes=tuple(Axis(n, v) for n, v in axes))


#: Named presets for ``repro dse --space``.
SPACES: dict[str, DseSpace] = {s.name: s for s in (
    _space("smoke",
           "3 sweepable axes at a fixed 4x4 mesh -- the CI smoke space",
           [("mesh", ("4x4",)),
            ("watchdog_budget", (0, 64)),
            ("barrier", ("gl", "dsw", "csw")),
            ("collectives", ("off", "gl", "gl-echo"))]),
    _space("default",
           "mesh shape x topology x watchdog budget x barrier variant "
           "x collective/integrity mode (16-core meshes)",
           [("mesh", ("4x4", "2x8")),
            ("topology", ("fit", "hier")),
            ("watchdog_budget", (0, 64)),
            ("barrier", ("gl", "dsw", "csw")),
            ("collectives", ("off", "gl", "gl-echo", "sw"))]),
    _space("resilience",
           "hardening/recovery knobs under seeded stuck-at faults "
           "(pair with the 'failover' objective)",
           [("mesh", ("4x4",)),
            ("watchdog_budget", (32, 64)),
            ("stuck_rate", (0.0, 0.002)),
            ("recovery", ("off", "on")),
            ("failover", ("csw", "dsw"))]),
    _space("crossover",
           "the 8x8/16x16 crossover study: barrier variant x collective "
           "backend x topology x watchdog",
           [("mesh", ("8x8", "16x16")),
            ("topology", ("fit", "hier")),
            ("watchdog_budget", (0, 64)),
            ("barrier", ("gl", "dsw", "csw")),
            ("collectives", ("off", "gl", "sw"))]),
)}


def space_from_arg(arg: str) -> DseSpace:
    """Resolve ``--space``: a preset name, or a path to a JSON file."""
    if arg in SPACES:
        return SPACES[arg]
    path = Path(arg)
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SpaceError(f"cannot read space file {path}: {exc}") \
                from exc
        return DseSpace.from_dict(data)
    raise SpaceError(
        f"unknown space {arg!r}: not a preset ({sorted(SPACES)}) and "
        f"not a file")
