"""Asyncio sweep scheduler: supervised batches over named worker pools.

:class:`~repro.exec.ParallelRunner` drives one process pool from a
blocking select loop; a DSE search wants something more general -- many
small batches in flight, sharded over one *or several* bounded pools
(e.g. a wide pool for cheap low-fidelity rungs next to a narrow pool
for expensive top-rung runs), consumable from async code.  This module
is that generalization, built by *reusing* the supervisor layer rather
than re-deriving it:

* every attempt runs in the supervisor's process entry point
  (:func:`~repro.exec.supervisor._supervised_worker`), so the failure
  taxonomy (``timeout``/``crash``/``sim-error``/``quarantined``), the
  deadline heuristic (:func:`~repro.exec.supervisor.deadline_for`), the
  chaos hook and the nested-parallelism guard are byte-for-byte the
  ones ``ParallelRunner`` uses;
* chaos tokens are stable dispatch ordinals assigned at submission, so
  a seeded :class:`~repro.faults.chaos.ChaosPlan` strikes the same
  attempts regardless of completion order;
* results feed the same content-addressed
  :class:`~repro.exec.ResultCache` and fsynced
  :class:`~repro.exec.SweepJournal` -- ``repro resume`` replays DSE
  runs exactly like sweep runs.

Concurrency model: one coroutine per pending spec, gated by its pool's
``asyncio.Semaphore``; the blocking wait on the worker process (pipe +
sentinel + deadline, same reap order as the supervisor) happens on a
dedicated thread pool sized to the total worker width, so the event
loop never blocks and retries back off with ``await asyncio.sleep``.
Every attempt is accounted in ``dse.*`` metric streams with the
invariant ``dse.attempts == dse.ok + dse.crashes + dse.timeouts +
dse.sim_errors`` (pinned by tests).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Protocol, Sequence

from ..exec.supervisor import (BACKOFF_BASE_S, BACKOFF_CAP_S,
                               CHAOS_DEFAULT_TIMEOUT_S, CRASH,
                               QUARANTINED, SIM_ERROR, TIMEOUT,
                               RunFailure, RunFailureError, Supervisor,
                               _supervised_worker, deadline_for)
from ..faults.chaos import ChaosPlan
from ..obs import MetricsRegistry


class SweepSpec(Protocol):
    """What the scheduler needs from a spec: a content key for the
    cache/journal, a fingerprint for cache entries, and a picklable
    ``execute``.  ``RunSpec`` and the verify shards both satisfy it."""

    def key(self) -> str: ...

    def fingerprint(self) -> dict[str, Any]: ...

    def execute(self) -> Any: ...


@dataclass(frozen=True)
class WorkerPool:
    """A named slice of worker capacity (``jobs`` concurrent attempts)."""

    name: str
    jobs: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be nonempty")
        if self.jobs < 1:
            raise ValueError(
                f"pool {self.name!r} needs jobs >= 1, got {self.jobs}")


@dataclass
class _Job:
    """One pending spec's scheduling state."""

    index: int
    spec: Any
    key: str | None
    token: str                  # stable chaos/dispatch ordinal
    pool: WorkerPool
    attempt: int = 0


class SweepScheduler:
    """Schedules supervised spec batches over bounded worker pools.

    The constructor captures policy (pools, cache, journal, deadlines,
    retries, chaos); :meth:`run` executes one batch synchronously and
    :meth:`run_async` does the same from async code.  Results come back
    positionally; failed slots are ``None`` under ``keep_going`` (with
    the :class:`~repro.exec.supervisor.RunFailure` appended to
    :attr:`failures`), otherwise the batch is drained and a
    :class:`~repro.exec.supervisor.RunFailureError` raised.
    """

    def __init__(self, pools: Sequence[WorkerPool] | None = None, *,
                 jobs: int | None = None, cache: Any = None,
                 journal: Any = None, timeout: float | None = None,
                 retries: int = 2, keep_going: bool = False,
                 chaos: ChaosPlan | None = None,
                 metrics: MetricsRegistry | None = None,
                 backoff_base: float = BACKOFF_BASE_S):
        if pools is not None and jobs is not None:
            raise ValueError("pass pools or jobs, not both")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if pools is None:
            width = jobs if jobs is not None else (os.cpu_count() or 1)
            pools = (WorkerPool("p0", max(1, width)),)
        names = [p.name for p in pools]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool names: {names}")
        self.pools: tuple[WorkerPool, ...] = tuple(pools)
        self.cache = cache
        self.journal = journal
        self.timeout = timeout
        self.chaos = chaos if (chaos is not None and chaos.enabled) \
            else None
        if self.timeout is None and self.chaos is not None \
                and self.chaos.hang_rate:
            self.timeout = CHAOS_DEFAULT_TIMEOUT_S
        self.retries = retries
        self.keep_going = keep_going
        self.backoff_base = backoff_base
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        #: Scheduler-lifetime cache counters (ParallelRunner parity).
        self.hits = 0
        self.misses = 0
        #: Terminal failures across this scheduler's lifetime (only
        #: populated under ``keep_going``).
        self.failures: list[RunFailure] = []
        #: Lifetime dispatch ordinal == chaos token of the n-th pending
        #: spec ever submitted; stable for a fixed submission order, so
        #: seeded chaos strikes the same attempts on every machine.
        self._ordinal = 0
        self._rng = random.Random(
            self.chaos.seed if self.chaos is not None else 0)
        #: Set while tearing down a cancelled batch: blocking attempt
        #: threads notice within one poll tick, kill their worker and
        #: return, so interrupts never leak processes or stall exit.
        self._abort = threading.Event()

    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        return sum(p.jobs for p in self.pools)

    def _count(self, name: str, by: int = 1) -> None:
        self.metrics.counter(name).inc(by)

    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[Any]) -> list[Any]:
        """Synchronous entry point: execute *specs*, results positional."""
        try:
            return asyncio.run(self.run_async(specs))
        except KeyboardInterrupt:
            if self.journal is not None:
                self.journal.interrupted()
            raise

    async def run_async(self, specs: Sequence[Any]) -> list[Any]:
        """Async entry point; see :meth:`run`."""
        results: list[Any] = [None] * len(specs)
        pending: list[_Job] = []
        self._count("dse.specs", len(specs))
        for i, spec in enumerate(specs):
            key = spec.key() if self.cache is not None else None
            if key is not None:
                stored = self.cache.get(key)
                if stored is not None:
                    self.hits += 1
                    self._count("dse.cache.hits")
                    if self.journal is not None:
                        self.journal.hit(key)
                    results[i] = self._decode(spec, stored)
                    continue
            self.misses += 1
            self._count("dse.cache.misses")
            pending.append(_Job(
                index=i, spec=spec, key=key, token=str(self._ordinal),
                pool=self.pools[len(pending) % len(self.pools)]))
            self._ordinal += 1
        if not pending:
            return results

        loop = asyncio.get_running_loop()
        sems = {p.name: asyncio.Semaphore(p.jobs) for p in self.pools}
        threads = ThreadPoolExecutor(
            max_workers=min(self.width, len(pending)),
            thread_name_prefix="dse-reap")
        batch_failures: list[RunFailure] = []
        self._abort.clear()
        try:
            await asyncio.gather(*(
                self._drive(job, sems[job.pool.name], loop, threads,
                            results, batch_failures)
                for job in pending))
        except asyncio.CancelledError:
            self._abort.set()
            raise
        finally:
            threads.shutdown(wait=True)
        if batch_failures and not self.keep_going:
            raise RunFailureError(batch_failures)
        self.failures.extend(batch_failures)
        return results

    # ------------------------------------------------------------------ #
    async def _drive(self, job: _Job, sem: asyncio.Semaphore,
                     loop: asyncio.AbstractEventLoop,
                     threads: ThreadPoolExecutor, results: list[Any],
                     failures: list[RunFailure]) -> None:
        """Attempt loop for one spec: launch under the pool semaphore,
        retry crash/timeout with full-jitter backoff, quarantine when
        the budget is exhausted, fail sim-errors fast."""
        inflight = self.metrics.gauge("dse.inflight")
        while True:
            async with sem:
                self._count("dse.attempts")
                self._count(f"dse.pool.{job.pool.name}.launched")
                inflight.set(inflight.value + 1)
                try:
                    kind, payload = await loop.run_in_executor(
                        threads, self._attempt, job)
                finally:
                    inflight.set(inflight.value - 1)

            if kind == "ok":
                self._count("dse.ok")
                self._complete(job, payload, results)
                return
            self._count({CRASH: "dse.crashes", TIMEOUT: "dse.timeouts",
                         SIM_ERROR: "dse.sim_errors"}[kind])
            if self.journal is not None:
                self.journal.attempt(job.key or job.token, job.attempt,
                                     kind, detail=payload)
            if kind != SIM_ERROR and job.attempt < self.retries:
                delay = self._rng.uniform(
                    0.0, min(BACKOFF_CAP_S,
                             self.backoff_base * (2 ** job.attempt)))
                job.attempt += 1
                self._count("dse.retries")
                self.metrics.histogram("dse.retry.delay_ms") \
                    .record(int(delay * 1000))
                await asyncio.sleep(delay)
                continue
            failures.append(self._fail(job, kind, payload))
            return

    # ------------------------------------------------------------------ #
    # Blocking attempt (runs on the reap thread pool)
    # ------------------------------------------------------------------ #
    def _attempt(self, job: _Job) -> tuple[str, Any]:
        """One supervised attempt: launch the worker process and block
        until a result lands, the process dies, the deadline passes, or
        the batch is aborted.  Same reap-order discipline as the
        supervisor: liveness is sampled *before* polling the pipe."""
        ctx = multiprocessing.get_context()
        parent, child = ctx.Pipe(duplex=False)
        chaos = self.chaos.to_dict() if self.chaos is not None else None
        process = ctx.Process(
            target=_supervised_worker,
            args=(child, job.spec, chaos, job.token, job.attempt),
            daemon=True)
        process.start()
        child.close()
        # The deadline heuristic reads RunSpec.max_events; other
        # SweepSpec implementations may not have it (no event budget,
        # no derived deadline -- same as a RunSpec with max_events
        # None).
        budget = self.timeout if self.timeout is not None else (
            deadline_for(job.spec, None)
            if getattr(job.spec, "max_events", None) is not None
            else None)
        started = time.monotonic()
        deadline = None if budget is None else started + budget
        while True:
            now = time.monotonic()
            waits = [0.1]
            if deadline is not None:
                waits.append(deadline - now)
            _conn_wait([parent, process.sentinel],
                       max(0.0, min(waits)))
            if self._abort.is_set():
                Supervisor._kill(process)
                parent.close()
                return (TIMEOUT, "batch aborted")
            alive = process.is_alive()
            if parent.poll():
                try:
                    kind, payload = parent.recv()
                except (EOFError, OSError):
                    return self._crashed(process, parent)
                process.join()
                parent.close()
                return (kind, payload)
            if not alive:
                process.join()
                return self._crashed(process, parent)
            if deadline is not None and time.monotonic() >= deadline:
                Supervisor._kill(process)
                parent.close()
                elapsed = time.monotonic() - started
                return (TIMEOUT, f"deadline {elapsed:.1f}s exceeded")

    @staticmethod
    def _crashed(process: Any, parent: Any) -> tuple[str, str]:
        parent.close()
        code = process.exitcode
        how = f"signal {-code}" if (code is not None and code < 0) \
            else f"exitcode {code}"
        return (CRASH, f"worker died ({how})")

    # ------------------------------------------------------------------ #
    # Completion / failure (event-loop thread only)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _decode(spec: Any, result_dict: dict[str, Any]) -> Any:
        from ..exec.parallel import _result_decoder

        return _result_decoder(spec)(result_dict)

    def _complete(self, job: _Job, result_dict: dict[str, Any],
                  results: list[Any]) -> None:
        if self.cache is not None and job.key is not None:
            self.cache.put(job.key, job.spec.fingerprint(), result_dict)
        results[job.index] = self._decode(job.spec, result_dict)
        if self.journal is not None:
            self.journal.attempt(job.key or job.token, job.attempt, "ok")
            self.journal.done(job.key or job.token, job.attempt + 1)

    def _fail(self, job: _Job, kind: str, detail: str) -> RunFailure:
        attempts = job.attempt + 1
        if kind == SIM_ERROR:
            failure = RunFailure(index=job.index, key=job.key,
                                 kind=SIM_ERROR, attempts=attempts,
                                 detail=detail)
        else:
            self._count("dse.quarantined")
            failure = RunFailure(
                index=job.index, key=job.key, kind=QUARANTINED,
                attempts=attempts,
                detail=f"last failure: {kind} ({detail})")
        if self.journal is not None:
            self.journal.quarantine(job.key or job.token, attempts, kind)
        return failure

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line cache-hit/miss digest (ParallelRunner's format, so
        the CLI's warm-rerun greps work unchanged on DSE runs)."""
        total = self.hits + self.misses
        failed = f", {len(self.failures)} failed" if self.failures else ""
        pools = "+".join(f"{p.name}:{p.jobs}" for p in self.pools)
        if self.cache is None:
            return f"cache disabled; {total} runs executed{failed}"
        rate = (self.hits / total * 100) if total else 0.0
        return (f"{self.hits}/{total} cache hits ({rate:.0f}%), "
                f"{self.misses} simulated{failed}  "
                f"[dir={self.cache.directory}, pools={pools}]")
