"""Multi-objective extraction from evaluated design points.

Each :class:`Objective` maps an evaluated ``(RunSpec, RunResult)`` pair
to one scalar that the Pareto layer **minimizes**.  The registry
:data:`OBJECTIVES` covers the four trade-off dimensions the paper's
comparison tables reason about informally:

* ``latency`` -- cycles per synchronization episode (per barrier for
  the synthetic workload, per collective operation for the all-reduce
  workload), so points running different workloads or fidelities stay
  comparable;
* ``energy`` -- the network-energy proxy of :mod:`repro.analysis.
  energy` (flit-hops + router traversals + G-line toggles), normalized
  per episode for the same reason;
* ``wires`` -- dedicated global wires the point's hardware spends: the
  barrier network's budget (zero for software barriers) plus one line
  set per *physical* collective context (time-multiplexed contexts
  share wires).  A first-order proxy: the hierarchical extension's
  segment wiring is approximated by the flat budget.
* ``failover`` -- software-fallback arrivals per core per episode, the
  resilience metric of :mod:`repro.experiments.resilience` (zero on
  fault-free points).

Extractors are pure functions of the spec + result, so objective
vectors are as deterministic as the simulations that produce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..common.errors import ReproError


class ObjectiveError(ReproError):
    """An unknown objective name was requested."""


def _episodes(spec: Any, result: Any) -> int:
    """Synchronization episodes in the run (>= 1).

    Barrier workloads report them through the stats registry; the
    all-reduce workload performs one collective per iteration.
    """
    barriers = int(result.num_barriers())
    if barriers > 0:
        return barriers
    return max(1, int(getattr(spec.workload, "iterations", 1)))


def _latency(spec: Any, result: Any) -> float:
    return float(result.total_cycles) / _episodes(spec, result)


def _energy(spec: Any, result: Any) -> float:
    from ..analysis.energy import estimate

    return float(estimate("dse", result).total) / _episodes(spec, result)


def _wires(spec: Any, result: Any) -> float:
    from ..gline.area import gline_budget

    cfg = spec.config
    rows, cols = cfg.noc.rows, cfg.noc.cols
    wires = 0
    if spec.barrier == "gl":
        wires += gline_budget(rows, cols, cfg.gline.num_barriers).wires
    cc = cfg.collectives
    if cc.enabled and cc.backend == "gl":
        slots = max(1, cc.time_slots)
        physical = -(-cc.num_contexts // slots)  # ceil division
        wires += gline_budget(rows, cols, physical).wires
    return float(wires)


def _failover(spec: Any, result: Any) -> float:
    arrivals = result.stats.counters.get("faults.failover.sw_arrivals", 0)
    cores = max(1, int(result.num_cores))
    return float(arrivals) / (_episodes(spec, result) * cores)


@dataclass(frozen=True)
class Objective:
    """A named, minimized scalar extracted from an evaluation."""

    name: str
    unit: str
    description: str
    extract: Callable[[Any, Any], float]


#: Registry keyed by CLI ``--objectives`` name.
OBJECTIVES: dict[str, Objective] = {o.name: o for o in (
    Objective("latency", "cycles/episode",
              "total cycles per synchronization episode", _latency),
    Objective("energy", "units/episode",
              "network-energy proxy per episode", _energy),
    Objective("wires", "wires",
              "dedicated global wires (barrier + physical collective "
              "contexts)", _wires),
    Objective("failover", "arrivals/core/episode",
              "software-failover arrivals per core per episode",
              _failover),
)}


def extract_objectives(names: tuple[str, ...], spec: Any,
                       result: Any) -> tuple[float, ...]:
    """The objective vector for one evaluation, in ``names`` order."""
    unknown = [n for n in names if n not in OBJECTIVES]
    if unknown:
        raise ObjectiveError(
            f"unknown objective(s) {unknown}; known: {sorted(OBJECTIVES)}")
    return tuple(OBJECTIVES[n].extract(spec, result) for n in names)
