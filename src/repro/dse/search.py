"""Seeded successive-halving + local-mutation Pareto search.

The loop proposes cohorts of design points, evaluates them through a
:class:`~repro.dse.scheduler.SweepScheduler` at increasing *fidelity*
rungs (workload iterations), truncates each rung to the better half in
:func:`~repro.dse.pareto.crowded_order`, and keeps every top-rung
objective vector in an elite pool.  Subsequent cohorts are one-axis
mutations of the current elite Pareto front (falling back to fresh
random samples when mutation stops finding unseen points), so the
search walks the trade-off surface instead of re-gridding it.

**Budget = evaluation requests, not simulations.**  Every scheduled
``(point, rung)`` pair costs one unit whether it is simulated or served
from the result cache.  That makes the trajectory a pure function of
``(space, objectives, budget, seed, rungs)`` plus the deterministic
simulation results -- so a warm rerun follows the identical trajectory
with **zero** re-simulated specs and reproduces the committed golden
front byte-for-byte, and ``repro resume`` on an interrupted DSE journal
fast-forwards through everything already cached.

Failed evaluations (quarantined after retries, or deterministic
sim-errors -- e.g. a fault-rate point whose unhardened barrier
deadlocks) still consume budget but drop out of the cohort: an
infeasible-at-runtime design is simply never promoted.
"""

from __future__ import annotations

import csv
import io
import json
import random
from dataclasses import dataclass
from typing import Any, Sequence

from ..common.errors import ReproError
from .objectives import OBJECTIVES, extract_objectives
from .pareto import crowded_order, pareto_front
from .scheduler import SweepScheduler
from .space import DsePoint, DseSpace

#: Fidelity rungs: workload iterations per successive-halving stage.
DEFAULT_RUNGS = (3, 6, 12)

#: Default objective set (the failover objective is opt-in: it is
#: identically zero on fault-free spaces and would only pad the front).
DEFAULT_OBJECTIVES = ("latency", "energy", "wires")


class SearchError(ReproError):
    """The search was asked to do something impossible."""


@dataclass(frozen=True)
class FrontPoint:
    """One Pareto-optimal design point at the top fidelity rung."""

    point: DsePoint
    objectives: dict[str, float]
    fidelity: int

    def to_dict(self) -> dict[str, Any]:
        return {"point": dict(self.point),
                "objectives": dict(self.objectives),
                "fidelity": self.fidelity}


@dataclass
class SearchResult:
    """Outcome of one :func:`run_search` call."""

    space: str
    objectives: tuple[str, ...]
    seed: int
    budget: int
    rungs: tuple[int, ...]
    #: Evaluation requests consumed (cache hits included -- see the
    #: module docstring).
    evaluations: int
    #: Evaluations dropped to scheduler failure (quarantine/sim-error).
    failed: int
    #: Propose-evaluate-promote waves executed.
    rounds: int
    front: list[FrontPoint]

    def to_dict(self) -> dict[str, Any]:
        return {"space": self.space,
                "objectives": list(self.objectives),
                "seed": self.seed, "budget": self.budget,
                "rungs": list(self.rungs),
                "evaluations": self.evaluations, "failed": self.failed,
                "rounds": self.rounds,
                "front": [fp.to_dict() for fp in self.front]}

    def table(self) -> str:
        from ..analysis.report import render_table

        axes = sorted({name for fp in self.front for name in fp.point})
        headers = axes + [f"{n} ({OBJECTIVES[n].unit})"
                          for n in self.objectives]
        rows: list[list[Any]] = []
        for fp in self.front:
            rows.append([fp.point.get(a, "-") for a in axes] +
                        [f"{fp.objectives[n]:.4g}"
                         for n in self.objectives])
        title = (f"Pareto front: space={self.space} seed={self.seed} "
                 f"budget={self.budget} "
                 f"({self.evaluations} evaluations, "
                 f"{len(self.front)} points)")
        return render_table(headers, rows, title=title)


def front_json(result: SearchResult) -> str:
    """Canonical JSON export (sorted keys; the committed golden form)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"


def front_csv(result: SearchResult) -> str:
    """Flat CSV export: one row per front point, axes then objectives."""
    axes = sorted({name for fp in result.front for name in fp.point})
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(axes + list(result.objectives))
    for fp in result.front:
        writer.writerow([fp.point.get(a, "") for a in axes] +
                        [fp.objectives[n] for n in result.objectives])
    return out.getvalue()


# ---------------------------------------------------------------------- #
def run_search(space: DseSpace,
               objectives: Sequence[str] = DEFAULT_OBJECTIVES,
               budget: int = 32, seed: int = 7,
               scheduler: SweepScheduler | None = None,
               rungs: Sequence[int] = DEFAULT_RUNGS) -> SearchResult:
    """Map *space*'s Pareto front under *objectives* within *budget*
    evaluation requests.  Deterministic per seed (see module docstring).

    The *scheduler* should run with ``keep_going`` so runtime-infeasible
    points are dropped instead of aborting the search; the default one
    does.
    """
    names = tuple(objectives)
    unknown = [n for n in names if n not in OBJECTIVES]
    if not names or unknown:
        raise SearchError(
            f"bad objectives {list(names)}: unknown {unknown}, "
            f"known {sorted(OBJECTIVES)}")
    rung_list = tuple(rungs)
    if not rung_list or list(rung_list) != sorted(set(rung_list)) \
            or rung_list[0] < 1:
        raise SearchError(
            f"rungs must be strictly increasing and >= 1: {rungs}")
    if budget < 1:
        raise SearchError(f"budget must be >= 1, got {budget}")

    sched = scheduler if scheduler is not None \
        else SweepScheduler(jobs=1, keep_going=True)
    rng = random.Random(seed)
    cohort_k = max(2, budget // (len(rung_list) + 1))

    seen: set[str] = set()
    #: point_key -> (point, top-rung objective vector), insertion
    #: irrelevant: always iterated in sorted-key order.
    elite: dict[str, tuple[DsePoint, tuple[float, ...]]] = {}
    evals_used = 0
    failed = 0
    rounds = 0

    def elite_front() -> list[DsePoint]:
        items = sorted(elite.items())
        if not items:
            return []
        idxs = pareto_front([vec for _, (_, vec) in items])
        return [items[i][1][0] for i in idxs]

    def propose(k: int) -> list[DsePoint]:
        """The next cohort: unseen mutations of the current elite
        front, topped up with fresh samples; empty when exhausted."""
        out: list[DsePoint] = []
        bases = elite_front()
        attempts = 0
        while len(out) < k and attempts < 16 * k:
            attempts += 1
            cand: DsePoint | None = None
            if bases:
                cand = space.mutate(rng, bases[attempts % len(bases)])
            if cand is None or space.point_key(cand) in seen:
                fresh = space.sample(rng, 1)
                cand = fresh[0] if fresh else None
            if cand is None:
                break
            key = space.point_key(cand)
            if key in seen:
                continue
            seen.add(key)
            out.append(cand)
        return out

    def evaluate(points: list[DsePoint],
                 fidelity: int) -> list[tuple[DsePoint,
                                              tuple[float, ...]]]:
        nonlocal evals_used, failed
        specs = [space.build_spec(p, fidelity) for p in points]
        results = sched.run(specs)
        evals_used += len(points)
        pairs: list[tuple[DsePoint, tuple[float, ...]]] = []
        for point, spec, result in zip(points, specs, results):
            if result is None:
                failed += 1
                continue
            pairs.append((point,
                          extract_objectives(names, spec, result)))
        return pairs

    # Wave 1 seeds from random samples; later waves from mutations.
    cohort = space.sample(rng, min(cohort_k, budget))
    seen.update(space.point_key(p) for p in cohort)
    while cohort and evals_used < budget:
        rounds += 1
        for r_idx, fidelity in enumerate(rung_list):
            cohort = cohort[:budget - evals_used]
            if not cohort:
                break
            pairs = evaluate(cohort, fidelity)
            if not pairs:
                cohort = []
                break
            if r_idx == len(rung_list) - 1:
                for point, vec in pairs:
                    elite[space.point_key(point)] = (point, vec)
                break
            order = crowded_order([vec for _, vec in pairs])
            keep = max(1, (len(pairs) + 1) // 2)
            cohort = [pairs[i][0] for i in order[:keep]]
        if evals_used >= budget:
            break
        cohort = propose(min(cohort_k, budget - evals_used))

    front_points = []
    for point in elite_front():
        vec = elite[space.point_key(point)][1]
        front_points.append(FrontPoint(
            point=point,
            objectives={n: v for n, v in zip(names, vec)},
            fidelity=rung_list[-1]))
    front_points.sort(
        key=lambda fp: (tuple(fp.objectives[n] for n in names),
                        DseSpace.point_key(fp.point)))
    return SearchResult(
        space=space.name, objectives=names, seed=seed, budget=budget,
        rungs=rung_list, evaluations=evals_used, failed=failed,
        rounds=rounds, front=front_points)
