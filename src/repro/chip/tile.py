"""One tile of the CMP: core + private L1 + L2 bank/directory + memory port.

The router lives in the network object; G-line controllers live in the
barrier network.  The tile is the wiring unit the chip assembles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core import Core
from ..mem.directory import HomeController
from ..mem.l1 import L1Cache
from ..mem.memory import MemoryController


@dataclass
class Tile:
    tile_id: int
    core: Core
    l1: L1Cache
    home: HomeController
    memctrl: MemoryController

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tile {self.tile_id}>"
