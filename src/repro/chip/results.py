"""Results bundle returned by a CMP run."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.stats import CycleCat, MsgCat, StatsRegistry


@dataclass
class RunResult:
    """Everything an experiment needs from one simulation run."""

    #: Cycle at which the last core finished.
    total_cycles: int
    #: Barrier implementation name ("GL", "DSW", "CSW", ...).
    barrier_name: str
    num_cores: int
    stats: StatsRegistry
    events_executed: int
    #: Observability snapshot (``MetricsRegistry.to_dict()``) when the run
    #: had an obs bundle attached; {} otherwise.  Not part of the cache
    #: key, and the trace CLI strips it before caching so traced and
    #: untraced runs stay interchangeable.
    metrics: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def cycle_breakdown(self) -> dict[CycleCat, int]:
        """Chip-wide attributed cycles per Figure-6 category."""
        return self.stats.cycle_breakdown()

    def cycle_fractions(self) -> dict[CycleCat, float]:
        """Per-category fraction of total attributed cycles."""
        breakdown = self.cycle_breakdown()
        total = sum(breakdown.values()) or 1
        return {cat: n / total for cat, n in breakdown.items()}

    def messages(self) -> dict[MsgCat, int]:
        """Network messages per Figure-7 category."""
        return self.stats.message_breakdown()

    def total_messages(self) -> int:
        return self.stats.total_messages()

    def num_barriers(self) -> int:
        return self.stats.num_barriers()

    def avg_barrier_latency(self) -> float:
        """Mean cycles from last arrival to release (hardware barrier)."""
        return self.stats.avg_barrier_latency()

    def barrier_period(self) -> float:
        """Average cycles between consecutive barrier executions --
        Table 2's 'Barrier Period' (total cycles / #barriers)."""
        n = self.num_barriers()
        return self.total_cycles / n if n else float("inf")

    def barrier_cycles(self) -> int:
        """Total cycles attributed to the Barrier category."""
        return self.cycle_breakdown()[CycleCat.BARRIER]

    # ------------------------------------------------------------------ #
    # Serialization (cache / worker-IPC format)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Lossless plain-dict form; ``to_dict`` is a fixed point of
        ``from_dict(to_dict())`` (the result cache and the worker IPC of
        :mod:`repro.exec` both ship exactly this)."""
        return {
            "total_cycles": self.total_cycles,
            "barrier_name": self.barrier_name,
            "num_cores": self.num_cores,
            "events_executed": self.events_executed,
            "stats": self.stats.to_dict(),
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(total_cycles=data["total_cycles"],
                   barrier_name=data["barrier_name"],
                   num_cores=data["num_cores"],
                   stats=StatsRegistry.from_dict(data["stats"]),
                   events_executed=data["events_executed"],
                   # Pre-obs cache entries have no metrics snapshot.
                   metrics=data.get("metrics", {}))

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            f"barrier={self.barrier_name} cores={self.num_cores} "
            f"cycles={self.total_cycles} events={self.events_executed}",
            "cycle breakdown: " + "  ".join(
                f"{cat.value}={frac:.1%}"
                for cat, frac in self.cycle_fractions().items()),
            "messages: " + "  ".join(
                f"{cat.value}={n}" for cat, n in self.messages().items())
            + f"  total={self.total_messages()}",
            f"barriers: {self.num_barriers()}"
            f" (period {self.barrier_period():.0f} cycles)",
        ]
        return "\n".join(lines)
