"""Chip assembly and run harness."""

from .cmp import BARRIER_KINDS, CMP
from .results import RunResult
from .tile import Tile

__all__ = ["BARRIER_KINDS", "CMP", "RunResult", "Tile"]
