"""Chip assembly: builds the full CMP and runs workloads on it.

Typical use::

    from repro import CMP, CMPConfig
    from repro.workloads import SyntheticBarrierWorkload

    chip = CMP(CMPConfig.for_cores(32), barrier="gl")
    result = chip.run(SyntheticBarrierWorkload(iterations=100))
    print(result.summary())
"""

from __future__ import annotations

from typing import Generator, Iterable

from ..collectives import (
    GLCollective, SoftwareAllReduce, build_collective_contexts,
)
from ..collectives.library import CollectiveImpl
from ..common.errors import ConfigError, DeadlockError, SimulationError
from ..common.params import CMPConfig
from ..common.stats import StatsRegistry
from ..cpu.core import Core
from ..faults import FaultInjector
from ..gline.barrier import GLBarrier
from ..gline.multibarrier import build_contexts
from ..mem.address import AddressMap, Allocator
from ..mem.directory import HomeController
from ..mem.funcmem import FunctionalMemory
from ..mem.l1 import L1Cache
from ..mem.memory import MemoryController
from ..noc.network import Network
from ..obs import Observability
from ..sim import make_engine
from ..sync.accounting import BarrierAccounting
from ..sync.api import BarrierImpl
from ..sync.csw import CentralizedBarrier
from ..sync.dissemination import DisseminationBarrier
from ..sync.dsw import CombiningTreeBarrier
from ..sync.locks import TTSLock
from ..sync.tournament import TournamentBarrier
from .results import RunResult
from .tile import Tile

#: Names accepted by the ``barrier=`` argument.
BARRIER_KINDS = ("gl", "dsw", "csw", "csw-fa", "diss", "tour")


class CMP:
    """A simulated tiled chip multiprocessor."""

    def __init__(self, config: CMPConfig | None = None,
                 barrier: str | BarrierImpl = "gl",
                 obs: Observability | None = None):
        self.config = config or CMPConfig()
        #: Observability bundle (repro.obs).  Deliberately NOT part of
        #: CMPConfig: a traced run and an untraced run share the same
        #: exec-cache key and must produce identical results.
        self.obs = None
        self.engine = make_engine(self.config.sim_backend)
        self.stats = StatsRegistry(self.config.num_cores)
        self.funcmem = FunctionalMemory()
        self.amap = AddressMap(self.config.num_cores, self.config.line_bytes)
        self.allocator = Allocator(self.amap)
        if self.config.noc.model == "vct":
            from ..noc.vct import VCTNetwork
            self.network = VCTNetwork(self.engine, self.stats,
                                      self.config.noc,
                                      self.config.noc.vct_buffer_flits)
        else:
            self.network = Network(self.engine, self.stats,
                                   self.config.noc)
        self.lock_alg = TTSLock()
        self.accounting = BarrierAccounting(self.stats,
                                            self.config.num_cores)
        #: One shared fault injector, or None when the plan is all-zero --
        #: a disabled plan must add zero events and zero per-event checks
        #: beyond the attribute tests, keeping fault-free runs identical.
        self.injector = None
        if self.config.faults.enabled:
            self.injector = FaultInjector(self.config.faults, self.stats)
            self.network.injector = self.injector

        self.tiles: list[Tile] = []
        for t in range(self.config.num_cores):
            memctrl = MemoryController(self.engine, self.stats, t,
                                       self.config.memory_latency)
            home = HomeController(self.engine, self.stats, t,
                                  self.config.l2, self.config.noc,
                                  self.network, memctrl, self.amap)
            l1 = L1Cache(self.engine, self.stats, t, self.config.l1,
                         self.config.noc, self.network, self.funcmem,
                         self.amap)
            core = Core(self.engine, self.stats, t, l1, self.config.core)
            self.tiles.append(Tile(t, core, l1, home, memctrl))

        # Cross-wire the protocol agents.
        for tile in self.tiles:
            tile.home.l1_resolver = lambda t: self.tiles[t].l1
            tile.l1.home_resolver = lambda t: self.tiles[t].home

        self.barrier_impl = self._make_barrier(barrier)
        self.collective_impl = self._make_collective()
        for tile in self.tiles:
            tile.core.barrier_binding = self.barrier_impl
            tile.core.collective_binding = self.collective_impl
            tile.core.lock_binding = self.lock_alg
            tile.core.barrier_accounting = self.accounting
            tile.core.injector = self.injector
        if self.injector is not None:
            for impl in (self.barrier_impl, self.collective_impl):
                for net in getattr(impl, "networks", []):
                    if hasattr(net, "set_injector"):
                        net.set_injector(self.injector)
        if obs is not None:
            self.set_obs(obs)

    # ------------------------------------------------------------------ #
    def set_obs(self, obs: Observability) -> None:
        """Thread an observability bundle through every layer.

        Instrumentation is strictly read-only -- it never schedules events
        or touches StatsRegistry -- so attaching a bundle cannot change
        simulation results."""
        self.obs = obs
        self.engine.tracer = obs.tracer
        self.network.tracer = obs.tracer
        self.network.metrics = obs.metrics
        for tile in self.tiles:
            for comp in (tile.core, tile.l1, tile.home, tile.memctrl):
                comp.tracer = obs.tracer
                comp.metrics = obs.metrics
            tile.core.flight = obs.flight
        for impl in (self.barrier_impl, self.collective_impl):
            for net in getattr(impl, "networks", []):
                if hasattr(net, "set_obs"):
                    net.set_obs(obs)

    # ------------------------------------------------------------------ #
    def _make_barrier(self, barrier: str | BarrierImpl) -> BarrierImpl:
        if isinstance(barrier, BarrierImpl):
            return barrier
        kind = barrier.lower()
        ncontexts = self.config.gline.num_barriers
        if kind == "gl":
            contexts = build_contexts(self.engine, self.stats,
                                      self.config.noc.rows,
                                      self.config.noc.cols,
                                      self.config.gline)
            fallback = None
            if self.config.gline.watchdog_budget > 0:
                # Hardened mode: provision the software barrier the
                # watchdog fails quarantined episodes over to.
                fallback = self._make_barrier(
                    self.config.gline.failover_barrier)
            return GLBarrier(contexts, self.config.gline, fallback=fallback)
        if kind == "dsw":
            return CombiningTreeBarrier(
                self.allocator, list(range(self.config.num_cores)),
                num_contexts=ncontexts)
        if kind == "csw":
            return CentralizedBarrier(self.allocator,
                                      self.config.num_cores,
                                      num_contexts=ncontexts,
                                      variant="lock")
        if kind == "csw-fa":
            return CentralizedBarrier(self.allocator,
                                      self.config.num_cores,
                                      num_contexts=ncontexts,
                                      variant="fetchadd")
        if kind == "diss":
            return DisseminationBarrier(self.allocator,
                                        self.config.num_cores,
                                        num_contexts=ncontexts)
        if kind == "tour":
            return TournamentBarrier(self.allocator,
                                     self.config.num_cores,
                                     num_contexts=ncontexts)
        raise ConfigError(
            f"unknown barrier kind {barrier!r}; expected one of "
            f"{BARRIER_KINDS} or a BarrierImpl instance")

    def _make_collective(self) -> CollectiveImpl | None:
        """Build the collective engine per ``config.collectives``.

        Disabled (the default) constructs nothing at all -- no G-lines,
        no allocator traffic -- so barrier-only chips stay byte-identical
        to pre-collective builds."""
        cc = self.config.collectives
        if not cc.enabled:
            return None
        ncontexts = max(cc.num_contexts, cc.time_slots)
        if cc.backend == "sw":
            return SoftwareAllReduce(self.allocator, self.config.num_cores,
                                     num_contexts=ncontexts,
                                     value_width=cc.value_width)
        contexts = build_collective_contexts(
            self.engine, self.stats, self.config.noc.rows,
            self.config.noc.cols, self.config.gline, cc)
        fallback = None
        if cc.watchdog_budget > 0 or cc.integrity != "off":
            # Hardened mode: provision the software all-reduce the
            # watchdog -- or the integrity ladder's final rung -- fails
            # quarantined episodes over to.
            fallback = SoftwareAllReduce(self.allocator,
                                         self.config.num_cores,
                                         num_contexts=len(contexts),
                                         value_width=cc.value_width)
        return GLCollective(contexts,
                            entry_overhead=self.config.gline.entry_overhead,
                            fallback=fallback)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Zero all measurement state while keeping architectural state
        (cache contents, functional memory, barrier senses) intact.

        Use after a warm-up run so cold-start misses don't pollute the
        measured region -- the standard multiprocessor-simulation
        methodology (the paper's results are likewise steady-state)."""
        self.stats = StatsRegistry(self.config.num_cores)
        self.accounting.stats = self.stats
        self.network.stats = self.stats
        if self.injector is not None:
            self.injector.stats = self.stats
        for tile in self.tiles:
            tile.core.stats = self.stats
            tile.l1.stats = self.stats
            tile.home.stats = self.stats
            tile.memctrl.stats = self.stats
        for impl in (self.barrier_impl, self.collective_impl):
            for net in getattr(impl, "networks", []):
                if hasattr(net, "set_stats"):
                    net.set_stats(self.stats)
                elif hasattr(net, "stats"):
                    net.stats = self.stats

    def run_with_warmup(self, warmup_workload, workload, **kw) -> RunResult:
        """Run *warmup_workload* (discarding its statistics), then measure
        *workload* on the warmed chip."""
        self.run(warmup_workload, **kw)
        self.reset_stats()
        # Cores are finished; clear their run state for the measured pass.
        for tile in self.tiles:
            core = tile.core
            core.finished = False
            core.finish_time = None
            core._frames.clear()
            core._phase_stack.clear()
        return self.run(workload, **kw)

    # ------------------------------------------------------------------ #
    @property
    def cores(self) -> list[Core]:
        return [tile.core for tile in self.tiles]

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    # ------------------------------------------------------------------ #
    def run(self, workload, *, max_cycles: int | None = None,
            max_events: int | None = None) -> RunResult:
        """Build *workload*'s per-core programs, execute them to completion
        and return the :class:`RunResult`.

        *workload* is anything with a ``build(chip) -> list[Generator]``
        method (see :mod:`repro.workloads`), or a plain list of per-core
        generators (one per core; ``None`` entries idle that core).
        """
        if hasattr(workload, "build"):
            programs = workload.build(self)
        else:
            programs = list(workload)
        if len(programs) != self.num_cores:
            raise ConfigError(
                f"workload built {len(programs)} programs for "
                f"{self.num_cores} cores")
        started = []
        for core, program in zip(self.cores, programs):
            if program is not None:
                core.start(program)
                started.append(core)
        if not started:
            raise ConfigError("workload started no programs")

        self.engine.run(until=max_cycles, max_events=max_events)

        blocked = tuple(c.cid for c in started if not c.finished)
        if blocked:
            if self.engine.pending() == 0:
                detail = ", ".join(
                    f"core {c.cid}: "
                    f"{type(c.pending_op).__name__ if c.pending_op is not None else 'not started'}"
                    + (" [fail-stopped]" if c.halted else "")
                    for c in started if not c.finished)
                message = (
                    f"simulation deadlocked at cycle {self.engine.now}: "
                    f"cores {list(blocked)} blocked with no pending events "
                    f"({detail}) -- barrier some core never reaches, or "
                    f"mismatched barrier counts")
                if self.obs is not None and self.obs.flight is not None:
                    # Post-mortem tail only when observability is on; the
                    # base message format stays stable otherwise.
                    tail = self.obs.flight.format_tail(blocked)
                    if tail:
                        message += "\n" + tail
                raise DeadlockError(message, blocked_cores=blocked)
            raise SimulationError(
                f"simulation hit its budget (max_cycles={max_cycles}, "
                f"max_events={max_events}) with cores {list(blocked)} "
                f"still running at cycle {self.engine.now}")

        total = max((c.finish_time or 0) for c in started)
        metrics = {}
        if self.obs is not None and self.obs.metrics is not None:
            metrics = self.obs.metrics.to_dict()
        return RunResult(total_cycles=total,
                         barrier_name=self.barrier_impl.name,
                         num_cores=self.num_cores,
                         stats=self.stats,
                         events_executed=self.engine.events_executed,
                         metrics=metrics)
