"""Virtual cut-through mesh network with finite buffers and backpressure.

The default network model (:class:`repro.noc.network.Network`) charges
per-hop latency plus link serialization, with contention modelled as
waiting for the link to free.  This module provides a more detailed
alternative: packets claim *downstream buffer space* before traversing a
link (credit-style backpressure), cut through routers header-first, and
stall in place when the next router's input buffer is full -- so congestion
propagates backwards like in a real mesh.

Model summary (packet-granular virtual cut-through):

* each router input port has a buffer of ``buffer_flits`` flits;
* a packet may start crossing a link only when the link is idle *and* the
  downstream input buffer has room for the whole packet;
* the header reaches the next router after ``link_latency`` +
  ``router_latency`` and may immediately compete for the next hop
  (cut-through); the tail follows ``flits`` cycles behind;
* the upstream buffer is released when the tail leaves, waking stalled
  packets in FIFO order.

XY routing plus packet-granular buffering keeps the channel-dependency
graph acyclic, so the model is deadlock-free by construction; the test
suite additionally hammers it with random traffic and checks conservation.

Interface-compatible with :class:`~repro.noc.network.Network` (``send``,
``zero_load_latency``, ``routers``, message/flit accounting), so the chip
can swap models via ``NocConfig.model``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..common.params import NocConfig
from ..common.stats import StatsRegistry
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .network import fault_defer
from .packet import Message
from .router import Router
from .topology import Mesh2D


@dataclass
class _Packet:
    msg: Message
    flits: int
    path: list[int]
    #: Index of the router currently holding (or streaming) the packet.
    hop: int = 0


@dataclass
class _LinkState:
    """One directed link plus the downstream input buffer it feeds."""

    src: int
    dst: int
    busy_until: int = 0
    free_flits: int = 0          # space left in the downstream buffer
    waiters: deque = field(default_factory=deque)
    flits_carried: int = 0
    busy_cycles: int = 0


class VCTNetwork(Component):
    """Flit-accurate virtual cut-through 2D-mesh interconnect."""

    def __init__(self, engine: Engine, stats: StatsRegistry,
                 config: NocConfig, buffer_flits: int = 4):
        super().__init__(engine, stats, "vct")
        self.config = config
        #: Bound by the chip when a FaultPlan is enabled (repro.faults).
        self.injector = None
        self._channel_clear: dict[tuple[int, int], int] = {}
        self.buffer_flits = buffer_flits
        self.mesh = Mesh2D(config.rows, config.cols)
        self.routers = [Router(t) for t in range(self.mesh.num_tiles)]
        self.links: dict[tuple[int, int], _LinkState] = {}
        for t in range(self.mesh.num_tiles):
            for n in self.mesh.neighbors(t):
                self.links[(t, n)] = _LinkState(t, n,
                                                free_flits=buffer_flits)

    # ------------------------------------------------------------------ #
    def send(self, msg: Message) -> None:
        msg.send_time = self.now
        if msg.src == msg.dst:
            self.stats.bump("noc.local_deliveries")
            self.schedule(self.config.router_latency, self._deliver, msg)
            return
        if self.injector is not None and fault_defer(self, msg):
            return
        path = self.mesh.route(msg.src, msg.dst)
        flits = self.config.flits(msg.size_bytes)
        if flits > self.buffer_flits:
            # A packet must fit in one input buffer (packet-granular VCT).
            flits_capped = self.buffer_flits
            self.stats.bump("vct.oversize_packets")
        else:
            flits_capped = flits
        msg.hops = len(path) - 1
        self.stats.add_message(msg.category, flits, msg.hops)
        self.routers[msg.src].injected += 1
        self.routers[msg.dst].ejected += 1
        for mid in path[1:-1]:
            self.routers[mid].forwarded += 1
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.NOC_SEND,
                             src=msg.src, dst=msg.dst, msg_kind=msg.kind,
                             flits=flits, hops=msg.hops)
        packet = _Packet(msg, flits_capped, path)
        # Injection pipeline, then compete for the first link.
        self.schedule(self.config.router_latency, self._request_hop,
                      packet)

    # ------------------------------------------------------------------ #
    def _request_hop(self, packet: _Packet) -> None:
        link = self.links[(packet.path[packet.hop],
                           packet.path[packet.hop + 1])]
        link.waiters.append(packet)
        if self.metrics is not None:
            # Router input-queue depth at the moment a packet lines up.
            self.metrics.histogram("vct.queue_depth").record(
                len(link.waiters))
        self._pump(link)

    def _pump(self, link: _LinkState) -> None:
        """Grant the head waiter if the link is idle and space exists."""
        while link.waiters:
            if link.busy_until > self.now:
                self.engine.schedule_at(link.busy_until, self._pump, link,
                                        priority=1)
                return
            head = link.waiters[0]
            if link.free_flits < head.flits:
                return  # wait for a buffer release to re-pump
            link.waiters.popleft()
            self._traverse(head, link)

    def _traverse(self, packet: _Packet, link: _LinkState) -> None:
        start = self.now
        end = start + packet.flits           # serialization
        link.busy_until = end
        link.free_flits -= packet.flits
        link.flits_carried += packet.flits
        link.busy_cycles += packet.flits

        header_at_next = start + self.config.link_latency \
            + self.config.router_latency
        tail_leaves_upstream = end

        # Release the *upstream* buffer when the tail leaves this router.
        if packet.hop > 0:
            upstream = self.links[(packet.path[packet.hop - 1],
                                   packet.path[packet.hop])]
            self.engine.schedule_at(tail_leaves_upstream,
                                    self._release, upstream, packet.flits)

        packet.hop += 1
        if packet.hop + 1 < len(packet.path):
            # Cut-through: compete for the next hop as the header arrives.
            self.engine.schedule_at(header_at_next, self._request_hop,
                                    packet)
        else:
            # Ejection: the full packet must arrive (tail + wire + router).
            tail_at_dst = end + self.config.link_latency \
                + self.config.router_latency
            self.engine.schedule_at(tail_at_dst, self._eject, packet)

    def _eject(self, packet: _Packet) -> None:
        # Free the final input buffer.
        final_link = self.links[(packet.path[-2], packet.path[-1])]
        self._release(final_link, packet.flits)
        self._deliver(packet.msg)

    def _release(self, link: _LinkState, flits: int) -> None:
        link.free_flits = min(link.free_flits + flits, self.buffer_flits)
        self._pump(link)

    def _deliver(self, msg: Message) -> None:
        msg.arrive_time = self.now
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.NOC_DELIVER,
                             src=msg.src, dst=msg.dst, msg_kind=msg.kind,
                             latency=msg.latency)
        if self.metrics is not None and msg.src != msg.dst:
            self.metrics.histogram("noc.msg_latency").record(msg.latency)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)

    # ------------------------------------------------------------------ #
    def zero_load_latency(self, src: int, dst: int,
                          size_bytes: int) -> int:
        if src == dst:
            return self.config.router_latency
        hops = self.mesh.hops(src, dst)
        flits = min(self.config.flits(size_bytes), self.buffer_flits)
        per_hop = flits + self.config.link_latency \
            + self.config.router_latency
        # Cut-through: intermediate hops overlap serialization; only the
        # last hop waits for the tail.
        cut_through = self.config.link_latency + self.config.router_latency
        return (self.config.router_latency
                + (hops - 1) * cut_through
                + flits + cut_through)

    def link_utilization(self) -> dict[tuple[int, int], float]:
        if self.now == 0:
            return {key: 0.0 for key in self.links}
        return {key: link.busy_cycles / self.now
                for key, link in self.links.items()}

    def in_flight(self) -> int:
        """Packets currently queued at any link (diagnostics)."""
        return sum(len(link.waiters) for link in self.links.values())
