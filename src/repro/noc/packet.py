"""Network message representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.stats import MsgCat

_msg_ids = itertools.count()


@dataclass
class Message:
    """One message travelling on the main data network.

    ``kind`` is the protocol-level opcode (e.g. ``GetS``, ``Data``, ``Inv``);
    ``category`` is the Figure-7 accounting bucket.  ``on_delivery`` is
    invoked at the destination tile once the whole message has arrived.
    """

    src: int
    dst: int
    kind: str
    category: MsgCat
    size_bytes: int
    payload: Any = None
    on_delivery: Callable[["Message"], None] | None = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    #: Filled in by the network at send time.
    send_time: int = -1
    #: Filled in by the network at delivery time.
    arrive_time: int = -1
    hops: int = 0

    @property
    def latency(self) -> int:
        return self.arrive_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Msg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.category.value}>")
