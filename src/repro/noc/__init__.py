"""2D-mesh network-on-chip model."""

from .link import Link
from .network import Network
from .packet import Message
from .router import Router
from .topology import Mesh2D
from .vct import VCTNetwork

__all__ = ["Link", "Network", "Message", "Router", "Mesh2D", "VCTNetwork"]
