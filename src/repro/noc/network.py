"""The main data network: a 2D mesh with XY routing and hop-level timing.

Every message pays, per hop, the router pipeline latency plus link
serialization (``flits`` cycles on the link, subject to the link being free)
plus wire propagation.  Same-tile transfers (an L1 talking to its own L2
bank) bypass the network entirely and are not counted as network traffic,
matching how the paper attributes messages.
"""

from __future__ import annotations

from ..common.params import NocConfig
from ..common.stats import StatsRegistry
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .link import Link
from .packet import Message
from .router import Router
from .topology import Mesh2D


def fault_defer(net, msg: Message) -> bool:
    """Shared injection-side fault gate for both network models.

    Returns True when *msg* must not inject this cycle: either the
    (src, dst) channel is still blocked retransmitting an earlier faulted
    packet, or this packet just faulted (drop/corruption) and its
    retransmission was scheduled.  The coherence protocol relies on
    per-(src, dst) FIFO delivery (which XY routing plus in-order links
    guarantee on the fault-free network), so a retransmission must not
    let younger packets overtake: the channel blocks head-of-line until
    the retry goes through, exactly like a link-level retransmission
    buffer.  *net* needs ``injector``, ``_channel_clear``,
    ``zero_load_latency`` and the Component scheduling interface.
    """
    clear = net._channel_clear.get((msg.src, msg.dst), 0)
    if net.now < clear:
        net.engine.schedule_at(clear, net.send, msg)
        return True
    outcome = net.injector.noc_outcome()
    if outcome is None:
        return False
    # Modelled as detect-and-retransmit: a drop is noticed by timeout, a
    # corrupt packet by the CRC at the sink (after a full traversal).
    # Either way the sender re-injects, so the protocol stays sound and
    # the fault shows up as added latency (the wasted traversal is folded
    # into the penalty; only delivered packets count as traffic).
    net.stats.bump(f"faults.noc.{outcome}")
    penalty = net.injector.plan.noc_retry_cycles
    if outcome == "corrupted":
        penalty += net.zero_load_latency(msg.src, msg.dst, msg.size_bytes)
    net._channel_clear[(msg.src, msg.dst)] = net.now + penalty
    net.schedule(penalty, net.send, msg)
    return True


class Network(Component):
    """Packet-level 2D-mesh interconnect."""

    def __init__(self, engine: Engine, stats: StatsRegistry,
                 config: NocConfig):
        super().__init__(engine, stats, "noc")
        self.config = config
        #: Bound by the chip when a FaultPlan is enabled (repro.faults).
        self.injector = None
        #: Per-(src, dst) cycle until which the channel is busy
        #: retransmitting a faulted packet (only touched when faults are
        #: injected; the fault-free path never reads it).
        self._channel_clear: dict[tuple[int, int], int] = {}
        self.mesh = Mesh2D(config.rows, config.cols)
        self.routers = [Router(t) for t in range(self.mesh.num_tiles)]
        self.links: dict[tuple[int, int], Link] = {}
        for t in range(self.mesh.num_tiles):
            for n in self.mesh.neighbors(t):
                self.links[(t, n)] = Link(t, n)

    # ------------------------------------------------------------------ #
    def send(self, msg: Message) -> None:
        """Inject *msg*; its ``on_delivery`` runs at the destination."""
        msg.send_time = self.now
        if msg.src == msg.dst:
            # Local tile transfer: router local-port turnaround only; not a
            # network message for Figure-7 accounting.
            self.stats.bump("noc.local_deliveries")
            self.schedule(self.config.router_latency, self._deliver, msg)
            return

        if self.injector is not None and fault_defer(self, msg):
            return

        path = self.mesh.route(msg.src, msg.dst)
        msg.hops = len(path) - 1
        flits = self.config.flits(msg.size_bytes)
        self.stats.add_message(msg.category, flits, msg.hops)
        self.routers[msg.src].injected += 1
        self.routers[msg.dst].ejected += 1
        for mid in path[1:-1]:
            self.routers[mid].forwarded += 1
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.NOC_SEND,
                             src=msg.src, dst=msg.dst, msg_kind=msg.kind,
                             flits=flits, hops=msg.hops)
        # Injection: pay the source router pipeline, then start hopping.
        self.schedule(self.config.router_latency, self._hop, msg, path, 0,
                      flits)

    # ------------------------------------------------------------------ #
    def _hop(self, msg: Message, path: list[int], index: int,
             flits: int) -> None:
        """Traverse the link from path[index] to path[index+1]."""
        here, nxt = path[index], path[index + 1]
        link = self.links[(here, nxt)]
        serialized_end = link.occupy(self.now, flits,
                                     self.config.model_contention)
        if self.metrics is not None:
            # Queueing delay only: serialization and wire time excluded.
            self.metrics.histogram("noc.link_wait").record(
                max(0, serialized_end - self.now - flits))
        arrival = serialized_end + self.config.link_latency
        if index + 2 == len(path):
            # Last hop: eject through the destination router.
            self.engine.schedule_at(arrival + self.config.router_latency,
                                    self._deliver, msg)
        else:
            self.engine.schedule_at(arrival + self.config.router_latency,
                                    self._hop, msg, path, index + 1, flits)

    def _deliver(self, msg: Message) -> None:
        msg.arrive_time = self.now
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.NOC_DELIVER,
                             src=msg.src, dst=msg.dst, msg_kind=msg.kind,
                             latency=msg.latency)
        if self.metrics is not None and msg.src != msg.dst:
            self.metrics.histogram("noc.msg_latency").record(msg.latency)
        if msg.on_delivery is not None:
            msg.on_delivery(msg)

    # ------------------------------------------------------------------ #
    def zero_load_latency(self, src: int, dst: int, size_bytes: int) -> int:
        """Latency of a message on an idle network (used by tests)."""
        if src == dst:
            return self.config.router_latency
        hops = self.mesh.hops(src, dst)
        flits = self.config.flits(size_bytes)
        per_hop = flits + self.config.link_latency + self.config.router_latency
        return self.config.router_latency + hops * per_hop

    def link_utilization(self) -> dict[tuple[int, int], float]:
        """Busy fraction per link over the elapsed simulation time."""
        if self.now == 0:
            return {key: 0.0 for key in self.links}
        return {key: link.busy_cycles / self.now
                for key, link in self.links.items()}
