"""2D-mesh topology and dimension-ordered (XY) routing."""

from __future__ import annotations

from ..common.errors import ConfigError


class Mesh2D:
    """Coordinate bookkeeping for an ``rows x cols`` mesh.

    Tiles are numbered row-major: tile id ``t`` sits at
    ``(row, col) = (t // cols, t % cols)``.  Routing is deterministic XY
    (first move along the row to the destination column, then along the
    column), which is deadlock-free on a mesh.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ConfigError(f"invalid mesh {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def coords(self, tile: int) -> tuple[int, int]:
        """(row, col) of *tile*."""
        self._check(tile)
        return divmod(tile, self.cols)

    def tile_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigError(f"coords ({row},{col}) outside "
                              f"{self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route(self, src: int, dst: int) -> list[int]:
        """XY path from *src* to *dst*, inclusive of both endpoints."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        path = [self.tile_at(r1, c1)]
        col = c1
        while col != c2:
            col += 1 if c2 > col else -1
            path.append(self.tile_at(r1, col))
        row = r1
        while row != r2:
            row += 1 if r2 > row else -1
            path.append(self.tile_at(row, col))
        return path

    def neighbors(self, tile: int) -> list[int]:
        """Adjacent tiles (N/S/E/W order not guaranteed)."""
        r, c = self.coords(tile)
        out = []
        if r > 0:
            out.append(self.tile_at(r - 1, c))
        if r < self.rows - 1:
            out.append(self.tile_at(r + 1, c))
        if c > 0:
            out.append(self.tile_at(r, c - 1))
        if c < self.cols - 1:
            out.append(self.tile_at(r, c + 1))
        return out

    def _check(self, tile: int) -> None:
        if not (0 <= tile < self.num_tiles):
            raise ConfigError(f"tile {tile} outside 0..{self.num_tiles - 1}")
