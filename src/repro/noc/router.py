"""Per-tile router bookkeeping.

The timing pipeline lives in :class:`repro.noc.network.Network`; the router
object carries per-tile accounting (messages forwarded, injected, ejected)
used by utilization reports and the energy proxy.
"""

from __future__ import annotations


class Router:
    """Statistics shell for the router at one tile."""

    __slots__ = ("tile", "injected", "ejected", "forwarded")

    def __init__(self, tile: int):
        self.tile = tile
        #: Messages entering the network at this tile.
        self.injected = 0
        #: Messages leaving the network at this tile.
        self.ejected = 0
        #: Messages passing through (neither source nor destination).
        self.forwarded = 0

    @property
    def traversals(self) -> int:
        """Total router-pipeline traversals (energy proxy numerator)."""
        return self.injected + self.ejected + self.forwarded

    def snapshot(self) -> dict:
        """Per-tile counters in JSON-ready form (obs metric snapshots)."""
        return {"tile": self.tile, "injected": self.injected,
                "ejected": self.ejected, "forwarded": self.forwarded,
                "traversals": self.traversals}
