"""Point-to-point mesh link with serialization contention.

A link carries one flit per cycle.  Contention is modelled by tracking the
cycle at which the link next becomes free: a message arriving earlier waits.
This captures the first-order queueing behaviour of a wormhole mesh (bursts
of coherence traffic serialize) without simulating individual flit buffers.
"""

from __future__ import annotations


class Link:
    """Unidirectional link between two adjacent tiles."""

    __slots__ = ("src", "dst", "next_free", "busy_cycles", "flits_carried")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        #: First cycle at which a new message may start serializing.
        self.next_free = 0
        #: Total cycles this link spent transmitting (utilization numerator).
        self.busy_cycles = 0
        self.flits_carried = 0

    def occupy(self, now: int, flits: int, contention: bool) -> int:
        """Reserve the link for *flits* cycles starting no earlier than *now*.

        Returns the cycle at which the last flit has left the link.  With
        *contention* disabled the link is treated as infinitely wide (used by
        idealized-network ablations).
        """
        start = max(now, self.next_free) if contention else now
        end = start + flits
        if contention:
            self.next_free = end
        self.busy_cycles += flits
        self.flits_carried += flits
        return end
