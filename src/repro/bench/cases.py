"""Benchmark case registry.

A :class:`BenchCase` names a reproducible bundle of :class:`RunSpec`\\ s --
the same specs the experiment drivers build, so the timed work is exactly
the work the figures pay for.  Every case has a ``quick`` variant (fewer
iterations / fewer chip sizes) for the CI smoke job; quick and full specs
carry different config digests, so the comparison gate never confuses the
two scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..collectives.config import CollectiveConfig
from ..common.params import CMPConfig
from ..exec.spec import RunSpec
from ..workloads import Kernel3Workload, SyntheticBarrierWorkload
from ..workloads.collective import CollectiveAllReduceWorkload
from ..workloads.stress import StressWorkload


@dataclass(frozen=True)
class BenchCase:
    """One named, timeable bundle of runs."""

    name: str
    description: str
    #: quick -> specs.  Specs must be deterministic functions of ``quick``
    #: so the config digest identifies what was measured.
    build: Callable[[bool], list[RunSpec]]


def _fig5_specs(quick: bool) -> list[RunSpec]:
    """Figure 5's grid (all three barriers), scaled down when quick.

    Mirrors :func:`repro.experiments.fig5.run_fig5`: one synthetic-barrier
    run per (implementation, core count).
    """
    core_counts = (4, 8) if quick else (4, 8, 16, 32)
    iterations = 8 if quick else 40
    workload = SyntheticBarrierWorkload(iterations=iterations)
    return [RunSpec.make(workload, barrier, num_cores=cores)
            for barrier in ("csw", "dsw", "gl")
            for cores in core_counts]


def _fig6_fig7_specs(quick: bool) -> list[RunSpec]:
    """The KERN3 DSW-vs-GL pair behind figures 6 and 7's headline row."""
    iterations = 8 if quick else 75
    cores = 16 if quick else 32
    workload = Kernel3Workload(iterations=iterations)
    return [RunSpec.make(workload, barrier, num_cores=cores)
            for barrier in ("dsw", "gl")]


def _collectives16x16_specs(quick: bool) -> list[RunSpec]:
    """The collective hot loop: bit-serial all-reduce rounds on a 256-core
    (16x16) mesh through the two-level G-line reduction fabric."""
    workload = CollectiveAllReduceWorkload(iterations=6 if quick else 48)
    cfg = replace(CMPConfig.for_cores(256),
                  collectives=CollectiveConfig(enabled=True,
                                               value_width=8))
    return [RunSpec.make(workload, "gl", num_cores=256, config=cfg)]


def _integrity_echo_specs(quick: bool) -> list[RunSpec]:
    """Echo-mode verification overhead on a clean 8x8 chip.

    Two runs of the same all-reduce schedule, ``integrity="off"`` vs
    ``"echo"``, no fault injection: the pair pins what per-round echo
    verification costs when nothing goes wrong (under faults the
    comparison inverts -- off-mode wedges pay watchdog stalls that echo
    heals early, so the clean run is the honest overhead measurement)."""
    workload = CollectiveAllReduceWorkload(iterations=6 if quick else 48)
    specs = []
    for mode in ("off", "echo"):
        cfg = replace(CMPConfig.for_cores(64),
                      collectives=CollectiveConfig(enabled=True,
                                                   value_width=8,
                                                   integrity=mode))
        specs.append(RunSpec.make(workload, "gl", num_cores=64,
                                  config=cfg))
    return specs


def _stress16x16_specs(quick: bool) -> list[RunSpec]:
    """A 256-core (16x16 mesh) random op-mix -- the scaling direction
    ROADMAP's 1024-core goal points at, far beyond the paper's 32 cores."""
    workload = StressWorkload(ops_per_core=8 if quick else 60,
                              barriers=2 if quick else 6, seed=7)
    return [RunSpec.make(workload, "gl", num_cores=256)]


CASES: dict[str, BenchCase] = {
    "fig5": BenchCase(
        name="fig5",
        description="Figure 5 grid: synthetic barrier latency, "
                    "csw/dsw/gl across chip sizes",
        build=_fig5_specs),
    "fig6_fig7": BenchCase(
        name="fig6_fig7",
        description="Figures 6+7: the KERN3 DSW-vs-GL pair",
        build=_fig6_fig7_specs),
    "stress16x16": BenchCase(
        name="stress16x16",
        description="16x16-mesh (256-core) random op-mix stress run",
        build=_stress16x16_specs),
    "collectives16x16": BenchCase(
        name="collectives16x16",
        description="256-core bit-serial all-reduce rounds over the "
                    "hierarchical collective fabric",
        build=_collectives16x16_specs),
    "integrity_echo": BenchCase(
        name="integrity_echo",
        description="64-core all-reduce, integrity off vs echo: the "
                    "clean-run cost of per-round verification",
        build=_integrity_echo_specs),
}


def get_case(name: str) -> BenchCase:
    """Look up a case; raises ``KeyError`` with the known names."""
    try:
        return CASES[name]
    except KeyError:
        raise KeyError(f"unknown bench case {name!r}; "
                       f"known: {sorted(CASES)}") from None
