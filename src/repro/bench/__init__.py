"""repro.bench -- wall-clock benchmark harness and perf trajectory.

Times the paper's headline experiments (fig5, fig6/7) plus a 16x16-mesh
stress case on a selected engine backend, and pins the numbers as
``benchmarks/perf/BENCH_<name>.json`` snapshots:

* :mod:`repro.bench.cases` -- the benchmark case registry (what to run,
  with a ``--quick`` variant for CI smoke).
* :mod:`repro.bench.runner` -- calibration-normalized timing, snapshot
  I/O and the baseline comparison gate.

Raw wall-clock is machine-dependent, so every run also times a fixed
pure-Python calibration loop and records ``normalized_score =
events_per_sec / calibration_events_per_sec``; the regression gate in
``benchmarks/perf/test_bench_wallclock.py`` and ``repro bench --check``
compares *normalized* scores, which cancels most host-speed variance.
``docs/performance.md`` documents the workflow.
"""

from .cases import CASES, BenchCase, get_case
from .runner import (DEFAULT_REPEATS, DEFAULT_TOLERANCE, BackendMeasurement,
                     BenchComparison, BenchSnapshot, calibrate,
                     compare_snapshots, load_snapshot, run_case,
                     snapshot_path, write_snapshot)

__all__ = ["CASES", "BenchCase", "get_case",
           "BenchSnapshot", "BackendMeasurement", "BenchComparison",
           "calibrate", "run_case", "compare_snapshots",
           "load_snapshot", "write_snapshot", "snapshot_path",
           "DEFAULT_REPEATS", "DEFAULT_TOLERANCE"]
