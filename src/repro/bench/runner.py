"""Calibration-normalized timing, snapshot I/O, and the regression gate.

A snapshot (``BENCH_<name>.json``) records, per backend: the wall-clock
of each repeat, the median, total simulation events, events/sec, and the
events/sec of a fixed pure-Python calibration loop measured in the same
process.  The **normalized score** (case events/sec divided by
calibration events/sec) is what the tolerance gate compares -- both
numbers scale with interpreter/host speed, so their ratio is stable
across machines to within a few percent, which is what lets committed
baselines gate CI runs on unknown hardware.

Snapshots also carry a ``config_digest`` -- a hash of the case's spec
fingerprints with the code version stripped -- so a comparison against a
baseline taken for *different work* (e.g. quick vs full) is refused
rather than silently misread, while rebuilds of the same experiment
across commits stay comparable.
"""

from __future__ import annotations

import hashlib
import json
import statistics
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional

from ..common.errors import ReproError
from .cases import BenchCase

#: Median-of-N repeats per case (CLI/default; the smoke job uses fewer).
DEFAULT_REPEATS = 3
#: Allowed normalized-score regression before the gate fails (25%).
DEFAULT_TOLERANCE = 0.25
#: Default snapshot directory (committed baselines live here).
PERF_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "perf"

#: Calibration loop size; ~30ms of pure-Python heap traffic on a typical
#: host -- long enough to be stable, short enough to repeat.
_CALIB_EVENTS = 40_000


class BenchError(ReproError):
    """Benchmark harness misuse (unknown case, incomparable snapshots)."""


def calibrate(repeats: int = 3) -> float:
    """Events/sec of a fixed pure-Python engine loop on this host.

    Uses the *heap* reference engine driving a trivial self-rescheduling
    callback -- the same interpreter work (tuple churn, heap ops, method
    dispatch) that dominates simulation wall-clock, making the ratio
    sim-events-per-sec / calibration-events-per-sec largely
    host-independent.  Returns the best (max) of *repeats* to shed
    transient scheduler noise.
    """
    from ..sim.engine import Engine

    best = 0.0
    for _ in range(repeats):
        eng = Engine()
        budget = _CALIB_EVENTS

        def tick() -> None:
            if eng.events_executed < budget:
                eng.schedule(1, tick)

        for _ in range(4):
            eng.schedule(0, tick)
        t0 = time.perf_counter()
        eng.run(max_events=budget)
        dt = time.perf_counter() - t0
        best = max(best, eng.events_executed / dt)
    return best


# ---------------------------------------------------------------------- #
@dataclass
class BackendMeasurement:
    """One backend's timing of one case."""

    backend: str
    repeats: int
    wall_s: list[float]              # one entry per repeat
    median_wall_s: float
    events: int                      # per single repeat (identical across)
    events_per_sec: float            # events / median_wall_s
    calibration_eps: float           # calibration loop events/sec
    normalized_score: float          # events_per_sec / calibration_eps

    def to_dict(self) -> dict[str, Any]:
        return {"backend": self.backend, "repeats": self.repeats,
                "wall_s": [round(w, 6) for w in self.wall_s],
                "median_wall_s": round(self.median_wall_s, 6),
                "events": self.events,
                "events_per_sec": round(self.events_per_sec, 1),
                "calibration_eps": round(self.calibration_eps, 1),
                "normalized_score": round(self.normalized_score, 6)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BackendMeasurement":
        return cls(backend=data["backend"], repeats=data["repeats"],
                   wall_s=list(data["wall_s"]),
                   median_wall_s=data["median_wall_s"],
                   events=data["events"],
                   events_per_sec=data["events_per_sec"],
                   calibration_eps=data["calibration_eps"],
                   normalized_score=data["normalized_score"])


@dataclass
class BenchSnapshot:
    """The BENCH_<name>.json payload: one case, any number of backends."""

    name: str
    quick: bool
    config_digest: str
    backends: dict[str, BackendMeasurement] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "quick": self.quick,
                "config_digest": self.config_digest,
                "backends": {k: m.to_dict()
                             for k, m in sorted(self.backends.items())}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchSnapshot":
        return cls(name=data["name"], quick=data["quick"],
                   config_digest=data["config_digest"],
                   backends={k: BackendMeasurement.from_dict(m)
                             for k, m in data["backends"].items()})


def config_digest(case: BenchCase, quick: bool) -> str:
    """Hash of the case's spec fingerprints, code version excluded.

    Excluding the code fingerprint is deliberate: the perf trajectory
    must stay comparable across commits (that is its whole point); what
    must *not* be comparable is different simulated work, which the spec
    configs/workloads capture fully.
    """
    blobs = []
    for spec in case.build(quick):
        fp = spec.fingerprint()
        fp.pop("code", None)
        blobs.append(json.dumps(fp, sort_keys=True, separators=(",", ":")))
    digest = hashlib.sha256("\n".join(blobs).encode()).hexdigest()
    return digest[:16]


def run_case(case: BenchCase, backend: str, quick: bool = False,
             repeats: int = DEFAULT_REPEATS,
             calibration_eps: float | None = None) -> BackendMeasurement:
    """Time *case* on *backend*: median of *repeats* fresh executions.

    Each repeat builds fresh chips (``RunSpec.execute``, no cache, this
    process) so cold-build cost is included consistently.  The event
    count must be identical across repeats -- simulation is deterministic
    -- and is asserted, which doubles as a cheap determinism check on
    every benchmark run.
    """
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    specs = [replace(s, config=s.config.with_(sim_backend=backend))
             for s in case.build(quick)]
    if calibration_eps is None:
        calibration_eps = calibrate()
    walls: list[float] = []
    events = 0
    for rep in range(repeats):
        t0 = time.perf_counter()
        total = 0
        for spec in specs:
            result = spec.execute()
            total += result.events_executed
        walls.append(time.perf_counter() - t0)
        if rep == 0:
            events = total
        elif total != events:
            raise BenchError(
                f"{case.name}/{backend}: event count varied across "
                f"repeats ({events} vs {total}) -- determinism broken")
    median = statistics.median(walls)
    eps = events / median
    return BackendMeasurement(backend=backend, repeats=repeats,
                              wall_s=walls, median_wall_s=median,
                              events=events, events_per_sec=eps,
                              calibration_eps=calibration_eps,
                              normalized_score=eps / calibration_eps)


# ---------------------------------------------------------------------- #
def snapshot_path(name: str, directory: Path | None = None) -> Path:
    """``<directory>/BENCH_<name>.json`` (default: benchmarks/perf)."""
    return (directory or PERF_DIR) / f"BENCH_{name}.json"


def write_snapshot(snapshot: BenchSnapshot,
                   directory: Path | None = None) -> Path:
    path = snapshot_path(snapshot.name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_snapshot(name: str,
                  directory: Path | None = None) -> Optional[BenchSnapshot]:
    """The committed baseline for *name*, or None if absent/unreadable
    (absent baselines must keep forks green, so no exception)."""
    path = snapshot_path(name, directory)
    if not path.exists():
        return None
    try:
        return BenchSnapshot.from_dict(json.loads(path.read_text()))
    except (json.JSONDecodeError, KeyError, TypeError):
        return None


@dataclass
class BenchComparison:
    """Current-vs-baseline verdict for one (case, backend)."""

    name: str
    backend: str
    baseline_score: float
    current_score: float
    ratio: float                      # current / baseline
    tolerance: float
    regressed: bool
    note: str = ""

    def summary(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        text = (f"{self.name}/{self.backend}: {self.ratio:.2f}x baseline "
                f"normalized score ({verdict}, tolerance "
                f"-{self.tolerance:.0%})")
        if self.note:
            text += f" [{self.note}]"
        return text


def compare_snapshots(current: BenchSnapshot,
                      baseline: Optional[BenchSnapshot],
                      tolerance: float = DEFAULT_TOLERANCE
                      ) -> list[BenchComparison]:
    """Gate *current* against *baseline*; empty list when no baseline.

    Raises :class:`BenchError` when the snapshots measured different work
    (config digests or quick flags differ) -- refreshing the baseline is
    the fix, not loosening the gate.
    """
    if baseline is None:
        return []
    if (baseline.config_digest != current.config_digest
            or baseline.quick != current.quick):
        raise BenchError(
            f"baseline for {current.name!r} measured different work "
            f"(digest {baseline.config_digest}/quick={baseline.quick} vs "
            f"{current.config_digest}/quick={current.quick}); refresh it "
            f"with: repro bench --write")
    out: list[BenchComparison] = []
    for backend, meas in sorted(current.backends.items()):
        base = baseline.backends.get(backend)
        if base is None:
            continue
        note = ""
        if base.events != meas.events:
            # Digest-identical work must execute identical event counts;
            # this is a determinism alarm, flagged loudly but judged by
            # the score gate (the digest check above already passed).
            note = (f"event count changed: {base.events} -> "
                    f"{meas.events}")
        ratio = meas.normalized_score / base.normalized_score
        out.append(BenchComparison(
            name=current.name, backend=backend,
            baseline_score=base.normalized_score,
            current_score=meas.normalized_score,
            ratio=ratio, tolerance=tolerance,
            regressed=ratio < (1.0 - tolerance), note=note))
    return out
