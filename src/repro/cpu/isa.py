"""Operation vocabulary for thread programs.

Thread programs are Python generators that *yield operations*; the core
executes each operation against the timing model and resumes the generator
with the result (loads receive the loaded value, atomics the old value).
This replaces Sim-PowerCMP's PowerPC instruction streams with an
operation-level model: each operation carries exactly the information the
timing model needs (DESIGN.md §2).

Example::

    def program(a, b):
        yield Compute(100)                  # 100 cycles of ALU work
        x = yield Load(a)                   # may miss, pays real latency
        yield Store(b, x + 1)
        old = yield FetchAdd(counter, 1)    # coherent atomic
        yield BarrierOp()                   # whatever barrier is bound
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Compute:
    """Local computation taking *cycles* core cycles."""

    cycles: int


@dataclass(frozen=True)
class Load:
    """Read the word at *addr*; the yield returns its value."""

    addr: int


@dataclass(frozen=True)
class Store:
    """Write *value* to the word at *addr*."""

    addr: int
    value: int


@dataclass(frozen=True)
class AtomicRMW:
    """Atomic read-modify-write; the yield returns the old value."""

    addr: int
    fn: Callable[[int], int]


def FetchAdd(addr: int, delta: int = 1) -> AtomicRMW:
    """fetch&add primitive (the yield returns the pre-increment value)."""
    return AtomicRMW(addr, lambda old, _d=delta: old + _d)


def Swap(addr: int, value: int) -> AtomicRMW:
    """Atomic exchange (the yield returns the previous value)."""
    return AtomicRMW(addr, lambda _old, _v=value: _v)


def TestAndSet(addr: int) -> AtomicRMW:
    """test&set: sets the word to 1, returns the old value."""
    return AtomicRMW(addr, lambda _old: 1)


@dataclass(frozen=True)
class SpinUntil:
    """Busy-wait until ``pred(value_at_addr)`` holds; returns that value.

    Modelled as test&test&set-style local spinning: the core re-reads only
    when its cached copy is invalidated (or evicted), so a quiescent spin
    generates no traffic -- the same behaviour the paper relies on when it
    notes DSW's S2 stage "involves negligible network traffic because ...
    busy-waiting is performed locally".
    """

    addr: int
    pred: Callable[[int], bool]


@dataclass(frozen=True)
class BarrierOp:
    """Synchronize on the barrier implementation bound to the chip.

    ``barrier_id`` selects a context when the multi-barrier extension is
    active; the base design provides a single barrier (id 0).
    """

    barrier_id: int = 0


@dataclass(frozen=True)
class CollectiveOp:
    """Collective operation on the implementation bound to the chip.

    The yield returns the collective's result on every participating
    core (all-reduce semantics: reduce + broadcast).  *kind* is one of
    :data:`repro.collectives.ops.KINDS` -- ``sum``/``min``/``max``/
    ``vote``/``any``/``all``/``bcast`` -- and *value* is this core's
    operand (for ``bcast`` only core 0's value matters; for the
    predicate kinds any non-zero value counts as a 1).  ``ident``
    selects an operation context when several collectives are in
    flight, mirroring ``BarrierOp.barrier_id``.
    """

    kind: str
    value: int = 0
    ident: int = 0


@dataclass(frozen=True)
class AcquireLock:
    """Acquire the test&test&set lock at *lock_addr* (phase: Lock)."""

    lock_addr: int


@dataclass(frozen=True)
class ReleaseLock:
    """Release the lock at *lock_addr* (phase: Lock)."""

    lock_addr: int


Operation = (Compute, Load, Store, AtomicRMW, SpinUntil, BarrierOp,
             CollectiveOp, AcquireLock, ReleaseLock)
