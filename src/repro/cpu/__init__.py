"""Core model and operation ISA."""

from .core import Core, HWBarrierArrive
from .isa import (
    AcquireLock,
    AtomicRMW,
    BarrierOp,
    Compute,
    FetchAdd,
    Load,
    ReleaseLock,
    SpinUntil,
    Store,
    Swap,
    TestAndSet,
)

__all__ = [
    "Core", "HWBarrierArrive",
    "AcquireLock", "AtomicRMW", "BarrierOp", "Compute", "FetchAdd", "Load",
    "ReleaseLock", "SpinUntil", "Store", "Swap", "TestAndSet",
]
