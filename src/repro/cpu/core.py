"""In-order core model.

A core drives a stack of generator *frames*.  The bottom frame is the
workload's thread program; barrier and lock operations push library
sub-frames (the software barrier/lock algorithms, expressed as op
generators themselves) tagged with an attribution phase, so every cycle of
every operation lands in the right Figure-6 bucket:

* operations inside a barrier frame  -> ``BARRIER`` (the paper's S1+S2+S3),
* operations inside a lock frame     -> ``LOCK``,
* otherwise by operation type: Compute -> ``BUSY``, Load/SpinUntil ->
  ``READ``, Store/Atomic -> ``WRITE``.

The core is blocking (one outstanding operation), matching the simple
in-order model of the paper's Table 1.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..common.errors import SimulationError
from ..common.params import CoreConfig
from ..common.stats import CycleCat, StatsRegistry
from ..faults import FAILOVER
from ..mem.l1 import L1Cache
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from . import isa


class Core(Component):
    """One in-order core executing a thread program."""

    def __init__(self, engine: Engine, stats: StatsRegistry, cid: int,
                 l1: L1Cache, config: CoreConfig):
        super().__init__(engine, stats, f"core{cid}")
        self.cid = cid
        self.l1 = l1
        self.config = config
        #: (generator, phase or None) frames; innermost last.
        self._frames: list[tuple[Generator, CycleCat | None]] = []
        self._phase_stack: list[CycleCat] = []
        self.finished = False
        self.start_time = 0
        self.finish_time: int | None = None
        self.on_finish: Callable[["Core"], None] | None = None
        #: Bound by the chip: maps BarrierOp to an implementation.
        self.barrier_binding = None
        #: Bound by the chip: maps CollectiveOp to an implementation
        #: (repro.collectives; None unless collectives are enabled).
        self.collective_binding = None
        #: Bound by the chip: lock algorithm factory.
        self.lock_binding = None
        #: Bound by the chip: episode accounting (may stay None in
        #: unit-test rigs that drive a bare core).
        self.barrier_accounting = None
        #: Scratch space for synchronization libraries (e.g. sense flags).
        self.local: dict = {}
        self.ops_executed = 0
        #: Bound by the chip when a FaultPlan is enabled (repro.faults).
        self.injector = None
        #: The operation currently blocking this core (DeadlockError
        #: diagnostics); None when between operations or finished.
        self.pending_op = None
        #: True once a fail-stop fault halted this core for good.
        self.halted = False
        #: Barrier flight recorder (set by the chip when observability is
        #: enabled; tracer/metrics come from Component).
        self.flight = None

    # ------------------------------------------------------------------ #
    def start(self, program) -> None:
        """Begin executing *program* (a generator, or any iterable of
        operations) at the current cycle."""
        if self._frames:
            raise SimulationError(f"core {self.cid} already running")
        self._frames.append((_as_generator(program), None))
        self.start_time = self.now
        self.schedule(0, self._advance, None)

    @property
    def running(self) -> bool:
        return bool(self._frames) and not self.finished

    def _push_frame(self, gen: Generator, phase: CycleCat | None) -> None:
        self._frames.append((gen, phase))
        if phase is not None:
            self._phase_stack.append(phase)

    def _current_cat(self, default: CycleCat) -> CycleCat:
        return self._phase_stack[-1] if self._phase_stack else default

    def _attr(self, t0: int, default: CycleCat) -> None:
        self.stats.add_cycles(self.cid, self._current_cat(default),
                              self.now - t0)

    # ------------------------------------------------------------------ #
    def _advance(self, value) -> None:
        """Resume the innermost frame with *value* and execute its next op."""
        while self._frames:
            gen, phase = self._frames[-1]
            try:
                op = gen.send(value)
            except StopIteration as stop:
                self._frames.pop()
                if phase is not None:
                    self._phase_stack.pop()
                value = stop.value
                continue
            self._execute(op)
            return
        self.finished = True
        self.finish_time = self.now
        self.pending_op = None
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------ #
    def _execute(self, op) -> None:
        """Dispatch one operation by exact type (dict lookup; the
        per-op hot path), falling back to an isinstance walk for op
        subclasses so test doubles keep working."""
        self.ops_executed += 1
        self.pending_op = op
        handler = _DISPATCH.get(type(op))
        if handler is None:
            for klass, candidate in _DISPATCH.items():
                if isinstance(op, klass):
                    handler = candidate
                    break
            else:
                raise SimulationError(
                    f"core {self.cid}: unknown op {op!r}")
        handler(self, op, self.now)

    def _exec_compute(self, op: isa.Compute, t0: int) -> None:
        if op.cycles < 0:
            raise SimulationError("negative compute duration")
        self.stats.add_cycles(self.cid,
                              self._current_cat(CycleCat.BUSY),
                              op.cycles)
        self.schedule(op.cycles, self._advance, None)

    def _exec_load(self, op: isa.Load, t0: int) -> None:
        self.l1.load(op.addr, lambda v: (
            self._attr(t0, CycleCat.READ), self._advance(v)))

    def _exec_store(self, op: isa.Store, t0: int) -> None:
        self.l1.store(op.addr, op.value, lambda: (
            self._attr(t0, CycleCat.WRITE), self._advance(None)))

    def _exec_atomic(self, op: isa.AtomicRMW, t0: int) -> None:
        self.l1.atomic(op.addr, op.fn, lambda old: (
            self._attr(t0, CycleCat.WRITE), self._advance(old)))

    def _exec_barrier(self, op: isa.BarrierOp, t0: int) -> None:
        if self.barrier_binding is None:
            raise SimulationError(
                f"core {self.cid}: no barrier implementation bound")
        self._note_barrier(obs_ev.CORE_BARRIER_ENTER,
                           barrier=op.barrier_id)
        delay = 0
        if self.injector is not None:
            if self.injector.core_failstop(self.cid):
                # Fail-stop: the core halts here and never announces
                # arrival.  No recovery is modelled (that would need
                # barrier-membership reconfiguration); the run ends in
                # an honest DeadlockError naming this core.
                self.halted = True
                self.stats.bump("faults.core.failstops")
                self._note_barrier(obs_ev.CORE_FAILSTOP,
                                   barrier=op.barrier_id)
                return
            delay = self.injector.core_straggler_delay(self.cid)
            if delay:
                self.stats.bump("faults.core.stragglers")
                self.stats.add_cycles(self.cid,
                                      self._current_cat(CycleCat.BUSY),
                                      delay)
                self._note_barrier(obs_ev.CORE_STRAGGLER, delay=delay)
        seq = self.barrier_binding.sequence(self, op.barrier_id)
        if self.barrier_accounting is not None:
            seq = self._accounted_barrier(seq, op.barrier_id)
        self._push_frame(seq, CycleCat.BARRIER)
        self.schedule(delay, self._advance, None)

    def _exec_collective(self, op: isa.CollectiveOp, t0: int) -> None:
        if self.collective_binding is None:
            raise SimulationError(
                f"core {self.cid}: no collective implementation bound "
                f"(enable CMPConfig.collectives)")
        self._note_barrier(obs_ev.CORE_BARRIER_ENTER,
                           collective=op.kind, ident=op.ident)
        delay = 0
        if self.injector is not None:
            # Same fault surface as a barrier arrival: a collective is a
            # synchronization point, so fail-stop and straggler faults
            # apply at its entry.
            if self.injector.core_failstop(self.cid):
                self.halted = True
                self.stats.bump("faults.core.failstops")
                self._note_barrier(obs_ev.CORE_FAILSTOP,
                                   collective=op.kind)
                return
            delay = self.injector.core_straggler_delay(self.cid)
            if delay:
                self.stats.bump("faults.core.stragglers")
                self.stats.add_cycles(self.cid,
                                      self._current_cat(CycleCat.BUSY),
                                      delay)
                self._note_barrier(obs_ev.CORE_STRAGGLER, delay=delay)
        seq = self.collective_binding.sequence(self, op)
        self._push_frame(seq, CycleCat.BARRIER)
        self.schedule(delay, self._advance, None)

    def _exec_acquire(self, op: isa.AcquireLock, t0: int) -> None:
        if self.lock_binding is None:
            raise SimulationError(
                f"core {self.cid}: no lock implementation bound")
        # A lock taken inside a barrier (or another phase) inherits the
        # enclosing attribution -- e.g. CSW's internal lock is Barrier
        # time (stage S1), not Lock time.
        phase = None if self._phase_stack else CycleCat.LOCK
        self._push_frame(self.lock_binding.acquire_seq(op.lock_addr),
                         phase)
        self.schedule(0, self._advance, None)

    def _exec_release(self, op: isa.ReleaseLock, t0: int) -> None:
        if self.lock_binding is None:
            raise SimulationError(
                f"core {self.cid}: no lock implementation bound")
        phase = None if self._phase_stack else CycleCat.LOCK
        self._push_frame(self.lock_binding.release_seq(op.lock_addr),
                         phase)
        self.schedule(0, self._advance, None)

    def _exec_hw_arrive(self, op: "HWBarrierArrive", t0: int) -> None:
        # Yielded by the G-line barrier's library sequence: write
        # bar_reg, then sleep until the controllers reset it.  The
        # optional *outcome* (repro.faults.FAILOVER) is delivered back
        # into the library sequence so it can complete in software.
        op.barrier.arrive(
            self.cid, lambda outcome=None: self._hw_resume(t0, outcome))

    def _exec_hw_coll_arrive(self, op: "HWCollectiveArrive",
                             t0: int) -> None:
        # Yielded by the G-line collective library: write (kind, value)
        # to col_reg, sleep until the fabric delivers the result (or the
        # FAILOVER outcome).
        op.net.arrive(
            self.cid, op.kind, op.value,
            lambda outcome=None: self._hw_resume(t0, outcome))

    def _hw_resume(self, t0: int, outcome=None) -> None:
        """Hardware barrier released (or failed over) this core."""
        self._attr(t0, CycleCat.BARRIER)
        if self.tracer.enabled or self.flight is not None:
            self._note_barrier(
                obs_ev.CORE_BARRIER_RESUME,
                outcome="failover" if outcome == FAILOVER else "release")
        self._advance(outcome)

    def _note_barrier(self, kind: str, **detail) -> None:
        """Mirror a barrier lifecycle event to tracer + flight recorder."""
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, kind, **detail)
        if self.flight is not None:
            self.flight.record(self.cid, self.now, self.name, kind, **detail)

    # ------------------------------------------------------------------ #
    def _accounted_barrier(self, seq, barrier_id: int):
        """Wrap a barrier op-sequence with episode arrival/departure
        records (drives Figure 5 / Table 2 measurements uniformly across
        hardware and software implementations)."""
        episode = self.barrier_accounting.arrive(self.cid, barrier_id,
                                                 self.now)
        result = yield from seq
        self.barrier_accounting.depart(self.cid, barrier_id, episode,
                                       self.now)
        return result

    # ------------------------------------------------------------------ #
    def _exec_spin(self, op: isa.SpinUntil, t0: int) -> None:
        def try_once() -> None:
            self.l1.load(op.addr, on_value)

        def on_value(v: int) -> None:
            if op.pred(v):
                self._attr(t0, CycleCat.READ)
                self._advance(v)
            else:
                # Sleep until the cached copy is disturbed; the releasing
                # store's invalidation wakes us (event-driven spin).
                self.l1.watch(op.addr, try_once)

        try_once()


def _as_generator(program) -> Generator:
    """Coerce any iterable of ops into a generator frame (a plain list of
    operations is a convenient program form in tests and examples)."""
    if hasattr(program, "send"):
        return program

    def _wrap():
        result = None
        for op in program:
            result = yield op
        return result

    return _wrap()


class HWCollectiveArrive:
    """Internal operation yielded by the G-line collective library.

    Not part of the public ISA: workloads yield :class:`repro.cpu.isa.
    CollectiveOp` and the bound implementation expands to this when the
    hardware collective engine is selected.  The yield returns the
    collective's result (or ``FAILOVER``).
    """

    __slots__ = ("net", "kind", "value")

    def __init__(self, net, kind: str, value: int):
        self.net = net
        self.kind = kind
        self.value = value


class HWBarrierArrive:
    """Internal operation yielded by the G-line barrier library sequence.

    Not part of the public ISA: workloads yield :class:`repro.cpu.isa.
    BarrierOp` and the bound implementation expands to this when the
    hardware barrier is selected.
    """

    __slots__ = ("barrier",)

    def __init__(self, barrier):
        self.barrier = barrier


#: Exact-type dispatch for Core._execute.  Order mirrors the original
#: isinstance chain so the subclass fallback keeps its precedence.
_DISPATCH: dict[type, Callable] = {
    isa.Compute: Core._exec_compute,
    isa.Load: Core._exec_load,
    isa.Store: Core._exec_store,
    isa.AtomicRMW: Core._exec_atomic,
    isa.SpinUntil: Core._exec_spin,
    isa.BarrierOp: Core._exec_barrier,
    isa.CollectiveOp: Core._exec_collective,
    isa.AcquireLock: Core._exec_acquire,
    isa.ReleaseLock: Core._exec_release,
    HWBarrierArrive: Core._exec_hw_arrive,
    HWCollectiveArrive: Core._exec_hw_coll_arrive,
}
