"""Dissemination barrier (Hensgen/Finkel/Manber).

A classic O(log N)-round software barrier with *no* combining point: in
round r every core signals the core ``2^r`` positions ahead (mod N) and
waits for the signal from ``2^r`` behind.  After ``ceil(log2 N)`` rounds
everyone has transitively heard from everyone.  Compared to a combining
tree there is no champion and no release wave -- each core finishes as
soon as its own last round completes.

Signalling uses per-(receiver, round) flag words carrying a monotonically
increasing episode number, which makes reuse across episodes race-free
without sense reversal (a writer can never lap a reader by more than the
episode the reader is waiting for).

Included as an additional baseline beyond the paper's CSW/DSW: the paper
claims DSW is "one of the best software approaches"; the dissemination
barrier is the usual contender, so the harness can check that conclusion
rather than assume it.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError
from ..cpu import isa
from ..mem.address import Allocator
from .api import BarrierImpl


def rounds_for(n: int) -> int:
    rounds = 0
    while (1 << rounds) < n:
        rounds += 1
    return rounds


class DisseminationBarrier(BarrierImpl):
    """Dissemination barrier over coherent shared memory."""

    name = "DISS"

    def __init__(self, allocator: Allocator, num_cores: int,
                 num_contexts: int = 1):
        if num_cores < 1:
            raise ConfigError("need at least one core")
        self.num_cores = num_cores
        self.rounds = rounds_for(num_cores)
        num_tiles = allocator.amap.num_tiles
        self.contexts = []
        for _ in range(num_contexts):
            # flags[receiver][round]: line-padded, homed at the receiver's
            # tile so the spin-wait miss is a local refetch.
            flags = [[allocator.alloc_line(home=c % num_tiles)
                      for _ in range(max(self.rounds, 1))]
                     for c in range(num_cores)]
            self.contexts.append(flags)

    def sequence(self, core, barrier_id: int) -> Generator:
        flags = self.contexts[barrier_id]
        key = ("diss_episode", barrier_id)
        episode = core.local.get(key, 0) + 1
        core.local[key] = episode
        cid, n = core.cid, self.num_cores
        for r in range(self.rounds):
            target = (cid + (1 << r)) % n
            yield isa.Store(flags[target][r], episode)
            yield isa.SpinUntil(flags[cid][r],
                                lambda v, e=episode: v >= e)

    def describe(self) -> str:
        return (f"dissemination barrier, {self.num_cores} cores, "
                f"{self.rounds} rounds")
