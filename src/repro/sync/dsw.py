"""DSW: binary combining-tree software barrier.

The paper's strongest software baseline: "a binary combining-tree or
distributed barrier, where there are several shared counters distributed in
a binary tree fashion.  All cores are divided into groups assigned to each
leaf of the tree.  Each core increments its leaf and spins.  Once the last
one arrives in the group, it continues up the tree to update the parent and
so on towards the root.  The release phase is similar but in the opposite
direction (towards the leaves)."

Implementation: a classic combining tree with sense-reversed per-node
release flags.

* Arrival: each core fetch&adds its leaf's counter; the *last* arriver at a
  node resets the counter and climbs to the parent; everyone else spins on
  the release flag of the node where they stopped.
* Release: the core that was last at the root (the champion) writes the
  release flags of every node it owned, top-down; woken cores do the same
  for the nodes *they* owned, producing a logarithmic release wave.

Tree nodes are line-padded and homed at the tile of the first core in the
node's group, distributing both the counters and the release traffic across
the chip -- which is exactly why DSW beats CSW in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..common.errors import ConfigError
from ..cpu import isa
from ..mem.address import Allocator
from .api import BarrierImpl


@dataclass
class TreeNode:
    level: int
    index: int
    count_addr: int
    release_addr: int
    fanin: int
    parent: "TreeNode | None" = None
    #: Chip core id whose tile homes this node's lines (for reports).
    home_core: int = 0
    children: list = field(default_factory=list)


def build_tree(allocator: Allocator, core_ids: list[int], arity: int
               ) -> tuple[list[TreeNode], dict[int, TreeNode]]:
    """Build an *arity*-way combining tree over *core_ids*.

    Returns ``(all_nodes, leaf_of_core)``.
    """
    if arity < 2:
        raise ConfigError("tree arity must be >= 2")
    num_tiles = allocator.amap.num_tiles
    nodes: list[TreeNode] = []
    leaf_of: dict[int, TreeNode] = {}

    # Leaves: consecutive groups of `arity` cores.
    level_nodes: list[TreeNode] = []
    for i in range(0, len(core_ids), arity):
        group = core_ids[i:i + arity]
        home = group[0] % num_tiles
        node = TreeNode(level=0, index=len(level_nodes),
                        count_addr=allocator.alloc_line(home=home),
                        release_addr=allocator.alloc_line(home=home),
                        fanin=len(group), home_core=group[0])
        for cid in group:
            leaf_of[cid] = node
        level_nodes.append(node)
        nodes.append(node)

    # Internal levels until a single root remains.
    level = 0
    while len(level_nodes) > 1:
        level += 1
        next_level: list[TreeNode] = []
        for i in range(0, len(level_nodes), arity):
            group = level_nodes[i:i + arity]
            home = group[0].home_core % num_tiles
            node = TreeNode(level=level, index=len(next_level),
                            count_addr=allocator.alloc_line(home=home),
                            release_addr=allocator.alloc_line(home=home),
                            fanin=len(group), home_core=group[0].home_core)
            for child in group:
                child.parent = node
                node.children.append(child)
            next_level.append(node)
            nodes.append(node)
        level_nodes = next_level
    return nodes, leaf_of


class CombiningTreeBarrier(BarrierImpl):
    """Binary (or k-ary) combining-tree barrier (DSW)."""

    name = "DSW"

    def __init__(self, allocator: Allocator, core_ids: list[int],
                 num_contexts: int = 1, arity: int = 2):
        if not core_ids:
            raise ConfigError("combining tree needs at least one core")
        self.core_ids = list(core_ids)
        self.arity = arity
        self.contexts = []
        for _ in range(num_contexts):
            nodes, leaf_of = build_tree(allocator, self.core_ids, arity)
            self.contexts.append({"nodes": nodes, "leaf_of": leaf_of})

    @property
    def depth(self) -> int:
        return max(n.level for n in self.contexts[0]["nodes"]) + 1

    # ------------------------------------------------------------------ #
    def sequence(self, core, barrier_id: int) -> Generator:
        ctx = self.contexts[barrier_id]
        key = ("dsw_sense", barrier_id)
        sense = 1 - core.local.get(key, 0)
        core.local[key] = sense

        # --- Arrival / combining phase (S1) --------------------------- #
        node: TreeNode | None = ctx["leaf_of"][core.cid]
        owned: list[TreeNode] = []   # nodes where this core arrived last
        stop_node: TreeNode | None = None
        while node is not None:
            old = yield isa.FetchAdd(node.count_addr, 1)
            if old + 1 < node.fanin:
                stop_node = node
                break
            # Last at this node: reset its counter for the next episode
            # (safe -- nobody re-arrives before the release completes) and
            # climb.
            yield isa.Store(node.count_addr, 0)
            owned.append(node)
            node = node.parent

        if stop_node is not None:
            # --- Busy-wait (S2): spin on the stop node's release flag -- #
            yield isa.SpinUntil(stop_node.release_addr,
                                lambda v, s=sense: v == s)

        # --- Release wave (S3): wake the nodes we own, top-down -------- #
        for owned_node in reversed(owned):
            if owned_node.fanin > 1:
                yield isa.Store(owned_node.release_addr, sense)

    def describe(self) -> str:
        return (f"binary combining-tree barrier over "
                f"{len(self.core_ids)} cores, depth {self.depth}")
