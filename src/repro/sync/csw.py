"""CSW: centralized sense-reversing software barrier.

The paper's first software baseline: "a centralized sense-reversal barrier
based on locks, where each core increments a centralized shared counter as
it reaches the barrier, and spins until that counter indicates that all
cores are present."

Two variants are provided:

* :class:`CentralizedBarrier` (default, ``lock``) -- the counter update is
  protected by a test&test&set lock, as in the paper's description.  Every
  arrival serializes through the lock *and* the counter line, producing the
  O(N) invalidation storms that make CSW collapse in Figure 5.
* variant ``fetchadd`` -- the lock is replaced by a single fetch&add; still
  centralized (hot counter line) but cheaper per arrival.  Used by
  ablations to separate lock cost from centralization cost.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError
from ..cpu import isa
from ..mem.address import Allocator
from .api import BarrierImpl
from .locks import TTSLock


class CentralizedBarrier(BarrierImpl):
    """Centralized sense-reversing barrier (CSW)."""

    def __init__(self, allocator: Allocator, num_cores: int,
                 num_contexts: int = 1, variant: str = "lock"):
        if variant not in ("lock", "fetchadd"):
            raise ConfigError(f"unknown CSW variant {variant!r}")
        self.name = "CSW" if variant == "lock" else "CSW-fa"
        self.num_cores = num_cores
        self.variant = variant
        self._lock_alg = TTSLock()
        # One line-padded counter / flag / lock per barrier context, all
        # homed at tile 0 (centralized -- that is the point of CSW).
        self.contexts = []
        for _ in range(num_contexts):
            self.contexts.append({
                "counter": allocator.alloc_line(home=0),
                "flag": allocator.alloc_line(home=0),
                "lock": allocator.alloc_line(home=0),
            })

    # ------------------------------------------------------------------ #
    def sequence(self, core, barrier_id: int) -> Generator:
        ctx = self.contexts[barrier_id]
        key = ("csw_sense", barrier_id)
        sense = 1 - core.local.get(key, 0)
        core.local[key] = sense

        if self.variant == "lock":
            # S1: lock-protected increment of the central counter.  The
            # lock algorithm runs inline so its cycles stay attributed to
            # the Barrier category (it is part of stage S1).
            yield from self._lock_alg.acquire_seq(ctx["lock"])
            count = (yield isa.Load(ctx["counter"])) + 1
            yield isa.Store(ctx["counter"], count)
            yield from self._lock_alg.release_seq(ctx["lock"])
        else:
            count = (yield isa.FetchAdd(ctx["counter"], 1)) + 1

        if count == self.num_cores:
            # Last arriver: reset the counter and flip the release flag
            # (S3); the flag store invalidates every spinner.
            yield isa.Store(ctx["counter"], 0)
            yield isa.Store(ctx["flag"], sense)
        else:
            # S2: local spin on the (cached) release flag.
            yield isa.SpinUntil(ctx["flag"], lambda v, s=sense: v == s)

    def describe(self) -> str:
        return (f"centralized sense-reversing barrier "
                f"({self.variant} variant, {self.num_cores} cores)")
