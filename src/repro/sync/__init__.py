"""Software synchronization primitives (barriers and locks)."""

from .accounting import BarrierAccounting
from .api import BarrierImpl
from .csw import CentralizedBarrier
from .dissemination import DisseminationBarrier, rounds_for
from .dsw import CombiningTreeBarrier, TreeNode, build_tree
from .locks import (MCSLock, PerCoreLockBinding, TicketLock, TTSLock,
                    bind_mcs)
from .tournament import TournamentBarrier

__all__ = [
    "BarrierAccounting",
    "BarrierImpl",
    "CentralizedBarrier",
    "DisseminationBarrier", "rounds_for",
    "CombiningTreeBarrier", "TreeNode", "build_tree",
    "MCSLock", "PerCoreLockBinding", "TicketLock", "TTSLock", "bind_mcs",
    "TournamentBarrier",
]
