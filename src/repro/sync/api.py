"""Barrier implementation interface.

A barrier implementation turns the workload-level :class:`repro.cpu.isa.
BarrierOp` into an operation sequence (a generator of ISA ops) that the
core executes in the ``BARRIER`` attribution phase.  Software barriers
(CSW, DSW) emit loads/stores/atomics/spins against coherent shared memory;
the hardware barrier (GL) emits the library-call overhead plus the
bar_reg write that engages the G-line network.
"""

from __future__ import annotations

from typing import Generator


class BarrierImpl:
    """Abstract barrier bound to a chip."""

    #: Short identifier used in reports ("CSW", "DSW", "GL", ...).
    name: str = "abstract"

    def sequence(self, core, barrier_id: int) -> Generator:
        """Return the op-generator executing one barrier episode for
        *core*.  Must be re-invoked for every episode."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description for experiment reports."""
        return self.name
