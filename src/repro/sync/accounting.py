"""Chip-level barrier-episode accounting.

Records, uniformly across hardware and software implementations, when each
core *enters* a barrier operation (arrival, start of S1) and when it
*leaves* it (release complete).  Once every participating core has left
episode *k*, a :class:`~repro.common.stats.BarrierSample` is pushed to the
run's StatsRegistry.  These samples drive Figure 5 (average time per
barrier) and Table 2 (#barriers, barrier period).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import SimulationError
from ..common.stats import BarrierSample, StatsRegistry


@dataclass
class _Episode:
    first_arrival: int
    last_arrival: int
    arrived: int = 0
    departed: int = 0
    release: int = 0
    #: Per-core arrival timestamps (for the S2 decomposition).
    arrivals: list[int] = field(default_factory=list)
    #: Sum over cores of (departure - last_arrival), accumulated as cores
    #: depart (the S3-ish completion cost each core pays).
    completion_cycles: int = 0


class BarrierAccounting:
    """Per-context episode tracker shared by all cores of a chip."""

    def __init__(self, stats: StatsRegistry, num_cores: int):
        self.stats = stats
        self.num_cores = num_cores
        #: (barrier_id, episode_index) -> _Episode
        self._episodes: dict[tuple[int, int], _Episode] = {}
        #: (barrier_id, core) -> how many episodes this core has entered.
        self._core_count: dict[tuple[int, int], int] = {}
        self.completed = 0

    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, barrier_id: int, now: int) -> int:
        """Core enters the barrier; returns the episode index."""
        ckey = (barrier_id, core_id)
        episode_idx = self._core_count.get(ckey, 0)
        self._core_count[ckey] = episode_idx + 1
        ekey = (barrier_id, episode_idx)
        ep = self._episodes.get(ekey)
        if ep is None:
            ep = self._episodes[ekey] = _Episode(first_arrival=now,
                                                 last_arrival=now)
        ep.arrived += 1
        ep.last_arrival = max(ep.last_arrival, now)
        ep.arrivals.append(now)
        if ep.arrived > self.num_cores:
            raise SimulationError(
                f"barrier {barrier_id} episode {episode_idx}: more arrivals "
                f"than cores -- mismatched barrier counts across threads?")
        self.stats.bump("barrier.arrivals")
        return episode_idx

    def depart(self, core_id: int, barrier_id: int, episode_idx: int,
               now: int) -> None:
        """Core finishes the barrier operation (released)."""
        ekey = (barrier_id, episode_idx)
        ep = self._episodes[ekey]
        ep.departed += 1
        ep.release = max(ep.release, now)
        ep.completion_cycles += now - ep.last_arrival
        if ep.departed == self.num_cores:
            self.completed += 1
            # Stage decomposition (the paper's S1/S2/S3 analysis):
            # S2 ("busy-wait for the remaining cores") is the sum over
            # cores of (last arrival - own arrival); the remainder of each
            # core's episode time is the synchronization mechanism itself
            # (notification + release propagation).
            s2 = sum(ep.last_arrival - t for t in ep.arrivals)
            self.stats.bump("barrier.s2_wait_cycles", s2)
            self.stats.bump("barrier.sync_cycles", ep.completion_cycles)
            self.stats.add_barrier(BarrierSample(
                barrier_id=barrier_id,
                first_arrival=ep.first_arrival,
                last_arrival=ep.last_arrival,
                release=ep.release))
            del self._episodes[ekey]

    # ------------------------------------------------------------------ #
    def open_episodes(self) -> int:
        """Episodes some core has entered but not every core has left."""
        return len(self._episodes)
