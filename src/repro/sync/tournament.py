"""Tournament barrier (Hensgen/Finkel/Manber; Lubachevsky variant).

Arrival is a single-elimination tournament with statically determined
winners: in round r, core ``i`` with bit r set (and lower bits clear)
"loses" to core ``i - 2^r`` -- it signals the winner's per-round arrival
flag and then spins on its own release flag.  Core 0 wins every round and
becomes the champion; the release wave retraces the bracket top-down, each
winner waking the losers of the rounds it won.

Like the dissemination barrier, flags carry monotonically increasing
episode numbers, avoiding sense-reversal races across episodes.  Spin
flags are line-padded and homed at the spinner's tile, so each wake-up
costs exactly one invalidation + refetch -- the "local spinning" property
that makes tournament/tree barriers scale.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError
from ..cpu import isa
from ..mem.address import Allocator
from .api import BarrierImpl
from .dissemination import rounds_for


class TournamentBarrier(BarrierImpl):
    """Tournament barrier over coherent shared memory."""

    name = "TOUR"

    def __init__(self, allocator: Allocator, num_cores: int,
                 num_contexts: int = 1):
        if num_cores < 1:
            raise ConfigError("need at least one core")
        self.num_cores = num_cores
        self.rounds = rounds_for(num_cores)
        num_tiles = allocator.amap.num_tiles
        self.contexts = []
        for _ in range(num_contexts):
            arrive = [[allocator.alloc_line(home=c % num_tiles)
                       for _ in range(max(self.rounds, 1))]
                      for c in range(num_cores)]
            release = [allocator.alloc_line(home=c % num_tiles)
                       for c in range(num_cores)]
            self.contexts.append({"arrive": arrive, "release": release})

    def sequence(self, core, barrier_id: int) -> Generator:
        ctx = self.contexts[barrier_id]
        key = ("tour_episode", barrier_id)
        episode = core.local.get(key, 0) + 1
        core.local[key] = episode
        cid, n = core.cid, self.num_cores

        # --- Arrival bracket ------------------------------------------- #
        rounds_won = 0
        lost = False
        for r in range(self.rounds):
            if cid & ((1 << (r + 1)) - 1):
                # I have a set bit at position r (lower bits clear by
                # construction of the loop): lose to the round-r winner.
                winner = cid - (1 << r)
                yield isa.Store(ctx["arrive"][winner][r], episode)
                lost = True
                break
            challenger = cid + (1 << r)
            if challenger < n:
                # Wait for the round-r loser to report in.
                yield isa.SpinUntil(ctx["arrive"][cid][r],
                                    lambda v, e=episode: v >= e)
            rounds_won += 1

        # --- Wait for the champion's release wave ---------------------- #
        if lost:
            yield isa.SpinUntil(ctx["release"][cid],
                                lambda v, e=episode: v >= e)

        # --- Release the losers of the rounds I won, top-down ---------- #
        for r in reversed(range(rounds_won)):
            loser = cid + (1 << r)
            if loser < n:
                yield isa.Store(ctx["release"][loser], episode)

    def describe(self) -> str:
        return (f"tournament barrier, {self.num_cores} cores, "
                f"{self.rounds} rounds")
