"""Software locks over coherent shared memory.

The default is a test&test&set lock: spin locally on a cached copy until
the lock looks free, then attempt the atomic ``test&set``.  This is the
classic busy-wait primitive the paper's CSW barrier builds on, and its
contention behaviour (an invalidation storm per release) is what makes the
centralized barrier collapse at higher core counts.

A ticket lock is provided as a fairness alternative used by some ablations.
"""

from __future__ import annotations

from typing import Generator

from ..cpu import isa
from ..mem.address import WORD_BYTES, Allocator


class TTSLock:
    """test&test&set lock algorithm (stateless; operates on a lock word)."""

    name = "tts"

    def acquire_seq(self, lock_addr: int) -> Generator:
        while True:
            value = yield isa.Load(lock_addr)
            if value == 0:
                old = yield isa.TestAndSet(lock_addr)
                if old == 0:
                    return
            # Locked: spin locally until the holder's release invalidates
            # our copy, then retry the atomic.
            yield isa.SpinUntil(lock_addr, lambda v: v == 0)

    def release_seq(self, lock_addr: int) -> Generator:
        yield isa.Store(lock_addr, 0)


class TicketLock:
    """Ticket lock: FIFO service order, one atomic per acquisition.

    Layout: two words -- ``next_ticket`` at ``lock_addr`` and
    ``now_serving`` at ``lock_addr + 8``.  Allocate with
    :meth:`alloc` so both words share a line (single-line handoff).
    """

    name = "ticket"

    @staticmethod
    def alloc(allocator: Allocator, home: int | None = None) -> int:
        return allocator.alloc_line(home=home)

    def acquire_seq(self, lock_addr: int) -> Generator:
        ticket = yield isa.FetchAdd(lock_addr, 1)
        serving_addr = lock_addr + WORD_BYTES
        value = yield isa.Load(serving_addr)
        if value != ticket:
            yield isa.SpinUntil(serving_addr,
                                lambda v, t=ticket: v == t)

    def release_seq(self, lock_addr: int) -> Generator:
        serving_addr = lock_addr + WORD_BYTES
        value = yield isa.Load(serving_addr)
        yield isa.Store(serving_addr, value + 1)


class MCSLock:
    """MCS queue lock (Mellor-Crummey & Scott): each waiter spins on its
    *own* line-padded queue node, so a release invalidates exactly one
    spinner -- the contention-free behaviour the paper's related work
    ("Synchronization without Contention") introduced.

    Model notes: queue nodes are pre-allocated per core via
    :meth:`make_nodes`; the lock word holds ``1 + core_id`` of the tail
    owner (0 = free).  The hand-off encodes MCS's swap/next-pointer
    protocol with the same message pattern (one atomic swap to enqueue,
    one store to hand off) without modelling pointer chasing inside the
    critical path.
    """

    name = "mcs"

    def __init__(self, allocator: Allocator, num_cores: int):
        #: Per-core queue node: word 0 = "locked" flag, word 1 = successor
        #: core id + 1 (0 = none).
        self.nodes = [allocator.alloc_line(home=c % allocator.amap.num_tiles)
                      for c in range(num_cores)]

    def _flag(self, core_id: int) -> int:
        return self.nodes[core_id]

    def _next(self, core_id: int) -> int:
        return self.nodes[core_id] + WORD_BYTES

    def acquire_seq_for(self, core_id: int, lock_addr: int) -> Generator:
        # Reset my node, then swap myself in as the tail.
        yield isa.Store(self._flag(core_id), 1)      # locked until handed
        yield isa.Store(self._next(core_id), 0)
        prev = yield isa.Swap(lock_addr, core_id + 1)
        if prev == 0:
            return                                   # lock was free
        # Link behind the previous tail and spin on MY node only.
        yield isa.Store(self._next(prev - 1), core_id + 1)
        yield isa.SpinUntil(self._flag(core_id), lambda v: v == 0)

    def release_seq_for(self, core_id: int, lock_addr: int) -> Generator:
        successor = yield isa.Load(self._next(core_id))
        if successor == 0:
            # Maybe no one queued: try to clear the tail.
            prev = yield isa.AtomicRMW(
                lock_addr,
                lambda v, me=core_id + 1: 0 if v == me else v)
            if prev == core_id + 1:
                return                               # truly uncontended
            # Someone is enqueueing; wait for the link then hand off.
            successor = yield isa.SpinUntil(self._next(core_id),
                                            lambda v: v != 0)
        yield isa.Store(self._flag(successor - 1), 0)


class PerCoreLockBinding:
    """Adapter binding an :class:`MCSLock` (which needs the caller's core
    id) to the chip's core-agnostic lock interface."""

    def __init__(self, mcs: MCSLock, core_id: int):
        self.mcs = mcs
        self.core_id = core_id

    def acquire_seq(self, lock_addr: int) -> Generator:
        return self.mcs.acquire_seq_for(self.core_id, lock_addr)

    def release_seq(self, lock_addr: int) -> Generator:
        return self.mcs.release_seq_for(self.core_id, lock_addr)


def bind_mcs(chip) -> MCSLock:
    """Install an MCS lock algorithm on every core of *chip*."""
    mcs = MCSLock(chip.allocator, chip.num_cores)
    for tile in chip.tiles:
        tile.core.lock_binding = PerCoreLockBinding(mcs, tile.core.cid)
    return mcs
