"""Fault scenarios and FSM mutations for the model checker.

A :class:`FaultScenario` is the verify-side counterpart of a
:class:`~repro.faults.plan.FaultPlan`: instead of seeded random rates it
names one *static* wire fault (stuck level or a per-cycle S-CSMA count
skew on a specific G-line role) plus the hardening configuration the
network runs under.  Static faults make the transition system finite and
let the same scenario be applied bit-identically to the abstract model
(:mod:`repro.verify.model`) and to a real
:class:`~repro.gline.network.GLineBarrierNetwork` during counterexample
replay (:mod:`repro.verify.conformance`).

Recovery scenarios add three finite ingredients on top:

* ``recovery=True`` arms the probe/probation re-admission FSM of
  :mod:`repro.gline.recovery` (probe timer abstracted to the constant
  ``probe_backoff`` -- exponential backoff only stretches time, which the
  bounded-recovery proof quantifies over anyway);
* ``heal`` makes the static fault *intermittent* in a deterministic way:
  ``"after-degrade"`` deactivates it once the network first degrades (a
  burst that ended), ``"off-degraded"`` deactivates it only while the
  network is degraded (a load-correlated fault that passes every idle
  probe, the flap generator);
* ``glitch_role`` arms a *one-shot* environment glitch: at a step of the
  explorer's choosing, the named transmit wire reads forced-high for one
  cycle -- the S-CSMA count lands exactly on the gather target with a
  core missing, the one fault class PR 2's guards provably cannot see.
  Probation's shadow cross-check must absorb it.

A :class:`Mutation` is a deliberate protocol bug -- an off-by-one in a
Master controller's gather threshold, or probation skipping its shadow
cross-check -- used to prove the checker finds real violations.  Each
mutation knows how to damage both the model (the model reads
:attr:`Mutation.target` at build time) and a live network
(:meth:`Mutation.apply_to_network`), so a model counterexample can be
replayed against the identically-damaged simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

#: Wire roles a scenario can damage, keyed to the network's line names:
#: ``row_tx`` = SglineH{row}, ``row_rel`` = MglineH{row}, ``col_tx`` =
#: SglineV, ``col_rel`` = MglineV.
WIRE_ROLES = ("row_tx", "row_rel", "col_tx", "col_rel")

#: Heal modes for an intermittent static fault (see module docstring).
HEAL_MODES = ("never", "after-degrade", "off-degraded")

#: Initial recovery state of the network under a scenario.
START_MODES = ("healthy", "probation")

#: Expected verdicts. ``pass``: every property proved.  ``failover``:
#: safety holds because the watchdog retires the network to the software
#: fallback.  ``violation``: the checker must produce a counterexample
#: (unhardened fault demos and mutations).
EXPECT_PASS = "pass"
EXPECT_FAILOVER = "failover"
EXPECT_VIOLATION = "violation"


@dataclass(frozen=True)
class FaultScenario:
    """One static wire fault plus the hardening the network runs under."""

    name: str
    description: str
    #: Damaged wire role (``None`` = fault-free) and its row (row roles).
    role: Optional[str] = None
    row: int = 0
    #: Permanent stuck-at level (0/1), or ``None`` for a healthy level.
    stuck: Optional[int] = None
    #: Per-cycle S-CSMA count skew (the miscount fault class).
    count_delta: int = 0
    #: Hardening: > 0 arms the all-arrived watchdog with this budget.
    watchdog_budget: int = 0
    watchdog_retries: int = 2
    #: Recovery: arms the probe/probation re-admission FSM.
    recovery: bool = False
    probation_barriers: int = 2
    max_flaps: int = 2
    probe_backoff: int = 2
    max_probes: int = 3
    #: When the static fault deactivates (see ``HEAL_MODES``).
    heal: str = "never"
    #: Initial recovery state (``"probation"`` skips the degrade/probe
    #: prefix -- the shadow cross-check scenarios start here).
    start: str = "healthy"
    #: One-shot forced-high glitch on a transmit wire (``"row_tx"``).
    glitch_role: Optional[str] = None
    glitch_row: int = 0
    #: What the checker should conclude (see ``EXPECT_*``).
    expect: str = EXPECT_PASS

    def __post_init__(self) -> None:
        if self.role is not None and self.role not in WIRE_ROLES:
            raise ValueError(f"unknown wire role {self.role!r}")
        if self.stuck not in (None, 0, 1):
            raise ValueError(f"stuck must be None/0/1, got {self.stuck!r}")
        if self.role is not None and self.stuck is None \
                and self.count_delta == 0:
            raise ValueError(f"scenario {self.name}: role without a fault")
        if not 0 <= self.watchdog_budget <= 250:
            raise ValueError("watchdog_budget must be in 0..250")
        if self.expect not in (EXPECT_PASS, EXPECT_FAILOVER,
                               EXPECT_VIOLATION):
            raise ValueError(f"unknown expectation {self.expect!r}")
        if self.heal not in HEAL_MODES:
            raise ValueError(f"unknown heal mode {self.heal!r}")
        if self.start not in START_MODES:
            raise ValueError(f"unknown start mode {self.start!r}")
        if self.glitch_role not in (None, "row_tx"):
            raise ValueError(f"glitch_role must be None or 'row_tx', "
                             f"got {self.glitch_role!r}")
        if self.recovery and self.watchdog_budget == 0:
            raise ValueError(f"scenario {self.name}: recovery requires "
                             f"an armed watchdog (budget > 0)")
        if not self.recovery:
            if self.heal != "never":
                raise ValueError(f"scenario {self.name}: heal modes "
                                 f"require recovery=True")
            if self.start != "healthy":
                raise ValueError(f"scenario {self.name}: start="
                                 f"'probation' requires recovery=True")
            if self.glitch_role is not None:
                raise ValueError(f"scenario {self.name}: the probation "
                                 f"glitch requires recovery=True")
        if self.heal != "never" and self.role is None:
            raise ValueError(f"scenario {self.name}: heal without a "
                             f"fault to heal")
        for field_name, value, hi in (
                ("probation_barriers", self.probation_barriers, 8),
                ("max_flaps", self.max_flaps, 8),
                ("probe_backoff", self.probe_backoff, 32),
                ("max_probes", self.max_probes, 8)):
            if not 1 <= value <= hi:
                raise ValueError(f"{field_name} must be in 1..{hi}, "
                                 f"got {value}")
        if not 0 <= self.glitch_row <= 6:
            raise ValueError("glitch_row must be in 0..6")

    # ------------------------------------------------------------------ #
    @property
    def is_fault_free(self) -> bool:
        return self.role is None and self.glitch_role is None

    @property
    def hardened(self) -> bool:
        return self.watchdog_budget > 0

    @property
    def needs_injector(self) -> bool:
        """Whether a simulator replay must attach a ScenarioInjector."""
        return self.role is not None or self.glitch_role is not None

    def applicable(self, rows: int, cols: int) -> Optional[str]:
        """Why this scenario cannot run on ``rows x cols`` (None = it can)."""
        if self.role in ("row_tx", "row_rel"):
            if cols < 2:
                return f"{self.role} needs cols >= 2"
            if self.row >= rows:
                return f"row {self.row} outside a {rows}-row mesh"
        if self.role in ("col_tx", "col_rel") and rows < 2:
            return f"{self.role} needs rows >= 2"
        if self.glitch_role is not None:
            if cols < 2:
                return "a row_tx glitch needs cols >= 2"
            if self.glitch_row >= rows:
                return (f"glitch row {self.glitch_row} outside a "
                        f"{rows}-row mesh")
        return None

    def wire_suffix(self) -> Optional[str]:
        """Line-name suffix of the damaged wire (matches ``GLine.name``)."""
        if self.role is None:
            return None
        return {"row_tx": f"SglineH{self.row}",
                "row_rel": f"MglineH{self.row}",
                "col_tx": "SglineV",
                "col_rel": "MglineV"}[self.role]

    def glitch_suffix(self) -> Optional[str]:
        """Line-name suffix of the glitched wire."""
        if self.glitch_role is None:
            return None
        return f"SglineH{self.glitch_row}"

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "role": self.role, "row": self.row,
                "stuck": self.stuck, "count_delta": self.count_delta,
                "watchdog_budget": self.watchdog_budget,
                "watchdog_retries": self.watchdog_retries,
                "recovery": self.recovery,
                "probation_barriers": self.probation_barriers,
                "max_flaps": self.max_flaps,
                "probe_backoff": self.probe_backoff,
                "max_probes": self.max_probes,
                "heal": self.heal, "start": self.start,
                "glitch_role": self.glitch_role,
                "glitch_row": self.glitch_row,
                "expect": self.expect}


class ScenarioInjector:
    """A :class:`~repro.faults.injector.FaultInjector`-compatible shim that
    applies one scenario's static fault to the real network every cycle.

    ``perturb_glines`` is the only hook the network calls; re-applying the
    transient ``count_delta`` each clocked cycle mirrors the model, where
    the skew is part of the transition relation rather than a seeded event.

    For recovery scenarios the shim also implements the deterministic
    *heal* semantics (clearing ``line.stuck`` while the fault is
    inactive, so an idle-cycle probe sees the healed wire) and fires the
    one-shot glitch at the concretized engine cycles.  Heal modes consult
    the network's recovery controller through :attr:`net`, which
    :func:`~repro.verify.conformance.replay_on_simulator` wires up.
    """

    def __init__(self, scenario: FaultScenario,
                 glitch_cycles: Iterable[int] = ()):
        self.scenario = scenario
        self._suffix = scenario.wire_suffix()
        self._glitch_suffix = scenario.glitch_suffix()
        self.glitch_cycles = frozenset(glitch_cycles)
        #: Recovery-state backref for the heal modes (set by the replay).
        self.net: Any = None

    def _fault_active(self) -> bool:
        heal = self.scenario.heal
        if heal == "never":
            return True
        rec = getattr(self.net, "recovery", None)
        if rec is None:
            return True
        if heal == "after-degrade":
            return rec.degraded_episodes == 0
        # "off-degraded": the fault only manifests under load, never
        # while the quarantined network sits idle (or probes).
        from ..gline.recovery import DEGRADED, PROBING
        return rec.state not in (DEGRADED, PROBING)

    def perturb_glines(self, lines: List[Any],
                       now: Optional[int] = None) -> None:
        active = self._fault_active()
        if self._suffix is not None:
            for line in lines:
                if line.name.endswith("." + self._suffix):
                    if self.scenario.stuck is not None:
                        line.stuck = self.scenario.stuck if active \
                            else None
                    if self.scenario.count_delta and active:
                        line.count_delta = self.scenario.count_delta
        if self._glitch_suffix is not None and now is not None \
                and now in self.glitch_cycles:
            for line in lines:
                if line.name.endswith("." + self._glitch_suffix):
                    line.glitch_force = 1


# ---------------------------------------------------------------------- #
# Mutations: deliberate protocol bugs the checker must catch.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Mutation:
    """A deliberate protocol bug in one controller.

    ``target`` selects the damage: ``"mh"`` lowers every MasterH's
    ``num_slaves`` by one (a row flags complete with a slave still
    missing), ``"mv"`` lowers MasterV's (the chip releases with a row
    still gathering) -- both the classic early-release bug class of
    barrier hardware.  ``"shadow"`` disables probation's shadow
    cross-check in the recovery FSM: the one guard standing between a
    one-shot gather glitch and a silent early release.
    """

    name: str
    description: str
    target: str

    def __post_init__(self) -> None:
        if self.target not in ("mh", "mv", "shadow"):
            raise ValueError(f"unknown mutation target {self.target!r}")

    def applicable(self, rows: int, cols: int) -> Optional[str]:
        if self.target == "mh" and cols < 2:
            return "mh threshold mutation needs cols >= 2"
        if self.target == "mv" and rows < 2:
            return "mv threshold mutation needs rows >= 2"
        return None

    def apply_to_network(self, net: Any) -> None:
        """Damage a live ``GLineBarrierNetwork`` identically to the model."""
        if self.target == "mh":
            for mh in net.masters_h:
                mh.num_slaves -= 1
        elif self.target == "mv":
            net.master_v.num_slaves -= 1
        else:
            if net.recovery is None:
                raise ValueError("the shadow mutation needs a network "
                                 "with recovery enabled")
            net.recovery.shadow_disabled = True


#: Registry of named scenarios.  The hardened fault scenarios must stay
#: safe (the watchdog/failover machinery absorbs the fault); the
#: unhardened miscount demo must *lose* safety -- proving the checker can
#: tell the difference.  The recovery scenarios additionally prove
#: bounded re-admission and the flap bound.
SCENARIOS: Dict[str, FaultScenario] = {s.name: s for s in [
    FaultScenario(
        name="fault-free",
        description="healthy wires, paper-faithful unhardened network"),
    FaultScenario(
        name="fault-free-hardened",
        description="healthy wires with the watchdog armed (budget 8); "
                    "hardening must not break any property",
        watchdog_budget=8),
    FaultScenario(
        name="stuck-row-tx-low",
        description="row-0 SglineH stuck at 0: slave arrivals invisible, "
                    "watchdog must retry then fail over safely",
        role="row_tx", row=0, stuck=0,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="stuck-col-rel-high",
        description="MglineV stuck at 1: spurious chip release level; the "
                    "hardened guard masks it and fails over safely",
        role="col_rel", stuck=1,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="stuck-row-rel-low",
        description="row-0 MglineH stuck at 0: the release pulse is "
                    "dropped for the row's slaves while the master runs "
                    "ahead; the partial-release guard must fail the "
                    "split cohort over safely",
        role="row_rel", row=0, stuck=0,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="miscount-row-tx",
        description="row-0 SglineH S-CSMA over-counts by one each cycle; "
                    "overshoot detection must catch it and fail over",
        role="row_tx", row=0, count_delta=1,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="miscount-row-tx-unhardened",
        description="the same miscount without hardening: the polluted "
                    "Scnt releases a later episode early (demo of a real "
                    "safety violation)",
        role="row_tx", row=0, count_delta=1,
        expect=EXPECT_VIOLATION),
    FaultScenario(
        name="intermittent-row-tx-recovers",
        description="row-0 SglineH stuck at 0 until the watchdog "
                    "degrades the network, then healed: the probe must "
                    "pass and probation re-admit the hardware within a "
                    "bounded number of steps",
        role="row_tx", row=0, stuck=0, heal="after-degrade",
        watchdog_budget=8, recovery=True,
        probation_barriers=1, probe_backoff=2,
        expect=EXPECT_PASS),
    FaultScenario(
        name="flaky-row-tx-retires",
        description="row-0 SglineH stuck at 0 only under load: every "
                    "idle probe passes, every probation trips -- flap "
                    "damping must quarantine the network permanently "
                    "after max_flaps re-admissions, safely",
        role="row_tx", row=0, stuck=0, heal="off-degraded",
        watchdog_budget=8, recovery=True,
        probation_barriers=2, max_flaps=2, probe_backoff=2,
        expect=EXPECT_PASS),
    FaultScenario(
        name="probation-glitch",
        description="a one-shot gather glitch lands row 0's S-CSMA "
                    "count exactly on target with a slave missing, "
                    "evading every PR 2 guard; probation's shadow "
                    "cross-check must withhold the release",
        watchdog_budget=8, recovery=True,
        start="probation", probation_barriers=2,
        glitch_role="row_tx", glitch_row=0,
        expect=EXPECT_PASS),
]}

#: The canonical fault-free scenario (model default).
FAULT_FREE = SCENARIOS["fault-free"]

MUTATIONS: Dict[str, Mutation] = {m.name: m for m in [
    Mutation(name="mh-early-flag",
             description="every MasterH gathers to num_slaves-1: a row "
                         "flags complete with one slave missing",
             target="mh"),
    Mutation(name="mv-early-done",
             description="MasterV gathers to num_rows-2: the chip release "
                         "starts with one row still gathering",
             target="mv"),
    Mutation(name="probation-skip-shadow",
             description="probation skips the shadow cross-check: under "
                         "the probation-glitch scenario the hardware "
                         "releases early and safety is lost",
             target="shadow"),
]}


def get_scenario(name: str) -> FaultScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {', '.join(sorted(SCENARIOS))}") from None


def get_mutation(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        raise KeyError(f"unknown mutation {name!r}; "
                       f"known: {', '.join(sorted(MUTATIONS))}") from None
