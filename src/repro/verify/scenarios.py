"""Fault scenarios and FSM mutations for the model checker.

A :class:`FaultScenario` is the verify-side counterpart of a
:class:`~repro.faults.plan.FaultPlan`: instead of seeded random rates it
names one *static* wire fault (stuck level or a per-cycle S-CSMA count
skew on a specific G-line role) plus the hardening configuration the
network runs under.  Static faults make the transition system finite and
let the same scenario be applied bit-identically to the abstract model
(:mod:`repro.verify.model`) and to a real
:class:`~repro.gline.network.GLineBarrierNetwork` during counterexample
replay (:mod:`repro.verify.conformance`).

A :class:`Mutation` is a deliberate protocol bug -- an off-by-one in a
Master controller's gather threshold -- used to prove the checker finds
real violations.  Each mutation knows how to damage both the model (the
model reads :attr:`Mutation.target` at build time) and a live network
(:meth:`Mutation.apply_to_network`), so a model counterexample can be
replayed against the identically-damaged simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Wire roles a scenario can damage, keyed to the network's line names:
#: ``row_tx`` = SglineH{row}, ``row_rel`` = MglineH{row}, ``col_tx`` =
#: SglineV, ``col_rel`` = MglineV.
WIRE_ROLES = ("row_tx", "row_rel", "col_tx", "col_rel")

#: Expected verdicts. ``pass``: every property proved.  ``failover``:
#: safety holds because the watchdog retires the network to the software
#: fallback.  ``violation``: the checker must produce a counterexample
#: (unhardened fault demos and mutations).
EXPECT_PASS = "pass"
EXPECT_FAILOVER = "failover"
EXPECT_VIOLATION = "violation"


@dataclass(frozen=True)
class FaultScenario:
    """One static wire fault plus the hardening the network runs under."""

    name: str
    description: str
    #: Damaged wire role (``None`` = fault-free) and its row (row roles).
    role: Optional[str] = None
    row: int = 0
    #: Permanent stuck-at level (0/1), or ``None`` for a healthy level.
    stuck: Optional[int] = None
    #: Per-cycle S-CSMA count skew (the miscount fault class).
    count_delta: int = 0
    #: Hardening: > 0 arms the all-arrived watchdog with this budget.
    watchdog_budget: int = 0
    watchdog_retries: int = 2
    #: What the checker should conclude (see ``EXPECT_*``).
    expect: str = EXPECT_PASS

    def __post_init__(self) -> None:
        if self.role is not None and self.role not in WIRE_ROLES:
            raise ValueError(f"unknown wire role {self.role!r}")
        if self.stuck not in (None, 0, 1):
            raise ValueError(f"stuck must be None/0/1, got {self.stuck!r}")
        if self.role is not None and self.stuck is None \
                and self.count_delta == 0:
            raise ValueError(f"scenario {self.name}: role without a fault")
        if not 0 <= self.watchdog_budget <= 250:
            raise ValueError("watchdog_budget must be in 0..250")
        if self.expect not in (EXPECT_PASS, EXPECT_FAILOVER,
                               EXPECT_VIOLATION):
            raise ValueError(f"unknown expectation {self.expect!r}")

    # ------------------------------------------------------------------ #
    @property
    def is_fault_free(self) -> bool:
        return self.role is None

    @property
    def hardened(self) -> bool:
        return self.watchdog_budget > 0

    def applicable(self, rows: int, cols: int) -> Optional[str]:
        """Why this scenario cannot run on ``rows x cols`` (None = it can)."""
        if self.role in ("row_tx", "row_rel"):
            if cols < 2:
                return f"{self.role} needs cols >= 2"
            if self.row >= rows:
                return f"row {self.row} outside a {rows}-row mesh"
        if self.role in ("col_tx", "col_rel") and rows < 2:
            return f"{self.role} needs rows >= 2"
        return None

    def wire_suffix(self) -> Optional[str]:
        """Line-name suffix of the damaged wire (matches ``GLine.name``)."""
        if self.role is None:
            return None
        return {"row_tx": f"SglineH{self.row}",
                "row_rel": f"MglineH{self.row}",
                "col_tx": "SglineV",
                "col_rel": "MglineV"}[self.role]

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "role": self.role, "row": self.row,
                "stuck": self.stuck, "count_delta": self.count_delta,
                "watchdog_budget": self.watchdog_budget,
                "watchdog_retries": self.watchdog_retries,
                "expect": self.expect}


class ScenarioInjector:
    """A :class:`~repro.faults.injector.FaultInjector`-compatible shim that
    applies one scenario's static fault to the real network every cycle.

    ``perturb_glines`` is the only hook the network calls; re-applying the
    transient ``count_delta`` each clocked cycle mirrors the model, where
    the skew is part of the transition relation rather than a seeded event.
    """

    def __init__(self, scenario: FaultScenario):
        self.scenario = scenario
        self._suffix = scenario.wire_suffix()

    def perturb_glines(self, lines: List[Any]) -> None:
        if self._suffix is None:
            return
        for line in lines:
            if line.name.endswith("." + self._suffix):
                if self.scenario.stuck is not None:
                    line.stuck = self.scenario.stuck
                if self.scenario.count_delta:
                    line.count_delta = self.scenario.count_delta


# ---------------------------------------------------------------------- #
# Mutations: deliberate protocol bugs the checker must catch.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Mutation:
    """An off-by-one gather threshold in one Master controller class.

    ``target`` selects the controller: ``"mh"`` lowers every MasterH's
    ``num_slaves`` by one (a row flags complete with a slave still
    missing), ``"mv"`` lowers MasterV's (the chip releases with a row
    still gathering).  Both reproduce the classic early-release bug class
    of barrier hardware.
    """

    name: str
    description: str
    target: str

    def __post_init__(self) -> None:
        if self.target not in ("mh", "mv"):
            raise ValueError(f"unknown mutation target {self.target!r}")

    def applicable(self, rows: int, cols: int) -> Optional[str]:
        if self.target == "mh" and cols < 2:
            return "mh threshold mutation needs cols >= 2"
        if self.target == "mv" and rows < 2:
            return "mv threshold mutation needs rows >= 2"
        return None

    def apply_to_network(self, net: Any) -> None:
        """Damage a live ``GLineBarrierNetwork`` identically to the model."""
        if self.target == "mh":
            for mh in net.masters_h:
                mh.num_slaves -= 1
        else:
            net.master_v.num_slaves -= 1


#: Registry of named scenarios.  The hardened fault scenarios must stay
#: safe (the watchdog/failover machinery absorbs the fault); the
#: unhardened miscount demo must *lose* safety -- proving the checker can
#: tell the difference.
SCENARIOS: Dict[str, FaultScenario] = {s.name: s for s in [
    FaultScenario(
        name="fault-free",
        description="healthy wires, paper-faithful unhardened network"),
    FaultScenario(
        name="fault-free-hardened",
        description="healthy wires with the watchdog armed (budget 8); "
                    "hardening must not break any property",
        watchdog_budget=8),
    FaultScenario(
        name="stuck-row-tx-low",
        description="row-0 SglineH stuck at 0: slave arrivals invisible, "
                    "watchdog must retry then fail over safely",
        role="row_tx", row=0, stuck=0,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="stuck-col-rel-high",
        description="MglineV stuck at 1: spurious chip release level; the "
                    "hardened guard masks it and fails over safely",
        role="col_rel", stuck=1,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="miscount-row-tx",
        description="row-0 SglineH S-CSMA over-counts by one each cycle; "
                    "overshoot detection must catch it and fail over",
        role="row_tx", row=0, count_delta=1,
        watchdog_budget=8, expect=EXPECT_FAILOVER),
    FaultScenario(
        name="miscount-row-tx-unhardened",
        description="the same miscount without hardening: the polluted "
                    "Scnt releases a later episode early (demo of a real "
                    "safety violation)",
        role="row_tx", row=0, count_delta=1,
        expect=EXPECT_VIOLATION),
]}

#: The canonical fault-free scenario (model default).
FAULT_FREE = SCENARIOS["fault-free"]

MUTATIONS: Dict[str, Mutation] = {m.name: m for m in [
    Mutation(name="mh-early-flag",
             description="every MasterH gathers to num_slaves-1: a row "
                         "flags complete with one slave missing",
             target="mh"),
    Mutation(name="mv-early-done",
             description="MasterV gathers to num_rows-2: the chip release "
                         "starts with one row still gathering",
             target="mv"),
]}


def get_scenario(name: str) -> FaultScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {', '.join(sorted(SCENARIOS))}") from None


def get_mutation(name: str) -> Mutation:
    try:
        return MUTATIONS[name]
    except KeyError:
        raise KeyError(f"unknown mutation {name!r}; "
                       f"known: {', '.join(sorted(MUTATIONS))}") from None
