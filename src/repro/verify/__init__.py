"""Explicit-state model checking for the G-line barrier protocol.

``repro.verify`` reduces the G-line barrier -- the per-row Master/Slave
FSMs of :mod:`repro.gline.controllers`, the S-CSMA wire semantics of
:mod:`repro.gline.gline` and the watchdog/failover hardening of
:mod:`repro.faults` -- to a compact, hashable transition system
(:class:`GLBarrierModel`) and exhaustively enumerates every reachable
state under every arrival interleaving (:func:`explore`), with symmetry
reduction over interchangeable cores.  Four properties are checked:

* **safety** -- no core is released before all cores of its episode
  arrived;
* **exactly-once** -- each core is released exactly once per episode;
* **deadlock-freedom** -- from every reachable state, completing all
  episodes stays possible (and inevitable once all arrivals land);
* **four-cycle** -- on healthy wires the release follows the last
  arrival by exactly the paper's bound (4 cycles on a 2D mesh).

Faults and hardening are first-class: a :class:`FaultScenario` pins a
static stuck-at or S-CSMA miscount to one wire role and the checker
proves the hardened network *stays safe* by absorbing the fault through
watchdog retry/failover -- or, for unhardened demos and deliberate FSM
:class:`Mutation`\\ s, produces a minimal counterexample.

The conformance bridge closes the loop with the reference simulator:
:func:`concretize` + :func:`replay_on_simulator` drive a real
:class:`~repro.gline.network.GLineBarrierNetwork` with a counterexample
schedule and confirm the violation in "hardware" (then export it as a
Perfetto/VCD artifact via :func:`export_counterexample`), while
:func:`lift_trace` replays a recorded observability stream through the
model and checks refinement cycle-by-cycle.

``repro verify --mesh 4x4`` runs all of this from the CLI; with
``--shard-depth`` the BFS frontier is split into
:class:`VerifyShardSpec`\\ s that fan out over the parallel executor and
persistent result cache like any other experiment.
"""

from .collectives import (COLLECTIVE_PROPERTIES, CollectiveCounterexample,
                          CollectiveExploreResult, CollectiveModel,
                          CollectiveReplayResult, P_COLL_TERMINATION,
                          P_COLL_ONCE, P_COLL_VALUE, explore_collective,
                          replay_collective)
from .conformance import (ConcretePath, LiftResult, ReplayResult,
                          concretize, export_counterexample, lift_perfetto,
                          lift_trace, replay_on_simulator)
from .explore import (ALL_PROPERTIES, NOT_PROVED, PROVED, SKIPPED,
                      VIOLATED, Counterexample, ExploreResult, explore,
                      replay_actions)
from .model import (GLBarrierModel, P_DEADLOCK, P_EXACTLY_ONCE, P_FLAP,
                    P_FOUR_CYCLE, P_RECOVERY, P_SAFETY, PropertyViolation)
from .report import (expectation_verdict, render_counterexample,
                     render_report, report_dict)
from .scenarios import (EXPECT_FAILOVER, EXPECT_PASS, EXPECT_VIOLATION,
                        FAULT_FREE, MUTATIONS, SCENARIOS, FaultScenario,
                        Mutation, ScenarioInjector, get_mutation,
                        get_scenario)
from .shard import (VerifyShardResult, VerifyShardSpec, merge_shards,
                    shard_prefixes)

__all__ = [
    "GLBarrierModel", "PropertyViolation",
    "P_SAFETY", "P_EXACTLY_ONCE", "P_DEADLOCK", "P_FOUR_CYCLE",
    "P_RECOVERY", "P_FLAP",
    "explore", "replay_actions", "ExploreResult", "Counterexample",
    "ALL_PROPERTIES", "PROVED", "VIOLATED", "NOT_PROVED", "SKIPPED",
    "FaultScenario", "Mutation", "ScenarioInjector",
    "SCENARIOS", "MUTATIONS", "FAULT_FREE",
    "EXPECT_PASS", "EXPECT_FAILOVER", "EXPECT_VIOLATION",
    "get_scenario", "get_mutation",
    "concretize", "replay_on_simulator", "export_counterexample",
    "lift_trace", "lift_perfetto",
    "ConcretePath", "ReplayResult", "LiftResult",
    "VerifyShardSpec", "VerifyShardResult", "shard_prefixes",
    "merge_shards",
    "render_report", "render_counterexample", "report_dict",
    "expectation_verdict",
    "CollectiveModel", "CollectiveExploreResult",
    "CollectiveCounterexample", "CollectiveReplayResult",
    "COLLECTIVE_PROPERTIES", "P_COLL_VALUE", "P_COLL_ONCE",
    "P_COLL_TERMINATION", "explore_collective", "replay_collective",
]
