"""Explicit-state checking of the G-line collective fabric.

Unlike the barrier checker, which re-derives the controller FSMs as an
abstract transition system, the collective checker drives the **real**
:class:`~repro.collectives.fabric.CollectiveFabric` -- the engine-free
protocol core -- through its ``snapshot``/``restore`` interface.  There
is no second implementation to diverge: every transition the checker
explores is computed by the production controllers themselves, and the
model layer only adds the things the fabric doesn't know about
(which cores have arrived, what operand each carries) plus the
property checks.

The state space is every interleaving of per-core arrivals against
fabric clock ticks (arrivals between the same two ticks share a cycle,
exactly as col_reg writes landing in the same cycle do).  Three
properties are checked on every edge:

* **value-correctness** -- every delivered result equals
  :func:`repro.collectives.ops.reference_reduce` over the operand
  multiset;
* **exactly-once** -- each core receives exactly one result per
  episode, and only after every operand of the episode is latched;
* **termination** -- once all cores have arrived, the (deterministic)
  fabric reaches completion; a quiescent-but-incomplete fabric is a
  hang.

Symmetry reduction: operands travel *with* the cores in the model
state, so any permutation of same-row slaves (and of whole rows below
row 0) maps reachable states to reachable states of a relabelled but
observably identical system.  Canonicalization sorts those bundles,
which keeps 4x4 meshes tractable.  A planted :data:`~repro.collectives.
controllers.MUTATIONS` entry breaks the symmetry (it is sited on
specific controllers), so mutated models disable the reduction.

The conformance bridge mirrors the barrier one: a counterexample is
already a concrete ``(cycle, core, value)`` schedule, and
:func:`replay_collective` drives a real engine-backed
:class:`~repro.collectives.network.CollectiveNetwork` with it
(``barreg_write_cycles=0`` aligns model steps with engine cycles) to
confirm the violation in "hardware".

**Miscount adversary** (``adversary_budget=k``): the model additionally
branches, on every tick where some stage master is mid-rounds, into
"tick with a one-cycle S-CSMA miscount on that master's counting line"
(delta +-1, budget *k* over the whole episode).  Injections are
restricted to round-phase ticks so the concrete schedule stays
cycle-aligned for replay.  Under ``integrity="off"`` the value property
is checked unconditionally and a single miscount yields a silent
wrong-value counterexample; under the verified modes the check is
conditioned on the fabric *not* being integrity-exhausted -- the
network layer never delivers an exhausted episode (it escalates
instead) -- so a ``PROVED`` value verdict is exactly the
detection-completeness statement: *no undetected wrong value exists
under any arrival interleaving and any placement of up to k
miscounts*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..collectives import ops
from ..collectives.config import CollectiveConfig
from ..collectives.controllers import M_ROUNDS
from ..collectives.fabric import CollectiveFabric
from ..collectives.network import CollectiveNetwork
from ..common.errors import ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..sim.engine import Engine
from .explore import NOT_PROVED, PROVED, VIOLATED

#: Property labels (the collective analogue of repro.verify.model's).
P_COLL_VALUE = "collective-value"
P_COLL_ONCE = "collective-exactly-once"
P_COLL_TERMINATION = "collective-termination"

COLLECTIVE_PROPERTIES = (P_COLL_VALUE, P_COLL_ONCE, P_COLL_TERMINATION)

#: Model actions.  An arrival action is the local index itself; ticks
#: and adversary injections are encoded as negatives: action <= INJ_BASE
#: is "tick with a miscount on master (INJ_BASE - action) // 2, delta +1
#: for even offsets and -1 for odd ones".
TICK = -1
INJ_BASE = -2


def inj_action(master: int, delta: int) -> int:
    """Encode an adversary injection as a model action."""
    return INJ_BASE - (master * 2 + (1 if delta < 0 else 0))


def inj_decode(action: int) -> Tuple[int, int]:
    """Decode an injection action into ``(master_index, delta)``."""
    off = INJ_BASE - action
    return off // 2, (-1 if off % 2 else 1)


@dataclass
class CollectiveCounterexample:
    """A violating run, already concrete: ``schedule`` lists
    ``(cycle, local, value)`` arrivals (cycle = ticks taken before the
    arrival), ``injections`` lists ``(cycle, master_index, delta)``
    adversary miscounts (applied to that cycle's tick), and the
    violation fired at ``at_tick``."""

    prop: str
    message: str
    schedule: List[Tuple[int, int, int]]
    at_tick: int
    injections: List[Tuple[int, int, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"property": self.prop, "message": self.message,
                "schedule": [list(s) for s in self.schedule],
                "at_tick": self.at_tick,
                "injections": [list(i) for i in self.injections]}


@dataclass
class CollectiveExploreResult:
    """Outcome of one collective exploration."""

    kind: str
    rows: int
    cols: int
    width: int
    mutation: Optional[str]
    integrity: str = "off"
    adversary_budget: int = 0
    states: int = 0
    transitions: int = 0
    verdicts: Dict[str, str] = field(default_factory=dict)
    counterexample: Optional[CollectiveCounterexample] = None
    capped: bool = False

    @property
    def ok(self) -> bool:
        return all(v == PROVED for v in self.verdicts.values())

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "mesh": f"{self.rows}x{self.cols}",
                "width": self.width, "mutation": self.mutation,
                "integrity": self.integrity,
                "adversary_budget": self.adversary_budget,
                "states": self.states, "transitions": self.transitions,
                "verdicts": dict(self.verdicts), "capped": self.capped,
                "counterexample": self.counterexample.to_dict()
                if self.counterexample else None}


class _Violation(Exception):
    def __init__(self, prop: str, message: str):
        super().__init__(message)
        self.prop = prop
        self.message = message


def default_values(rows: int, cols: int, width: int) -> List[int]:
    """Deterministic operands: every core of row *r* carries ``r + 1``
    (masked), so same-row slaves stay interchangeable for the symmetry
    reduction while rows remain distinguishable in the result."""
    m = ops.mask(width)
    return [(r + 1) & m if (r + 1) & m else 1 & m
            for r in range(rows) for _ in range(cols)]


class CollectiveModel:
    """Transition system over the real fabric's snapshots.

    A state is ``(fabric_snapshot, cores, )`` where ``cores[i]`` is the
    ``(value, arrived)`` bundle of local *i*; delivery flags live inside
    the fabric snapshot itself.
    """

    def __init__(self, rows: int, cols: int, kind: str, *,
                 width: int = 1, values: Optional[Sequence[int]] = None,
                 mutation: Optional[str] = None,
                 stuck: Optional[Dict[str, int]] = None,
                 integrity: str = "off", integrity_budget: int = 3,
                 adversary_budget: int = 0,
                 max_transmitters: int = 6):
        ops.check_kind(kind)
        if rows > max_transmitters + 1 or cols > max_transmitters + 1:
            raise ConfigError("model mesh exceeds a single fabric")
        self.rows = rows
        self.cols = cols
        self.kind = kind
        self.width = width
        self.mutation = mutation
        self.stuck = dict(stuck or {})
        self.integrity = integrity
        self.adversary_budget = adversary_budget
        self.n = rows * cols
        if values is None:
            values = default_values(rows, cols, width)
        if len(values) != self.n:
            raise ConfigError(f"need {self.n} values, got {len(values)}")
        self.values = [v & ops.mask(width) for v in values]
        self.reference = ops.reference_reduce(kind, self.values, width)
        self.fabric = CollectiveFabric(rows, cols, width, max_transmitters,
                                       name="model", mutation=mutation,
                                       integrity=integrity,
                                       integrity_budget=integrity_budget)
        #: Adversary targets: every stage master with a counting line,
        #: in fabric order (row masters, then the column master).  The
        #: same ordering indexes ``CollectiveCounterexample.injections``
        #: and the replay hook.
        self.adv_masters = [m for m in self.fabric._all_masters()
                            if m.tx is not None]
        for suffix, level in self.stuck.items():
            hit = [ln for ln in self.fabric.lines
                   if ln.name.endswith(suffix)]
            if not hit:
                raise ConfigError(f"no fabric line matches {suffix!r}")
            for ln in hit:
                ln.stuck = level
        self.fabric.begin(kind)
        self._initial_fab = self.fabric.snapshot()
        #: Symmetry is sound only while controllers are interchangeable;
        #: a mutation is sited on specific ones.
        self.symmetric = mutation is None
        # Per-row (tx, rel) stuck indices into fabric.lines, for
        # permuting stuck levels alongside row bundles.
        self._row_lines: List[Optional[Tuple[int, int]]] = []
        for r in range(rows):
            if cols > 1:
                tx = self.fabric.rmasters[r].tx
                rel = self.fabric.rmasters[r].rel
                idx = tuple(next(i for i, ln in enumerate(self.fabric.lines)
                                 if ln is wire) for wire in (tx, rel))
                self._row_lines.append(idx)  # type: ignore[arg-type]
            else:
                self._row_lines.append(None)
        self._col_lines: List[int] = []
        if rows > 1:
            for wire in (self.fabric.colmaster.tx,
                         self.fabric.colmaster.rel):
                self._col_lines.append(next(
                    i for i, ln in enumerate(self.fabric.lines)
                    if ln is wire))

    # ------------------------------------------------------------------ #
    def initial(self) -> tuple:
        cores = tuple((self.values[i], False) for i in range(self.n))
        return (self._initial_fab, cores, self.adversary_budget)

    def actions(self, state: tuple) -> List[int]:
        fab, cores, inj_left = state
        acts = [i for i in range(self.n) if not cores[i][1]]
        if any(arrived for _, arrived in cores):
            acts.append(TICK)
            if inj_left > 0:
                for m in self._eligible_masters(fab):
                    acts.append(inj_action(m, +1))
                    acts.append(inj_action(m, -1))
        return acts

    def _eligible_masters(self, fab: tuple) -> List[int]:
        """Adversary targets of this state: masters mid-rounds (the
        counted phases miscounts can corrupt; arrival counting is out of
        scope, matching the barrier checker's own miscount scenarios)."""
        self.fabric.restore(fab)
        return [i for i, m in enumerate(self.adv_masters)
                if m.state == M_ROUNDS]

    def all_arrived(self, state: tuple) -> bool:
        return all(arrived for _, arrived in state[1])

    def is_complete(self, state: tuple) -> bool:
        self.fabric.restore(state[0])
        return self.fabric.done

    # ------------------------------------------------------------------ #
    def step(self, state: tuple, action: int) -> tuple:
        """Apply *action*; raises :class:`_Violation` on a property
        violation, else returns the canonical successor."""
        fab, cores, inj_left = state
        self.fabric.restore(fab)
        if action == TICK or action <= INJ_BASE:
            if action <= INJ_BASE:
                master, delta = inj_decode(action)
                assert inj_left > 0, "adversary budget exhausted"
                self.adv_masters[master].tx.count_delta = delta
                inj_left -= 1
            deliveries = self.fabric.tick()
            self._check(deliveries, cores)
        else:
            value, arrived = cores[action]
            if arrived:
                raise ConfigError(f"local {action} already arrived")
            self.fabric.arrive_local(action, value)
            cores = tuple((v, True) if i == action else (v, a)
                          for i, (v, a) in enumerate(cores))
        return (self.fabric.snapshot(), cores, inj_left)

    def _check(self, deliveries: List[Tuple[int, int]],
               cores: tuple) -> None:
        pending = [i for i in range(self.n) if not cores[i][1]]
        for local, value in deliveries:
            if not cores[local][1]:
                raise _Violation(
                    P_COLL_ONCE,
                    f"local {local} delivered a result without having "
                    f"arrived")
            if pending:
                raise _Violation(
                    P_COLL_ONCE,
                    f"local {local} delivered while locals {pending} "
                    f"have not arrived (premature release)")
            if value != self.reference and not self.fabric.int_exhausted:
                # An exhausted episode is *detected*: the network layer
                # escalates (retry / failover) instead of delivering it,
                # so only an un-flagged wrong value is silent corruption.
                raise _Violation(
                    P_COLL_VALUE,
                    f"local {local} delivered {value}, reference "
                    f"{self.kind} over {self.values} is "
                    f"{self.reference}"
                    + (" (undetected: integrity not exhausted)"
                       if self.integrity != "off" else ""))

    # ------------------------------------------------------------------ #
    # Canonical symmetry reduction
    # ------------------------------------------------------------------ #
    def key(self, state: tuple) -> tuple:
        """Hashable canonical key identifying *state* up to symmetry.

        Same-row slave bundles, and whole row bundles below row 0, are
        interchangeable when their full (controller state, operand,
        delivery, wire-fault) tuples match, because the wires count
        transmitters without caring which one asserted; sorting those
        bundles makes symmetric states collide in the visited set.  The
        sort key is ``hash`` -- a hash tie between *unequal* bundles
        merely yields an unsorted canonical form (a missed merge, never
        a wrong one), while equal bundles always collide.  States stay
        un-permuted: counterexample paths keep true core labels.
        """
        if not self.symmetric:
            return state
        (rm, rs, cm, cs, kind, row_fed, col_done, gready, result,
         bc, skip, delivered, row_w, bw, stuck) = state[0]
        cores = state[1]
        inj_left = state[2]

        def row_bundle(r: int):
            base = r * self.cols
            slaves = tuple(sorted(
                ((rs[r][c - 1], cores[base + c], delivered[base + c])
                 for c in range(1, self.cols)), key=hash))
            lines = self._row_lines[r]
            wires = (stuck[lines[0]], stuck[lines[1]]) if lines else None
            colslave = cs[r - 1] if r > 0 and self.rows > 1 else None
            return (rm[r], cores[base], delivered[base], row_fed[r],
                    colslave, wires, slaves)

        head = row_bundle(0)
        tail = tuple(sorted((row_bundle(r) for r in range(1, self.rows)),
                            key=hash))
        col_wires = tuple(stuck[i] for i in self._col_lines)
        return (head, tail, cm, kind, col_done, gready, result, bc,
                skip, row_w, bw, col_wires, inj_left)


# ---------------------------------------------------------------------- #
# Exploration
# ---------------------------------------------------------------------- #
def explore_collective(model: CollectiveModel, *,
                       max_states: int = 500_000,
                       max_ticks: int = 0) -> CollectiveExploreResult:
    """BFS every arrival/tick interleaving of one episode.

    Once every core has arrived the fabric is deterministic, so those
    states are run straight to completion (the termination check) and
    never enqueued.
    """
    if not max_ticks:
        max_ticks = 32 * (model.rows + model.cols + model.width + 8)
    result = CollectiveExploreResult(
        kind=model.kind, rows=model.rows, cols=model.cols,
        width=model.width, mutation=model.mutation,
        integrity=model.integrity,
        adversary_budget=model.adversary_budget)
    init = model.initial()
    # canonical key -> (parent_key, action); states themselves ride the
    # queue un-permuted, so counterexamples keep true core labels.
    parents: Dict[tuple, Optional[Tuple[tuple, int]]] = {
        model.key(init): None}
    queue = [init]
    head = 0

    def path_to(key: tuple) -> List[int]:
        actions: List[int] = []
        while True:
            edge = parents[key]
            if edge is None:
                return list(reversed(actions))
            key, action = edge
            actions.append(action)

    def schedule_of(actions: List[int]) -> Tuple[
            List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
        cycle, sched, injections = 0, [], []
        for a in actions:
            if a == TICK:
                cycle += 1
            elif a <= INJ_BASE:
                injections.append((cycle,) + inj_decode(a))
                cycle += 1  # an injection rides a tick
            else:
                sched.append((cycle, a, model.values[a]))
        return sched, injections

    def fail(prop: str, message: str, actions: List[int]
             ) -> CollectiveExploreResult:
        ticks = sum(1 for a in actions if a == TICK or a <= INJ_BASE)
        sched, injections = schedule_of(actions)
        result.counterexample = CollectiveCounterexample(
            prop=prop, message=message, schedule=sched,
            at_tick=ticks, injections=injections)
        for p in COLLECTIVE_PROPERTIES:
            result.verdicts[p] = VIOLATED if p == prop else \
                result.verdicts.get(p, NOT_PROVED)
        return result

    def run_tail(state: tuple, actions: List[int]
                 ) -> Optional[CollectiveExploreResult]:
        """Deterministic completion run from an all-arrived state."""
        for _ in range(max_ticks):
            if model.is_complete(state):
                return None
            try:
                nxt = model.step(state, TICK)
            except _Violation as v:
                return fail(v.prop, v.message, actions + [TICK])
            actions = actions + [TICK]
            result.transitions += 1
            if nxt == state:
                return fail(
                    P_COLL_TERMINATION,
                    "fabric quiescent before completion (hang): "
                    "undelivered locals remain but no controller "
                    "will act", actions)
            state = nxt
        return fail(P_COLL_TERMINATION,
                    f"no completion within {max_ticks} ticks", actions)

    while head < len(queue):
        state = queue[head]
        head += 1
        skey = model.key(state)
        for action in model.actions(state):
            try:
                child = model.step(state, action)
            except _Violation as v:
                return fail(v.prop, v.message, path_to(skey) + [action])
            result.transitions += 1
            ckey = model.key(child)
            if ckey in parents:
                continue
            parents[ckey] = (skey, action)
            if model.all_arrived(child):
                # The injection-free suffix of this path is checked by a
                # deterministic tail run; re-run it only where the tail
                # actually changed (first all-arrived entry, or a fresh
                # injection) -- a pure-tick child's tail is a suffix of
                # its parent's, already verified.
                if child[2] == 0 or not model.all_arrived(state) \
                        or action <= INJ_BASE:
                    bad = run_tail(child, path_to(skey) + [action])
                    if bad is not None:
                        return bad
                if child[2] == 0 or model.is_complete(child):
                    continue  # no adversary branching left to explore
            if len(parents) >= max_states:
                result.capped = True
                result.states = len(parents)
                for p in COLLECTIVE_PROPERTIES:
                    result.verdicts[p] = NOT_PROVED
                return result
            queue.append(child)

    result.states = len(parents)
    for p in COLLECTIVE_PROPERTIES:
        result.verdicts[p] = PROVED
    return result


# ---------------------------------------------------------------------- #
# Conformance replay on the real simulator
# ---------------------------------------------------------------------- #
@dataclass
class CollectiveReplayResult:
    """What an engine-backed network did under a concrete schedule."""

    kind: str
    reference: int
    deliveries: Dict[int, Tuple[int, int]]   # core -> (cycle, value)
    double_delivered: List[int]
    hung: List[int]

    @property
    def wrong_values(self) -> Dict[int, int]:
        return {c: v for c, (_t, v) in self.deliveries.items()
                if v != self.reference}

    @property
    def confirmed(self) -> bool:
        """True when the replay reproduces *some* property violation."""
        return bool(self.wrong_values or self.double_delivered
                    or self.hung)

    def summary(self) -> str:
        if not self.confirmed:
            return (f"replay clean: all cores delivered "
                    f"{self.reference}")
        parts = []
        if self.wrong_values:
            parts.append(f"wrong values {self.wrong_values} "
                         f"(reference {self.reference})")
        if self.double_delivered:
            parts.append(f"double delivery to {self.double_delivered}")
        if self.hung:
            parts.append(f"cores {self.hung} never delivered")
        return "replay CONFIRMED: " + "; ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "reference": self.reference,
                "deliveries": {c: list(tv)
                               for c, tv in self.deliveries.items()},
                "double_delivered": list(self.double_delivered),
                "hung": list(self.hung), "confirmed": self.confirmed}


def replay_collective(rows: int, cols: int, kind: str,
                      schedule: Sequence[Tuple[int, int, int]], *,
                      width: int = 1, mutation: Optional[str] = None,
                      stuck: Optional[Dict[str, int]] = None,
                      integrity: str = "off", integrity_budget: int = 3,
                      injections: Sequence[Tuple[int, int, int]] = (),
                      max_cycles: int = 4096) -> CollectiveReplayResult:
    """Drive a real :class:`CollectiveNetwork` with a model schedule.

    ``barreg_write_cycles=0`` makes an arrival scheduled at cycle *t*
    visible to that same cycle's fabric tick, so model tick *i* and
    engine cycle *i* coincide.  ``injections`` replays the adversary's
    miscounts: each ``(cycle, master, delta)`` perturbs that master's
    counting line on the matching fabric tick (ticks counted from the
    first, exactly the model's cycle numbering).  The network is
    unhardened: the point is to confirm the raw violation, not to watch
    the watchdog mask it.
    """
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    gl = GLineConfig(barreg_write_cycles=0)
    cc = CollectiveConfig(enabled=True, value_width=width,
                          integrity=integrity,
                          integrity_retry_budget=integrity_budget)
    net = CollectiveNetwork(engine, stats, rows, cols, gl, cc,
                            mutation=mutation)
    for suffix, level in (stuck or {}).items():
        for line in net.lines:
            if line.name.endswith(suffix):
                line.stuck = level
    if injections:
        targets = [m for m in net.fabric._all_masters()
                   if m.tx is not None]
        by_tick: Dict[int, List[Tuple[int, int]]] = {}
        for cyc, master, delta in injections:
            by_tick.setdefault(cyc, []).append((master, delta))
        tick_no = [0]

        def adversary(lines) -> None:
            for master, delta in by_tick.get(tick_no[0], ()):
                targets[master].tx.count_delta = delta
            tick_no[0] += 1
        net.fabric.perturb_hook = adversary

    deliveries: Dict[int, Tuple[int, int]] = {}
    double: List[int] = []

    def make_resume(cid: int):
        def resume(value: object = None) -> None:
            if cid in deliveries:
                double.append(cid)
            # FAILOVER bounces ride through as-is (counted as a wrong
            # value by the caller's checks, which is what they are from
            # the schedule's point of view).
            deliveries[cid] = (
                engine.now,
                int(value) if isinstance(value, int) else value,
            )  # type: ignore[assignment]
        return resume

    values = [0] * (rows * cols)
    for cycle, local, value in schedule:
        values[local] = value
        engine.schedule_at(cycle, net.arrive, local, kind, value,
                           make_resume(local))
    engine.run(until=max_cycles)
    reference = ops.reference_reduce(kind, values, width)
    hung = [c for c in range(rows * cols) if c not in deliveries]
    return CollectiveReplayResult(kind=kind, reference=reference,
                                  deliveries=deliveries,
                                  double_delivered=double, hung=hung)
