"""Model extraction: the G-line barrier as a finite transition system.

This module reduces the four controller FSMs of
:mod:`repro.gline.controllers`, the wire/S-CSMA semantics of
:mod:`repro.gline.gline` and the watchdog/failover machinery of
:mod:`repro.gline.network` to a compact, hashable state -- a ``bytes``
string of small registers -- plus one deterministic *tick* per step.  The
explorer (:mod:`repro.verify.explore`) enumerates every arrival
interleaving on top of it; the conformance bridge
(:mod:`repro.verify.conformance`) replays any path cycle-for-cycle on the
real event-driven simulator.

State layout (all single bytes)::

    per row r (R blocks):   Scnt Mcnt flag rel_trig  Ma Mr Mcd sv_sent
                            then per horizontal slave: a r signaling cd
    MasterV block:          Scnt Mcnt done validating
    tail:                   since_all wd retries quarantined
                            row_validated episodes_done
                            recovery_state probe_timer probation_left
                            flaps probe_fails glitch_armed degraded_ever

``a``/``r`` (``Ma``/``Mr`` for the row master) count a core's barrier
*arrivals* and *releases*; ``bar_reg`` is set exactly when ``a == r + 1``,
so it needs no byte of its own.  ``cd`` is a one-step cooldown after a
release mirroring the >= 1-cycle gap (``barreg_write_cycles``) before a
re-arrival can become visible.  ``since_all`` counts ticks since every
core of the in-flight episode arrived -- the register behind the paper's
4-cycle completion theorem.  ``wd`` is the armed watchdog's remaining
ticks (0 = idle).

One model step = deliver a chosen set of arrivals (the environment
action), run the watchdog bookkeeping, then execute one network tick with
the exact sub-phase ordering of ``GLineBarrierNetwork._tick``: assert
(MasterH, SlaveH, SlaveV, MasterV last), fault injection, the hardened
release-line guard, sample (MasterV first, then MasterH, SlaveV, SlaveH),
the single-row degenerate release, release completion, fault handling.
Cycle-accuracy is exact along fault-free paths; under fault scenarios the
model collapses the network's dormant cycles and is therefore
behavior-equivalent rather than cycle-identical (see
``docs/verification.md``).

Recovery scenarios (``scenario.recovery``) extend the tail with the
probe/probation FSM of :mod:`repro.gline.recovery`: ``recovery_state``
is HEALTHY/DEGRADED/PROBATION/RETIRED (the transient PROBING episode is
folded into the instant the probe timer expires -- the model is
behavior-equivalent, not cycle-identical, under faults anyway), the
probe timer abstracts the exponential backoff to the constant
``probe_backoff``, and re-admission is deferred to an episode boundary
exactly as the sticky software cohort in
:class:`~repro.gline.barrier.GLBarrier` defers it on the real chip.  A
scenario's one-shot ``glitch`` is an extra environment action: the
explorer fires it at every possible step, forcing the damaged TX wire
high for one cycle so the S-CSMA count lands exactly on the gather
target with a core missing.

Symmetry reduction: horizontal slaves within a row are interchangeable
(their blocks are kept sorted), as are entire rows 1..R-1 (row 0 hosts
MasterV and is special) unless the scenario damages a specific row >= 1.
Canonical states shrink the reachable space by roughly the product of the
per-row factorials while preserving all checked properties, which are
permutation-invariant.
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .scenarios import FAULT_FREE, FaultScenario, Mutation, get_mutation

# Row-block register offsets.
SC, MC, FL, RT, MA, MR, MCD, SVS = range(8)
ROW_FIXED = 8
#: Per-slave sub-block: arrivals, releases, signaling, cooldown.
SL_A, SL_R, SL_SIG, SL_CD = range(4)
SLAVE = 4
#: MasterV block offsets (relative to ``mv_off``).
V_SC, V_MC, V_DONE, V_VAL = range(4)
MV = 4
#: Tail offsets (relative to ``tail_off``).  The recovery bytes stay 0
#: for non-recovery scenarios, so canonical state counts are unchanged.
(T_SA, T_WD, T_RET, T_Q, T_RV, T_EPS,
 T_RST, T_PRT, T_PBL, T_FLP, T_PRF, T_GL, T_DEG) = range(13)
TAIL = 13

#: ``T_RST`` recovery-state encoding.
R_HEALTHY, R_DEGRADED, R_PROBATION, R_RETIRED = range(4)

#: The one-shot glitch marker appended to an action tuple.
GLITCH = "glitch"

#: Properties the model can report violated.
P_SAFETY = "safety"
P_EXACTLY_ONCE = "exactly-once"
P_DEADLOCK = "deadlock-freedom"
P_FOUR_CYCLE = "four-cycle"
#: Recovery-only properties (reported only when ``scenario.recovery``).
#: Bounded recovery: a degraded network always has a probe pending, so
#: it re-admits or retires within ``max_probes * probe_backoff`` steps
#: of the wires healing.  Flap bound: failed re-admissions never exceed
#: ``max_flaps`` before the permanent quarantine engages.
P_RECOVERY = "bounded-recovery"
P_FLAP = "flap-bound"

#: Cap on ``since_all`` so fault scenarios (which legitimately exceed the
#: completion bound while the watchdog counts down) keep the byte finite.
_SA_CAP = 250

#: One row's worth of an action: (master_arrives, ((slave_block, n), ...)).
RowAction = Tuple[int, Tuple[Tuple[bytes, int], ...]]
Action = Tuple[RowAction, ...]


class PropertyViolation(Exception):
    """Raised by :meth:`GLBarrierModel.step` when a transition breaks a
    checked property; the explorer turns it into a counterexample."""

    def __init__(self, prop: str, message: str):
        super().__init__(f"{prop}: {message}")
        self.prop = prop
        self.message = message


class GLBarrierModel:
    """The G-line barrier network of one mesh as a transition system.

    :param rows: mesh rows (1..7, the S-CSMA electrical limit).
    :param cols: mesh columns (1..7).
    :param scenario: static fault + hardening configuration.
    :param mutation: name of a deliberate FSM bug from
        :data:`~repro.verify.scenarios.MUTATIONS`, or ``None``.
    :param episodes: barrier episodes each core must complete.
    :param symmetric: canonicalize states (slave/row sorting).  Disable
        to track concrete core identities (counterexample replay).
    """

    def __init__(self, rows: int, cols: int, *,
                 scenario: FaultScenario = FAULT_FREE,
                 mutation: Optional[str] = None,
                 episodes: int = 1,
                 symmetric: bool = True):
        if not (1 <= rows <= 7 and 1 <= cols <= 7):
            raise ValueError(f"mesh {rows}x{cols} outside the 7x7 S-CSMA "
                             f"limit of one G-line network")
        if rows * cols < 2:
            raise ValueError("a 1x1 mesh has no barrier to check")
        if not 1 <= episodes <= 16:
            raise ValueError(f"episodes must be 1..16, got {episodes}")
        reason = scenario.applicable(rows, cols)
        if reason is not None:
            raise ValueError(f"scenario {scenario.name!r}: {reason}")
        self.rows = rows
        self.cols = cols
        self.scenario = scenario
        self.episodes = episodes
        self.symmetric = symmetric
        self.mutation: Optional[Mutation] = \
            get_mutation(mutation) if mutation is not None else None
        if self.mutation is not None:
            reason = self.mutation.applicable(rows, cols)
            if reason is not None:
                raise ValueError(
                    f"mutation {self.mutation.name!r}: {reason}")
            if self.mutation.target == "shadow" and not scenario.recovery:
                raise ValueError(
                    f"mutation {self.mutation.name!r} needs a recovery "
                    f"scenario (it disables probation's shadow check)")

        self.num_cores = rows * cols
        self.num_slaves_h = cols - 1
        self.num_slaves_v = rows - 1
        self.hardened = scenario.hardened
        self.budget = scenario.watchdog_budget
        self.max_retries = scenario.watchdog_retries

        # Gather thresholds; a mutation shaves one off exactly as
        # ``Mutation.apply_to_network`` shaves the real ``num_slaves``.
        self.mh_target = self.num_slaves_h
        self.mv_target = self.num_slaves_v
        if self.mutation is not None:
            if self.mutation.target == "mh":
                self.mh_target -= 1
            elif self.mutation.target == "mv":
                self.mv_target -= 1
        #: Scnt caps: one past the overshoot threshold is behaviorally
        #: absorbing (``== target`` stays false, ``> target`` stays true).
        self.mh_cap = self.mh_target + 1
        self.mv_cap = self.mv_target + 1

        # Recovery FSM parameters (see repro.gline.recovery).
        self.recovery = scenario.recovery
        self.probation_barriers = scenario.probation_barriers
        self.max_flaps = scenario.max_flaps
        self.probe_backoff = scenario.probe_backoff
        self.max_probes = scenario.max_probes
        self.heal = scenario.heal
        self.glitch_armed = scenario.glitch_role is not None
        self.glitch_row = scenario.glitch_row
        #: The planted bug: probation runs without the shadow check.
        self.shadow_mutated = (self.mutation is not None
                               and self.mutation.target == "shadow")

        # State layout.
        self.row_size = ROW_FIXED + SLAVE * self.num_slaves_h
        self.mv_off = rows * self.row_size
        self.tail_off = self.mv_off + MV
        self.size = self.tail_off + TAIL

        # Static per-wire faults: role -> (stuck | None, count_delta).
        self._fault: Dict[Tuple[str, int], Tuple[Optional[int], int]] = {}
        if scenario.role is not None:
            row = scenario.row if scenario.role.startswith("row_") else 0
            self._fault[(scenario.role, row)] = (scenario.stuck,
                                                 scenario.count_delta)

        #: Row symmetry is sound unless the scenario pins a fault (or the
        #: one-shot glitch) to a specific row >= 1 (row 0 is never sorted).
        self.sort_rows = symmetric and rows > 2 and not (
            scenario.role in ("row_tx", "row_rel")
            and scenario.row >= 1) and not (
            scenario.glitch_role is not None and scenario.glitch_row >= 1)

        #: The 4-cycle theorem is asserted only on healthy wires; the
        #: hardened validation stage legitimately costs one extra cycle,
        #: and recovery scenarios route episodes through software.
        self.check_four_cycle = scenario.is_fault_free \
            and not scenario.recovery
        if rows == 1:
            self.completion_bound = 2 + (1 if self.hardened else 0)
        else:
            self.completion_bound = 4 + (1 if self.hardened else 0)

        #: Largest completion latency observed by any :meth:`step` of this
        #: instance (ticks from all-arrived to release).
        self.max_completion_ticks = 0

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Dict[str, object]:
        """Content identity of this model (shard cache keys)."""
        return {"kind": "gl-barrier-model",
                "rows": self.rows, "cols": self.cols,
                "scenario": self.scenario.to_dict(),
                "mutation": (self.mutation.name
                             if self.mutation is not None else None),
                "episodes": self.episodes,
                "symmetric": self.symmetric}

    # ------------------------------------------------------------------ #
    # State helpers
    # ------------------------------------------------------------------ #
    def initial(self) -> bytes:
        s = bytearray(self.size)
        for r in range(self.rows):
            base = r * self.row_size + ROW_FIXED
            for i in range(self.num_slaves_h):
                s[base + i * SLAVE + SL_SIG] = 1
        t = self.tail_off
        if self.recovery and self.scenario.start == "probation":
            s[t + T_RST] = R_PROBATION
            s[t + T_PBL] = self.probation_barriers
        if self.glitch_armed:
            s[t + T_GL] = 1
        return bytes(self._canon(s))

    def _canon(self, s: bytearray) -> bytearray:
        if not self.symmetric:
            return s
        for r in range(self.rows):
            base = r * self.row_size + ROW_FIXED
            blocks = sorted(bytes(s[base + i * SLAVE:
                                    base + (i + 1) * SLAVE])
                            for i in range(self.num_slaves_h))
            for i, blk in enumerate(blocks):
                s[base + i * SLAVE: base + (i + 1) * SLAVE] = blk
        if self.sort_rows:
            rows = sorted(bytes(s[r * self.row_size:
                                  (r + 1) * self.row_size])
                          for r in range(1, self.rows))
            for k, blk in enumerate(rows):
                base = (1 + k) * self.row_size
                s[base: base + self.row_size] = blk
        return s

    def _core_regs(self, s: Sequence[int]) -> List[Tuple[int, int]]:
        """(arrivals, releases) of every core, masters then slaves."""
        out = []
        for r in range(self.rows):
            base = r * self.row_size
            out.append((s[base + MA], s[base + MR]))
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                out.append((s[off + SL_A], s[off + SL_R]))
        return out

    def _all_waiting(self, s: Sequence[int]) -> bool:
        return all(a == r + 1 for a, r in self._core_regs(s))

    def _any_waiting(self, s: Sequence[int]) -> bool:
        return any(a == r + 1 for a, r in self._core_regs(s))

    def _waiting_count(self, s: Sequence[int]) -> int:
        return sum(a == r + 1 for a, r in self._core_regs(s))

    def is_complete(self, s: Sequence[int]) -> bool:
        """All episodes done and every core released from the last one."""
        return s[self.tail_off + T_EPS] == self.episodes

    # ------------------------------------------------------------------ #
    # Environment actions
    # ------------------------------------------------------------------ #
    def _eligible(self, a: int, r: int, cd: int) -> bool:
        return a == r and a < self.episodes and cd == 0

    def actions(self, state: bytes) -> List[Action]:
        """All arrival choices from *state*, in deterministic order.

        Index 0 is always the empty (pure-tick) action; the last index
        delivers every eligible arrival at once.  Within a row, eligible
        slaves are grouped by their (identical) register block and the
        action picks a *count* per group -- the symmetry-reduced form of
        choosing subsets.
        """
        per_row: List[List[RowAction]] = []
        for r in range(self.rows):
            base = r * self.row_size
            m_elig = self._eligible(state[base + MA], state[base + MR],
                                    state[base + MCD])
            classes: Counter[bytes] = Counter()
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if self._eligible(state[off + SL_A], state[off + SL_R],
                                  state[off + SL_CD]):
                    classes[state[off: off + SLAVE]] += 1
            items = list(classes.items())
            ranges = [range(n + 1) for _, n in items]
            opts: List[RowAction] = []
            for m in ((0, 1) if m_elig else (0,)):
                for counts in product(*ranges):
                    opts.append((m, tuple(
                        (blk, c) for (blk, _), c in zip(items, counts)
                        if c)))
            per_row.append(opts)
        acts = [tuple(combo) for combo in product(*per_row)]
        if state[self.tail_off + T_GL]:
            # The one-shot glitch may fire alongside any arrival choice;
            # un-glitched variants come first so the last action stays
            # the maximal one (arrivals + glitch = ``max_action``).
            acts = acts + [a + (GLITCH,) for a in acts]
        return acts

    def max_action(self, state: bytes) -> Action:
        """The action delivering every eligible arrival (equals the last
        entry of :meth:`actions`, built without full enumeration)."""
        out: List[RowAction] = []
        for r in range(self.rows):
            base = r * self.row_size
            m = 1 if self._eligible(state[base + MA], state[base + MR],
                                    state[base + MCD]) else 0
            classes: Counter[bytes] = Counter()
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if self._eligible(state[off + SL_A], state[off + SL_R],
                                  state[off + SL_CD]):
                    classes[state[off: off + SLAVE]] += 1
            out.append((m, tuple(classes.items())))
        act = tuple(out)
        if state[self.tail_off + T_GL]:
            act = act + (GLITCH,)
        return act

    # ------------------------------------------------------------------ #
    # One transition
    # ------------------------------------------------------------------ #
    def step(self, state: bytes, action: Action) -> bytes:
        """Apply *action*'s arrivals, then run one network tick.

        Raises :class:`PropertyViolation` when the transition breaks
        safety, exactly-once delivery or the completion bound.
        """
        glitch = len(action) > 0 and action[-1] == GLITCH
        if glitch:
            if not state[self.tail_off + T_GL]:
                raise ValueError("glitch fired but not armed")
            action = action[:-1]
        s = bytearray(state)
        self._apply_arrivals(s, action)
        if glitch:
            s[self.tail_off + T_GL] = 0
        return bytes(self._canon(self._advance(s, glitch)))

    def step_cores(self, state: bytes, cores: Iterable[int],
                   glitch: bool = False) -> bytes:
        """Concrete-identity variant: arrivals named by mesh core id
        (``row * cols + col``).  Used with ``symmetric=False`` for
        counterexample replay and trace lifting."""
        if glitch and not state[self.tail_off + T_GL]:
            raise ValueError("glitch fired but not armed")
        s = bytearray(state)
        for cid in sorted(set(cores)):
            r, c = divmod(cid, self.cols)
            if not 0 <= r < self.rows:
                raise ValueError(f"core {cid} outside the mesh")
            base = r * self.row_size
            off = base + MA if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_A
            cd = base + MCD if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_CD
            rel = base + MR if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_R
            if not self._eligible(s[off], s[rel], s[cd]):
                raise ValueError(f"core {cid} is not eligible to arrive")
            s[off] += 1
        self._post_arrival(s)
        if glitch:
            s[self.tail_off + T_GL] = 0
        return bytes(self._canon(self._advance(s, glitch)))

    # -- arrival phase ------------------------------------------------- #
    def _apply_arrivals(self, s: bytearray, action: Action) -> None:
        if len(action) != self.rows:
            raise ValueError("action must have one entry per row")
        for r, (m_arr, slave_choices) in enumerate(action):
            base = r * self.row_size
            if m_arr:
                s[base + MA] += 1
            sb = base + ROW_FIXED
            for blk, count in slave_choices:
                remaining = count
                for i in range(self.num_slaves_h):
                    if remaining == 0:
                        break
                    off = sb + i * SLAVE
                    if s[off: off + SLAVE] == blk \
                            and s[off + SL_A] == s[off + SL_R]:
                        s[off + SL_A] += 1
                        remaining -= 1
                if remaining:
                    raise ValueError(
                        f"action asks for {count} slaves of class "
                        f"{blk.hex()} in row {r}; not that many eligible")
        self._post_arrival(s)

    def _post_arrival(self, s: bytearray) -> None:
        """Arm the all-arrived watchdog exactly when the arrival that set
        the last bar_reg lands (``_set_barreg`` in the real network)."""
        t = self.tail_off
        if self.hardened and not s[t + T_Q] and s[t + T_WD] == 0 \
                and self._all_waiting(s):
            # +1 compensates the same-step decrement in _advance: the
            # timer fires pre-tick ``budget`` ticks after arming.
            s[t + T_WD] = self.budget + 1

    # -- watchdog + tick ------------------------------------------------ #
    def _advance(self, s: bytearray, glitch: bool = False) -> bytearray:
        t = self.tail_off
        if s[t + T_WD]:
            s[t + T_WD] -= 1
            if s[t + T_WD] == 0:
                # Timer expiry (network dormant in every scenario that
                # reaches it): handle the fault instead of ticking, and
                # resume clocking next step -- the real retry schedules
                # its first tick one line-latency later.
                if not s[t + T_Q] and self._any_waiting(s):
                    self._handle_fault(s)
                    self._end_of_step(s, [])
                    return s
        if self.recovery and s[t + T_RST] == R_DEGRADED and s[t + T_PRT]:
            s[t + T_PRT] -= 1
            if s[t + T_PRT] == 0:
                self._probe(s)
        if s[t + T_Q]:
            self._sw_tick(s)
        else:
            self._hw_tick(s, glitch)
        return s

    # -- recovery FSM (repro.gline.recovery, folded to tick granularity) #
    def _fault_active(self, s: Sequence[int]) -> bool:
        """Whether the scenario's static fault perturbs the wires now.

        The heal modes make the fault deterministically intermittent:
        ``after-degrade`` ends the burst at the first failover,
        ``off-degraded`` is a load-correlated fault invisible to idle
        probes (active except while degraded)."""
        if not self._fault:
            return False
        if not self.recovery or self.heal == "never":
            return True
        t = self.tail_off
        if self.heal == "after-degrade":
            return not s[t + T_DEG]
        return s[t + T_RST] != R_DEGRADED

    def _probe(self, s: bytearray) -> None:
        """The probe timer expired: run the idle-cycle wire test.

        Passes exactly when the static fault is inactive (the real probe
        drives every line and checks level/count both ways; any live
        stuck-at or miscount trips it).  Re-admission waits for an
        episode boundary -- the sticky software cohort on the real chip
        keeps a mid-flight episode software either way."""
        t = self.tail_off
        if not self._fault_active(s):
            if self._any_waiting(s):
                s[t + T_PRT] = self.probe_backoff
                return
            s[t + T_RST] = R_PROBATION
            s[t + T_PBL] = self.probation_barriers
            s[t + T_PRF] = 0
            s[t + T_Q] = 0
            self._reset_fsm(s)
            return
        s[t + T_PRF] += 1
        if s[t + T_PRF] > self.max_probes:
            raise PropertyViolation(
                P_RECOVERY,
                f"{s[t + T_PRF]} failed probes exceed the "
                f"max_probes bound of {self.max_probes}")
        if s[t + T_PRF] >= self.max_probes:
            s[t + T_RST] = R_RETIRED
        else:
            s[t + T_PRT] = self.probe_backoff

    def _sw_tick(self, s: bytearray) -> None:
        """Quarantined network: episodes complete over the software
        fallback barrier, which releases everyone once all have arrived
        (its own correctness is covered by the schedule-permutation
        tests in ``tests/sync``)."""
        released: List[Tuple[int, int]] = []
        if self._all_waiting(s):
            for r in range(self.rows):
                released.append((r, -1))
                released.extend((r, i) for i in range(self.num_slaves_h))
        self._end_of_step(s, released)

    def _hw_tick(self, s: bytearray, glitch: bool = False) -> None:
        rows, nsh = self.rows, self.num_slaves_h
        t, mv = self.tail_off, self.mv_off
        released: List[Tuple[int, int]] = []  # (row, slave_i); -1=master

        # ---- assert phase: MasterH, SlaveH, SlaveV, MasterV ---------- #
        drove_h = [False] * rows
        row_rel_level = [False] * rows
        row_tx_count = [0] * rows
        col_tx_count = 0
        col_rel_level = False
        drove_v = False
        for r in range(rows):
            base = r * self.row_size
            if s[base + RT]:
                if nsh:
                    row_rel_level[r] = True
                    drove_h[r] = True
                s[base + SC] = s[base + MC] = 0
                s[base + FL] = s[base + RT] = 0
                if s[base + MA] == s[base + MR] + 1:
                    released.append((r, -1))
                # on_release wiring hooks.
                if r == 0 and rows > 1:
                    s[mv + V_SC] = s[mv + V_MC] = s[mv + V_DONE] = 0
                elif r >= 1:
                    s[base + SVS] = 0
        for r in range(rows):
            sb = r * self.row_size + ROW_FIXED
            for i in range(nsh):
                off = sb + i * SLAVE
                if s[off + SL_SIG] and s[off + SL_A] == s[off + SL_R] + 1:
                    row_tx_count[r] += 1
                    s[off + SL_SIG] = 0
        if rows > 1:
            for r in range(1, rows):
                base = r * self.row_size
                if not s[base + SVS] and s[base + FL]:
                    col_tx_count += 1
                    s[base + SVS] = 1
            if s[mv + V_DONE]:
                col_rel_level = True
                drove_v = True
                s[RT] = 1  # row-0 MasterH trigger, consumed next tick
                s[mv + V_SC] = s[mv + V_MC] = s[mv + V_DONE] = 0

        # ---- wire faults land between assert and sample -------------- #
        row_tx_eff = list(row_tx_count)
        col_tx_eff = col_tx_count
        if self._fault_active(s):
            for r in range(rows):
                stuck, delta = self._fault.get(("row_tx", r), (None, 0))
                if stuck is not None:
                    row_tx_eff[r] = nsh if stuck else 0
                elif delta:
                    row_tx_eff[r] = min(max(row_tx_count[r] + delta, 0),
                                        nsh)
                stuck, _ = self._fault.get(("row_rel", r), (None, 0))
                if stuck is not None:
                    row_rel_level[r] = bool(stuck)
            stuck, delta = self._fault.get(("col_tx", 0), (None, 0))
            if stuck is not None:
                col_tx_eff = self.num_slaves_v if stuck else 0
            elif delta:
                col_tx_eff = min(max(col_tx_count + delta, 0),
                                 self.num_slaves_v)
            stuck, _ = self._fault.get(("col_rel", 0), (None, 0))
            if stuck is not None:
                col_rel_level = bool(stuck)
        if glitch:
            # One-shot forced-high on the glitch row's TX wire: the
            # S-CSMA count reads the full attached-transmitter count.
            row_tx_eff[self.glitch_row] = nsh

        # ---- hardened spurious-release guard ------------------------- #
        spurious = False
        if self.hardened:
            for r in range(rows):
                if row_rel_level[r] and not drove_h[r]:
                    row_rel_level[r] = False
                    spurious = True
            if col_rel_level and not drove_v:
                col_rel_level = False
                spurious = True

        # ---- sample phase: MasterV first, then MasterH, SlaveV, SlaveH #
        # The release stage cleared the master's bar_reg during the
        # assert phase, but the model's MA/MR accounting only happens in
        # _end_of_step -- so the `MA == MR + 1` predicate is stale for
        # masters released this tick and must not re-latch Mcnt.
        rel_masters = {row for row, slave_i in released if slave_i < 0}
        suspected = False
        if rows > 1:
            s[mv + V_SC] = min(s[mv + V_SC] + col_tx_eff, self.mv_cap)
            if s[FL]:  # row-0 flag as latched before MasterH samples
                s[mv + V_MC] = 1
            if self.hardened and s[mv + V_SC] > self.mv_target:
                suspected = True
                s[mv + V_VAL] = 0
            elif not s[mv + V_DONE] and s[mv + V_MC] == 1 \
                    and s[mv + V_SC] == self.mv_target:
                if self.hardened and not s[mv + V_VAL]:
                    s[mv + V_VAL] = 1
                else:
                    s[mv + V_VAL] = 0
                    s[mv + V_DONE] = 1
        for r in range(rows):
            base = r * self.row_size
            if s[base + FL]:
                if self.hardened and nsh:
                    s[base + SC] = min(s[base + SC] + row_tx_eff[r],
                                       self.mh_cap)
                    if s[base + SC] > self.mh_target:
                        suspected = True
                continue
            if nsh:
                s[base + SC] = min(s[base + SC] + row_tx_eff[r],
                                   self.mh_cap)
            if r not in rel_masters and s[base + MA] == s[base + MR] + 1:
                s[base + MC] = 1
            if self.hardened and s[base + SC] > self.mh_target:
                suspected = True
                continue
            if s[base + MC] == 1 and s[base + SC] == self.mh_target:
                s[base + FL] = 1
        if rows > 1:
            for r in range(1, rows):
                base = r * self.row_size
                if s[base + SVS] and col_rel_level:
                    s[base + RT] = 1
        for r in range(rows):
            sb = r * self.row_size + ROW_FIXED
            for i in range(nsh):
                off = sb + i * SLAVE
                if not s[off + SL_SIG] and row_rel_level[r]:
                    s[off + SL_SIG] = 1
                    if s[off + SL_A] == s[off + SL_R] + 1:
                        released.append((r, i))

        # ---- degenerate single-row release --------------------------- #
        fault = self.hardened and (spurious or suspected)
        if not fault and rows == 1 and s[FL] and not s[RT]:
            if self.hardened and not s[t + T_RV]:
                s[t + T_RV] = 1
            else:
                s[RT] = 1

        # ---- hardened release atomicity ------------------------------ #
        # A legitimate release pulse covers every waiting core in one
        # step; a shortfall means a release line dropped the pulse for
        # part of the mesh (stuck low) while the masters -- who release
        # their own cores at drive time -- ran ahead.  The released
        # cores cannot be recalled, so the hardened network fails the
        # episode over as one software cohort (mirrors the simulator's
        # ``_complete_release`` partial-release guard).
        if self.hardened and released \
                and len(released) != self._waiting_count(s):
            self._failover(s)
            self._end_of_step(s, [])
            return

        # ---- probation shadow cross-check ---------------------------- #
        # A release that does not cover the full cohort means the wires
        # produced a count the software arrival shadow disagrees with:
        # withhold it and fail the episode over (a flap).  The planted
        # ``shadow`` mutation skips this, so the partial release reaches
        # the accounting below and safety is lost.
        if (self.recovery and s[t + T_RST] == R_PROBATION
                and not self.shadow_mutated and released
                and len(released) != self.num_cores):
            self._failover(s)
            self._end_of_step(s, [])
            return

        self._end_of_step(s, released)
        if fault and self._any_waiting(s):
            self._handle_fault(s)

    # -- fault handling -------------------------------------------------- #
    def _handle_fault(self, s: bytearray) -> None:
        t = self.tail_off
        if self.recovery and s[t + T_RST] == R_PROBATION:
            # Zero tolerance during probation: any watchdog suspicion
            # re-degrades immediately, no retry burn-down (a flap).
            self._failover(s)
            return
        if s[t + T_RET] < self.max_retries:
            s[t + T_RET] += 1
            self._reset_fsm(s)
            if self._all_waiting(s):
                s[t + T_WD] = self.budget  # fires `budget` steps later
        else:
            self._failover(s)

    def _reset_fsm(self, s: bytearray) -> None:
        for r in range(self.rows):
            base = r * self.row_size
            s[base + SC] = s[base + MC] = 0
            s[base + FL] = s[base + RT] = 0
            s[base + SVS] = 0
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                s[sb + i * SLAVE + SL_SIG] = 1
        m = self.mv_off
        s[m + V_SC] = s[m + V_MC] = s[m + V_DONE] = s[m + V_VAL] = 0
        s[self.tail_off + T_RV] = 0

    def _failover(self, s: bytearray) -> None:
        """Quarantine: waiting cores bounce to the software fallback and
        stay logically waiting until the software episode completes.

        With recovery, quarantine is DEGRADED (probe pending) instead of
        terminal; a probation failover is a *flap*, and the flap/probe
        bounds retire the network permanently (back to PR 2 semantics)."""
        t = self.tail_off
        if self.recovery and s[t + T_RST] != R_RETIRED:
            if s[t + T_RST] == R_PROBATION:
                s[t + T_FLP] += 1
                if s[t + T_FLP] > self.max_flaps:
                    raise PropertyViolation(
                        P_FLAP,
                        f"{s[t + T_FLP]} re-admission flaps exceed the "
                        f"max_flaps bound of {self.max_flaps}")
                if s[t + T_FLP] >= self.max_flaps:
                    s[t + T_RST] = R_RETIRED
                    s[t + T_PRT] = 0
                else:
                    s[t + T_RST] = R_DEGRADED
                    s[t + T_PRT] = self.probe_backoff
                    s[t + T_PRF] = 0
            else:
                s[t + T_RST] = R_DEGRADED
                s[t + T_PRT] = self.probe_backoff
                s[t + T_PRF] = 0
            s[t + T_PBL] = 0
            s[t + T_DEG] = 1
        s[t + T_Q] = 1
        s[t + T_WD] = 0
        s[t + T_RET] = 0
        self._reset_fsm(s)

    # -- release accounting / property checks ---------------------------- #
    def _end_of_step(self, s: bytearray,
                     released: List[Tuple[int, int]]) -> None:
        t = self.tail_off
        regs = self._core_regs(s)
        min_arrived = min(a for a, _ in regs)
        for row, slave_i in released:
            base = row * self.row_size
            off_a = base + MA if slave_i < 0 \
                else base + ROW_FIXED + slave_i * SLAVE + SL_A
            off_r = off_a + (MR - MA if slave_i < 0 else SL_R - SL_A)
            new_r = s[off_r] + 1
            if new_r > s[off_a]:
                raise PropertyViolation(
                    P_EXACTLY_ONCE,
                    f"core at row {row}, slot {slave_i} delivered a "
                    f"release for episode {new_r} it never arrived at")
            if min_arrived < new_r:
                raise PropertyViolation(
                    P_SAFETY,
                    f"core at row {row}, slot {slave_i} released from "
                    f"episode {new_r} while other cores are still "
                    f"missing (min arrivals {min_arrived})")
            s[off_r] = new_r

        # Cooldowns: a released core's re-arrival is visible no earlier
        # than two steps later (write latency), matching barreg timing.
        released_set = set(released)
        for r in range(self.rows):
            base = r * self.row_size
            if (r, -1) in released_set:
                s[base + MCD] = 1
            elif s[base + MCD]:
                s[base + MCD] = 0
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if (r, i) in released_set:
                    s[off + SL_CD] = 1
                elif s[off + SL_CD]:
                    s[off + SL_CD] = 0

        # Episode completion + the 4-cycle theorem.
        regs = self._core_regs(s)
        min_released = min(r for _, r in regs)
        if min_released > s[t + T_EPS]:
            if self.check_four_cycle and not s[t + T_Q]:
                ticks = s[t + T_SA] + 1
                self.max_completion_ticks = max(
                    self.max_completion_ticks, ticks)
                if ticks > self.completion_bound:
                    raise PropertyViolation(
                        P_FOUR_CYCLE,
                        f"episode completed {ticks} ticks after the last "
                        f"arrival (bound {self.completion_bound})")
            if self.recovery and not s[t + T_Q] \
                    and s[t + T_RST] == R_PROBATION and s[t + T_PBL]:
                s[t + T_PBL] -= 1
                if s[t + T_PBL] == 0:
                    s[t + T_RST] = R_HEALTHY
            s[t + T_EPS] = min_released
            s[t + T_SA] = 0
            s[t + T_WD] = 0
            s[t + T_RET] = 0
            s[t + T_RV] = 0
        elif not s[t + T_Q]:
            k = s[t + T_EPS] + 1
            if k <= self.episodes and all(a >= k for a, _ in regs):
                ticks = min(s[t + T_SA] + 1, _SA_CAP)
                if self.check_four_cycle \
                        and ticks > self.completion_bound:
                    raise PropertyViolation(
                        P_FOUR_CYCLE,
                        f"all cores arrived {ticks} ticks ago and episode "
                        f"{k} has still not completed "
                        f"(bound {self.completion_bound})")
                s[t + T_SA] = ticks
            else:
                s[t + T_SA] = 0
        else:
            s[t + T_SA] = 0

        # Bounded recovery: while degraded (and not retired) a probe is
        # always pending, so re-admission or retirement happens within
        # max_probes * probe_backoff ticks of any failover.
        if self.recovery and s[t + T_RST] == R_DEGRADED \
                and s[t + T_PRT] == 0:
            raise PropertyViolation(
                P_RECOVERY,
                "network degraded with no probe pending: recovery would "
                "never complete")
