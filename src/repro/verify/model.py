"""Model extraction: the G-line barrier as a finite transition system.

This module reduces the four controller FSMs of
:mod:`repro.gline.controllers`, the wire/S-CSMA semantics of
:mod:`repro.gline.gline` and the watchdog/failover machinery of
:mod:`repro.gline.network` to a compact, hashable state -- a ``bytes``
string of small registers -- plus one deterministic *tick* per step.  The
explorer (:mod:`repro.verify.explore`) enumerates every arrival
interleaving on top of it; the conformance bridge
(:mod:`repro.verify.conformance`) replays any path cycle-for-cycle on the
real event-driven simulator.

State layout (all single bytes)::

    per row r (R blocks):   Scnt Mcnt flag rel_trig  Ma Mr Mcd sv_sent
                            then per horizontal slave: a r signaling cd
    MasterV block:          Scnt Mcnt done validating
    tail:                   since_all wd retries quarantined
                            row_validated episodes_done

``a``/``r`` (``Ma``/``Mr`` for the row master) count a core's barrier
*arrivals* and *releases*; ``bar_reg`` is set exactly when ``a == r + 1``,
so it needs no byte of its own.  ``cd`` is a one-step cooldown after a
release mirroring the >= 1-cycle gap (``barreg_write_cycles``) before a
re-arrival can become visible.  ``since_all`` counts ticks since every
core of the in-flight episode arrived -- the register behind the paper's
4-cycle completion theorem.  ``wd`` is the armed watchdog's remaining
ticks (0 = idle).

One model step = deliver a chosen set of arrivals (the environment
action), run the watchdog bookkeeping, then execute one network tick with
the exact sub-phase ordering of ``GLineBarrierNetwork._tick``: assert
(MasterH, SlaveH, SlaveV, MasterV last), fault injection, the hardened
release-line guard, sample (MasterV first, then MasterH, SlaveV, SlaveH),
the single-row degenerate release, release completion, fault handling.
Cycle-accuracy is exact along fault-free paths; under fault scenarios the
model collapses the network's dormant cycles and is therefore
behavior-equivalent rather than cycle-identical (see
``docs/verification.md``).

Symmetry reduction: horizontal slaves within a row are interchangeable
(their blocks are kept sorted), as are entire rows 1..R-1 (row 0 hosts
MasterV and is special) unless the scenario damages a specific row >= 1.
Canonical states shrink the reachable space by roughly the product of the
per-row factorials while preserving all checked properties, which are
permutation-invariant.
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .scenarios import FAULT_FREE, FaultScenario, Mutation, get_mutation

# Row-block register offsets.
SC, MC, FL, RT, MA, MR, MCD, SVS = range(8)
ROW_FIXED = 8
#: Per-slave sub-block: arrivals, releases, signaling, cooldown.
SL_A, SL_R, SL_SIG, SL_CD = range(4)
SLAVE = 4
#: MasterV block offsets (relative to ``mv_off``).
V_SC, V_MC, V_DONE, V_VAL = range(4)
MV = 4
#: Tail offsets (relative to ``tail_off``).
T_SA, T_WD, T_RET, T_Q, T_RV, T_EPS = range(6)
TAIL = 6

#: Properties the model can report violated.
P_SAFETY = "safety"
P_EXACTLY_ONCE = "exactly-once"
P_DEADLOCK = "deadlock-freedom"
P_FOUR_CYCLE = "four-cycle"

#: Cap on ``since_all`` so fault scenarios (which legitimately exceed the
#: completion bound while the watchdog counts down) keep the byte finite.
_SA_CAP = 250

#: One row's worth of an action: (master_arrives, ((slave_block, n), ...)).
RowAction = Tuple[int, Tuple[Tuple[bytes, int], ...]]
Action = Tuple[RowAction, ...]


class PropertyViolation(Exception):
    """Raised by :meth:`GLBarrierModel.step` when a transition breaks a
    checked property; the explorer turns it into a counterexample."""

    def __init__(self, prop: str, message: str):
        super().__init__(f"{prop}: {message}")
        self.prop = prop
        self.message = message


class GLBarrierModel:
    """The G-line barrier network of one mesh as a transition system.

    :param rows: mesh rows (1..7, the S-CSMA electrical limit).
    :param cols: mesh columns (1..7).
    :param scenario: static fault + hardening configuration.
    :param mutation: name of a deliberate FSM bug from
        :data:`~repro.verify.scenarios.MUTATIONS`, or ``None``.
    :param episodes: barrier episodes each core must complete.
    :param symmetric: canonicalize states (slave/row sorting).  Disable
        to track concrete core identities (counterexample replay).
    """

    def __init__(self, rows: int, cols: int, *,
                 scenario: FaultScenario = FAULT_FREE,
                 mutation: Optional[str] = None,
                 episodes: int = 1,
                 symmetric: bool = True):
        if not (1 <= rows <= 7 and 1 <= cols <= 7):
            raise ValueError(f"mesh {rows}x{cols} outside the 7x7 S-CSMA "
                             f"limit of one G-line network")
        if rows * cols < 2:
            raise ValueError("a 1x1 mesh has no barrier to check")
        if not 1 <= episodes <= 16:
            raise ValueError(f"episodes must be 1..16, got {episodes}")
        reason = scenario.applicable(rows, cols)
        if reason is not None:
            raise ValueError(f"scenario {scenario.name!r}: {reason}")
        self.rows = rows
        self.cols = cols
        self.scenario = scenario
        self.episodes = episodes
        self.symmetric = symmetric
        self.mutation: Optional[Mutation] = \
            get_mutation(mutation) if mutation is not None else None
        if self.mutation is not None:
            reason = self.mutation.applicable(rows, cols)
            if reason is not None:
                raise ValueError(
                    f"mutation {self.mutation.name!r}: {reason}")

        self.num_cores = rows * cols
        self.num_slaves_h = cols - 1
        self.num_slaves_v = rows - 1
        self.hardened = scenario.hardened
        self.budget = scenario.watchdog_budget
        self.max_retries = scenario.watchdog_retries

        # Gather thresholds; a mutation shaves one off exactly as
        # ``Mutation.apply_to_network`` shaves the real ``num_slaves``.
        self.mh_target = self.num_slaves_h
        self.mv_target = self.num_slaves_v
        if self.mutation is not None:
            if self.mutation.target == "mh":
                self.mh_target -= 1
            else:
                self.mv_target -= 1
        #: Scnt caps: one past the overshoot threshold is behaviorally
        #: absorbing (``== target`` stays false, ``> target`` stays true).
        self.mh_cap = self.mh_target + 1
        self.mv_cap = self.mv_target + 1

        # State layout.
        self.row_size = ROW_FIXED + SLAVE * self.num_slaves_h
        self.mv_off = rows * self.row_size
        self.tail_off = self.mv_off + MV
        self.size = self.tail_off + TAIL

        # Static per-wire faults: role -> (stuck | None, count_delta).
        self._fault: Dict[Tuple[str, int], Tuple[Optional[int], int]] = {}
        if scenario.role is not None:
            row = scenario.row if scenario.role.startswith("row_") else 0
            self._fault[(scenario.role, row)] = (scenario.stuck,
                                                 scenario.count_delta)

        #: Row symmetry is sound unless the scenario pins a fault to a
        #: specific row >= 1 (row 0 is never sorted).
        self.sort_rows = symmetric and rows > 2 and not (
            scenario.role in ("row_tx", "row_rel") and scenario.row >= 1)

        #: The 4-cycle theorem is asserted only on healthy wires; the
        #: hardened validation stage legitimately costs one extra cycle.
        self.check_four_cycle = scenario.is_fault_free
        if rows == 1:
            self.completion_bound = 2 + (1 if self.hardened else 0)
        else:
            self.completion_bound = 4 + (1 if self.hardened else 0)

        #: Largest completion latency observed by any :meth:`step` of this
        #: instance (ticks from all-arrived to release).
        self.max_completion_ticks = 0

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Dict[str, object]:
        """Content identity of this model (shard cache keys)."""
        return {"kind": "gl-barrier-model",
                "rows": self.rows, "cols": self.cols,
                "scenario": self.scenario.to_dict(),
                "mutation": (self.mutation.name
                             if self.mutation is not None else None),
                "episodes": self.episodes,
                "symmetric": self.symmetric}

    # ------------------------------------------------------------------ #
    # State helpers
    # ------------------------------------------------------------------ #
    def initial(self) -> bytes:
        s = bytearray(self.size)
        for r in range(self.rows):
            base = r * self.row_size + ROW_FIXED
            for i in range(self.num_slaves_h):
                s[base + i * SLAVE + SL_SIG] = 1
        return bytes(self._canon(s))

    def _canon(self, s: bytearray) -> bytearray:
        if not self.symmetric:
            return s
        for r in range(self.rows):
            base = r * self.row_size + ROW_FIXED
            blocks = sorted(bytes(s[base + i * SLAVE:
                                    base + (i + 1) * SLAVE])
                            for i in range(self.num_slaves_h))
            for i, blk in enumerate(blocks):
                s[base + i * SLAVE: base + (i + 1) * SLAVE] = blk
        if self.sort_rows:
            rows = sorted(bytes(s[r * self.row_size:
                                  (r + 1) * self.row_size])
                          for r in range(1, self.rows))
            for k, blk in enumerate(rows):
                base = (1 + k) * self.row_size
                s[base: base + self.row_size] = blk
        return s

    def _core_regs(self, s: Sequence[int]) -> List[Tuple[int, int]]:
        """(arrivals, releases) of every core, masters then slaves."""
        out = []
        for r in range(self.rows):
            base = r * self.row_size
            out.append((s[base + MA], s[base + MR]))
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                out.append((s[off + SL_A], s[off + SL_R]))
        return out

    def _all_waiting(self, s: Sequence[int]) -> bool:
        return all(a == r + 1 for a, r in self._core_regs(s))

    def _any_waiting(self, s: Sequence[int]) -> bool:
        return any(a == r + 1 for a, r in self._core_regs(s))

    def is_complete(self, s: Sequence[int]) -> bool:
        """All episodes done and every core released from the last one."""
        return s[self.tail_off + T_EPS] == self.episodes

    # ------------------------------------------------------------------ #
    # Environment actions
    # ------------------------------------------------------------------ #
    def _eligible(self, a: int, r: int, cd: int) -> bool:
        return a == r and a < self.episodes and cd == 0

    def actions(self, state: bytes) -> List[Action]:
        """All arrival choices from *state*, in deterministic order.

        Index 0 is always the empty (pure-tick) action; the last index
        delivers every eligible arrival at once.  Within a row, eligible
        slaves are grouped by their (identical) register block and the
        action picks a *count* per group -- the symmetry-reduced form of
        choosing subsets.
        """
        per_row: List[List[RowAction]] = []
        for r in range(self.rows):
            base = r * self.row_size
            m_elig = self._eligible(state[base + MA], state[base + MR],
                                    state[base + MCD])
            classes: Counter[bytes] = Counter()
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if self._eligible(state[off + SL_A], state[off + SL_R],
                                  state[off + SL_CD]):
                    classes[state[off: off + SLAVE]] += 1
            items = list(classes.items())
            ranges = [range(n + 1) for _, n in items]
            opts: List[RowAction] = []
            for m in ((0, 1) if m_elig else (0,)):
                for counts in product(*ranges):
                    opts.append((m, tuple(
                        (blk, c) for (blk, _), c in zip(items, counts)
                        if c)))
            per_row.append(opts)
        return [tuple(combo) for combo in product(*per_row)]

    def max_action(self, state: bytes) -> Action:
        """The action delivering every eligible arrival (equals the last
        entry of :meth:`actions`, built without full enumeration)."""
        out: List[RowAction] = []
        for r in range(self.rows):
            base = r * self.row_size
            m = 1 if self._eligible(state[base + MA], state[base + MR],
                                    state[base + MCD]) else 0
            classes: Counter[bytes] = Counter()
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if self._eligible(state[off + SL_A], state[off + SL_R],
                                  state[off + SL_CD]):
                    classes[state[off: off + SLAVE]] += 1
            out.append((m, tuple(classes.items())))
        return tuple(out)

    # ------------------------------------------------------------------ #
    # One transition
    # ------------------------------------------------------------------ #
    def step(self, state: bytes, action: Action) -> bytes:
        """Apply *action*'s arrivals, then run one network tick.

        Raises :class:`PropertyViolation` when the transition breaks
        safety, exactly-once delivery or the completion bound.
        """
        s = bytearray(state)
        self._apply_arrivals(s, action)
        return bytes(self._canon(self._advance(s)))

    def step_cores(self, state: bytes, cores: Iterable[int]) -> bytes:
        """Concrete-identity variant: arrivals named by mesh core id
        (``row * cols + col``).  Used with ``symmetric=False`` for
        counterexample replay and trace lifting."""
        s = bytearray(state)
        for cid in sorted(set(cores)):
            r, c = divmod(cid, self.cols)
            if not 0 <= r < self.rows:
                raise ValueError(f"core {cid} outside the mesh")
            base = r * self.row_size
            off = base + MA if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_A
            cd = base + MCD if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_CD
            rel = base + MR if c == 0 \
                else base + ROW_FIXED + (c - 1) * SLAVE + SL_R
            if not self._eligible(s[off], s[rel], s[cd]):
                raise ValueError(f"core {cid} is not eligible to arrive")
            s[off] += 1
        self._post_arrival(s)
        return bytes(self._canon(self._advance(s)))

    # -- arrival phase ------------------------------------------------- #
    def _apply_arrivals(self, s: bytearray, action: Action) -> None:
        if len(action) != self.rows:
            raise ValueError("action must have one entry per row")
        for r, (m_arr, slave_choices) in enumerate(action):
            base = r * self.row_size
            if m_arr:
                s[base + MA] += 1
            sb = base + ROW_FIXED
            for blk, count in slave_choices:
                remaining = count
                for i in range(self.num_slaves_h):
                    if remaining == 0:
                        break
                    off = sb + i * SLAVE
                    if s[off: off + SLAVE] == blk \
                            and s[off + SL_A] == s[off + SL_R]:
                        s[off + SL_A] += 1
                        remaining -= 1
                if remaining:
                    raise ValueError(
                        f"action asks for {count} slaves of class "
                        f"{blk.hex()} in row {r}; not that many eligible")
        self._post_arrival(s)

    def _post_arrival(self, s: bytearray) -> None:
        """Arm the all-arrived watchdog exactly when the arrival that set
        the last bar_reg lands (``_set_barreg`` in the real network)."""
        t = self.tail_off
        if self.hardened and not s[t + T_Q] and s[t + T_WD] == 0 \
                and self._all_waiting(s):
            # +1 compensates the same-step decrement in _advance: the
            # timer fires pre-tick ``budget`` ticks after arming.
            s[t + T_WD] = self.budget + 1

    # -- watchdog + tick ------------------------------------------------ #
    def _advance(self, s: bytearray) -> bytearray:
        t = self.tail_off
        if s[t + T_WD]:
            s[t + T_WD] -= 1
            if s[t + T_WD] == 0:
                # Timer expiry (network dormant in every scenario that
                # reaches it): handle the fault instead of ticking, and
                # resume clocking next step -- the real retry schedules
                # its first tick one line-latency later.
                if not s[t + T_Q] and self._any_waiting(s):
                    self._handle_fault(s)
                    self._end_of_step(s, [])
                    return s
        if s[t + T_Q]:
            self._sw_tick(s)
        else:
            self._hw_tick(s)
        return s

    def _sw_tick(self, s: bytearray) -> None:
        """Quarantined network: episodes complete over the software
        fallback barrier, which releases everyone once all have arrived
        (its own correctness is covered by the schedule-permutation
        tests in ``tests/sync``)."""
        released: List[Tuple[int, int]] = []
        if self._all_waiting(s):
            for r in range(self.rows):
                released.append((r, -1))
                released.extend((r, i) for i in range(self.num_slaves_h))
        self._end_of_step(s, released)

    def _hw_tick(self, s: bytearray) -> None:
        rows, nsh = self.rows, self.num_slaves_h
        t, mv = self.tail_off, self.mv_off
        released: List[Tuple[int, int]] = []  # (row, slave_i); -1=master

        # ---- assert phase: MasterH, SlaveH, SlaveV, MasterV ---------- #
        drove_h = [False] * rows
        row_rel_level = [False] * rows
        row_tx_count = [0] * rows
        col_tx_count = 0
        col_rel_level = False
        drove_v = False
        for r in range(rows):
            base = r * self.row_size
            if s[base + RT]:
                if nsh:
                    row_rel_level[r] = True
                    drove_h[r] = True
                s[base + SC] = s[base + MC] = 0
                s[base + FL] = s[base + RT] = 0
                if s[base + MA] == s[base + MR] + 1:
                    released.append((r, -1))
                # on_release wiring hooks.
                if r == 0 and rows > 1:
                    s[mv + V_SC] = s[mv + V_MC] = s[mv + V_DONE] = 0
                elif r >= 1:
                    s[base + SVS] = 0
        for r in range(rows):
            sb = r * self.row_size + ROW_FIXED
            for i in range(nsh):
                off = sb + i * SLAVE
                if s[off + SL_SIG] and s[off + SL_A] == s[off + SL_R] + 1:
                    row_tx_count[r] += 1
                    s[off + SL_SIG] = 0
        if rows > 1:
            for r in range(1, rows):
                base = r * self.row_size
                if not s[base + SVS] and s[base + FL]:
                    col_tx_count += 1
                    s[base + SVS] = 1
            if s[mv + V_DONE]:
                col_rel_level = True
                drove_v = True
                s[RT] = 1  # row-0 MasterH trigger, consumed next tick
                s[mv + V_SC] = s[mv + V_MC] = s[mv + V_DONE] = 0

        # ---- wire faults land between assert and sample -------------- #
        row_tx_eff = list(row_tx_count)
        for r in range(rows):
            stuck, delta = self._fault.get(("row_tx", r), (None, 0))
            if stuck is not None:
                row_tx_eff[r] = nsh if stuck else 0
            elif delta:
                row_tx_eff[r] = min(max(row_tx_count[r] + delta, 0), nsh)
            stuck, _ = self._fault.get(("row_rel", r), (None, 0))
            if stuck is not None:
                row_rel_level[r] = bool(stuck)
        col_tx_eff = col_tx_count
        stuck, delta = self._fault.get(("col_tx", 0), (None, 0))
        if stuck is not None:
            col_tx_eff = self.num_slaves_v if stuck else 0
        elif delta:
            col_tx_eff = min(max(col_tx_count + delta, 0),
                             self.num_slaves_v)
        stuck, _ = self._fault.get(("col_rel", 0), (None, 0))
        if stuck is not None:
            col_rel_level = bool(stuck)

        # ---- hardened spurious-release guard ------------------------- #
        spurious = False
        if self.hardened:
            for r in range(rows):
                if row_rel_level[r] and not drove_h[r]:
                    row_rel_level[r] = False
                    spurious = True
            if col_rel_level and not drove_v:
                col_rel_level = False
                spurious = True

        # ---- sample phase: MasterV first, then MasterH, SlaveV, SlaveH #
        # The release stage cleared the master's bar_reg during the
        # assert phase, but the model's MA/MR accounting only happens in
        # _end_of_step -- so the `MA == MR + 1` predicate is stale for
        # masters released this tick and must not re-latch Mcnt.
        rel_masters = {row for row, slave_i in released if slave_i < 0}
        suspected = False
        if rows > 1:
            s[mv + V_SC] = min(s[mv + V_SC] + col_tx_eff, self.mv_cap)
            if s[FL]:  # row-0 flag as latched before MasterH samples
                s[mv + V_MC] = 1
            if self.hardened and s[mv + V_SC] > self.mv_target:
                suspected = True
                s[mv + V_VAL] = 0
            elif not s[mv + V_DONE] and s[mv + V_MC] == 1 \
                    and s[mv + V_SC] == self.mv_target:
                if self.hardened and not s[mv + V_VAL]:
                    s[mv + V_VAL] = 1
                else:
                    s[mv + V_VAL] = 0
                    s[mv + V_DONE] = 1
        for r in range(rows):
            base = r * self.row_size
            if s[base + FL]:
                if self.hardened and nsh:
                    s[base + SC] = min(s[base + SC] + row_tx_eff[r],
                                       self.mh_cap)
                    if s[base + SC] > self.mh_target:
                        suspected = True
                continue
            if nsh:
                s[base + SC] = min(s[base + SC] + row_tx_eff[r],
                                   self.mh_cap)
            if r not in rel_masters and s[base + MA] == s[base + MR] + 1:
                s[base + MC] = 1
            if self.hardened and s[base + SC] > self.mh_target:
                suspected = True
                continue
            if s[base + MC] == 1 and s[base + SC] == self.mh_target:
                s[base + FL] = 1
        if rows > 1:
            for r in range(1, rows):
                base = r * self.row_size
                if s[base + SVS] and col_rel_level:
                    s[base + RT] = 1
        for r in range(rows):
            sb = r * self.row_size + ROW_FIXED
            for i in range(nsh):
                off = sb + i * SLAVE
                if not s[off + SL_SIG] and row_rel_level[r]:
                    s[off + SL_SIG] = 1
                    if s[off + SL_A] == s[off + SL_R] + 1:
                        released.append((r, i))

        # ---- degenerate single-row release --------------------------- #
        fault = self.hardened and (spurious or suspected)
        if not fault and rows == 1 and s[FL] and not s[RT]:
            if self.hardened and not s[t + T_RV]:
                s[t + T_RV] = 1
            else:
                s[RT] = 1

        self._end_of_step(s, released)
        if fault and self._any_waiting(s):
            self._handle_fault(s)

    # -- fault handling -------------------------------------------------- #
    def _handle_fault(self, s: bytearray) -> None:
        t = self.tail_off
        if s[t + T_RET] < self.max_retries:
            s[t + T_RET] += 1
            self._reset_fsm(s)
            if self._all_waiting(s):
                s[t + T_WD] = self.budget  # fires `budget` steps later
        else:
            self._failover(s)

    def _reset_fsm(self, s: bytearray) -> None:
        for r in range(self.rows):
            base = r * self.row_size
            s[base + SC] = s[base + MC] = 0
            s[base + FL] = s[base + RT] = 0
            s[base + SVS] = 0
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                s[sb + i * SLAVE + SL_SIG] = 1
        m = self.mv_off
        s[m + V_SC] = s[m + V_MC] = s[m + V_DONE] = s[m + V_VAL] = 0
        s[self.tail_off + T_RV] = 0

    def _failover(self, s: bytearray) -> None:
        """Quarantine: waiting cores bounce to the software fallback and
        stay logically waiting until the software episode completes."""
        t = self.tail_off
        s[t + T_Q] = 1
        s[t + T_WD] = 0
        s[t + T_RET] = 0
        self._reset_fsm(s)

    # -- release accounting / property checks ---------------------------- #
    def _end_of_step(self, s: bytearray,
                     released: List[Tuple[int, int]]) -> None:
        t = self.tail_off
        regs = self._core_regs(s)
        min_arrived = min(a for a, _ in regs)
        for row, slave_i in released:
            base = row * self.row_size
            off_a = base + MA if slave_i < 0 \
                else base + ROW_FIXED + slave_i * SLAVE + SL_A
            off_r = off_a + (MR - MA if slave_i < 0 else SL_R - SL_A)
            new_r = s[off_r] + 1
            if new_r > s[off_a]:
                raise PropertyViolation(
                    P_EXACTLY_ONCE,
                    f"core at row {row}, slot {slave_i} delivered a "
                    f"release for episode {new_r} it never arrived at")
            if min_arrived < new_r:
                raise PropertyViolation(
                    P_SAFETY,
                    f"core at row {row}, slot {slave_i} released from "
                    f"episode {new_r} while other cores are still "
                    f"missing (min arrivals {min_arrived})")
            s[off_r] = new_r

        # Cooldowns: a released core's re-arrival is visible no earlier
        # than two steps later (write latency), matching barreg timing.
        released_set = set(released)
        for r in range(self.rows):
            base = r * self.row_size
            if (r, -1) in released_set:
                s[base + MCD] = 1
            elif s[base + MCD]:
                s[base + MCD] = 0
            sb = base + ROW_FIXED
            for i in range(self.num_slaves_h):
                off = sb + i * SLAVE
                if (r, i) in released_set:
                    s[off + SL_CD] = 1
                elif s[off + SL_CD]:
                    s[off + SL_CD] = 0

        # Episode completion + the 4-cycle theorem.
        regs = self._core_regs(s)
        min_released = min(r for _, r in regs)
        if min_released > s[t + T_EPS]:
            if self.check_four_cycle and not s[t + T_Q]:
                ticks = s[t + T_SA] + 1
                self.max_completion_ticks = max(
                    self.max_completion_ticks, ticks)
                if ticks > self.completion_bound:
                    raise PropertyViolation(
                        P_FOUR_CYCLE,
                        f"episode completed {ticks} ticks after the last "
                        f"arrival (bound {self.completion_bound})")
            s[t + T_EPS] = min_released
            s[t + T_SA] = 0
            s[t + T_WD] = 0
            s[t + T_RET] = 0
            s[t + T_RV] = 0
        elif not s[t + T_Q]:
            k = s[t + T_EPS] + 1
            if k <= self.episodes and all(a >= k for a, _ in regs):
                ticks = min(s[t + T_SA] + 1, _SA_CAP)
                if self.check_four_cycle \
                        and ticks > self.completion_bound:
                    raise PropertyViolation(
                        P_FOUR_CYCLE,
                        f"all cores arrived {ticks} ticks ago and episode "
                        f"{k} has still not completed "
                        f"(bound {self.completion_bound})")
                s[t + T_SA] = ticks
            else:
                s[t + T_SA] = 0
        else:
            s[t + T_SA] = 0
