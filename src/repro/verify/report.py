"""Rendering verification outcomes for humans, CI greps and artifacts.

The text report is line-oriented and stable on purpose: the CI
``verify-smoke`` job pins golden state-space sizes by grepping
``states=``/``transitions=`` lines, and a violated property always
renders as ``property <name>: VIOLATED`` so a single grep distinguishes
a proof from a refutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .conformance import ConcretePath, ReplayResult, concretize
from .explore import (ALL_PROPERTIES, Counterexample, ExploreResult,
                      PROVED, SKIPPED)
from .model import GLBarrierModel
from .scenarios import EXPECT_FAILOVER, EXPECT_VIOLATION, FaultScenario


def _effective_scenario(model: GLBarrierModel) -> FaultScenario:
    """The scenario whose expectation applies: an active mutation turns
    any ride-along scenario into a must-refute run."""
    if model.mutation is not None \
            and model.scenario.expect != EXPECT_VIOLATION:
        from dataclasses import replace
        return replace(model.scenario, expect=EXPECT_VIOLATION)
    return model.scenario


def render_report(model: GLBarrierModel, result: ExploreResult) -> str:
    """The ``repro verify`` console report for one exploration."""
    lines: List[str] = []
    mut = model.mutation.name if model.mutation is not None else "none"
    lines.append(f"model: {model.rows}x{model.cols} mesh, scenario "
                 f"{model.scenario.name}, mutation {mut}, "
                 f"{model.episodes} episode(s)")
    lines.append(f"states={result.states} "
                 f"transitions={result.transitions} "
                 f"capped={str(result.capped).lower()}")
    if result.max_completion_ticks:
        lines.append(f"max completion latency: "
                     f"{result.max_completion_ticks} tick(s) "
                     f"(bound {model.completion_bound})")
    extra = tuple(p for p in result.properties if p not in ALL_PROPERTIES)
    for prop in ALL_PROPERTIES + extra:
        verdict = result.properties.get(prop, SKIPPED)
        lines.append(f"property {prop}: {verdict.upper()}")
    if result.violation is not None:
        cex = result.violation
        lines.append(f"counterexample ({len(cex.action_indices)} "
                     f"step(s)): {cex.message}")
    effective = _effective_scenario(model)
    ok, why = expectation_verdict(effective, result)
    lines.append(f"expectation [{effective.expect}]: "
                 f"{'MATCHED' if ok else 'NOT MATCHED'} -- {why}")
    return "\n".join(lines)


def expectation_verdict(scenario: FaultScenario,
                        result: ExploreResult) -> "tuple[bool, str]":
    """Does the outcome match what the scenario registry promised?

    A *mutation* run is expected to violate regardless of the (usually
    fault-free) scenario it rides on, so callers pass the registry
    expectation they actually want checked -- the CLI overrides to
    ``violation`` whenever a mutation is active."""
    verdicts = result.properties
    clean = all(v in (PROVED, SKIPPED) for v in verdicts.values())
    if scenario.expect == EXPECT_VIOLATION:
        if result.violation is not None:
            return True, ("checker refuted the property as the scenario "
                          "demands")
        return False, "expected a violation but every property held"
    # PASS and FAILOVER both require the full proof; failover scenarios
    # just achieve it through watchdog/quarantine rather than clean runs.
    label = ("safety preserved through watchdog failover"
             if scenario.expect == EXPECT_FAILOVER
             else "all properties proved")
    if result.capped:
        return False, "exploration capped before closure"
    if clean and result.violation is None:
        return True, label
    return False, "a property failed that the scenario expects to hold"


def render_counterexample(model: GLBarrierModel,
                          cex: Counterexample) -> str:
    """Humanize a counterexample as a per-cycle schedule of core ids."""
    path = concretize(model, cex.action_indices)
    lines = [f"violated property: {cex.prop}",
             f"  {cex.message}",
             "concrete schedule (core id = row * cols + col):"]
    for t, cores in enumerate(path.schedules):
        what = ("cores " + ", ".join(map(str, cores)) + " arrive"
                if cores else "(no arrivals; network ticks)")
        lines.append(f"  cycle {t}: {what}")
    if path.violating:
        lines.append(f"concrete model confirms: {path.message}")
    return "\n".join(lines)


def report_dict(model: GLBarrierModel, result: ExploreResult,
                path: Optional[ConcretePath] = None,
                replay: Optional[ReplayResult] = None
                ) -> Dict[str, object]:
    """JSON artifact for one verification run (CI uploads, tooling)."""
    out: Dict[str, object] = {
        "kind": "verify-report",
        "model": model.fingerprint(),
        "states": result.states,
        "transitions": result.transitions,
        "capped": result.capped,
        "max_completion_ticks": result.max_completion_ticks,
        "completion_bound": model.completion_bound,
        "properties": dict(result.properties),
        "violation": (result.violation.to_dict()
                      if result.violation is not None else None),
    }
    effective = _effective_scenario(model)
    ok, why = expectation_verdict(effective, result)
    out["expectation"] = {"expect": effective.expect,
                          "matched": ok, "why": why}
    if path is not None:
        out["concrete_path"] = path.to_dict()
    if replay is not None:
        out["replay"] = replay.to_dict()
    return out


__all__ = ["render_report", "render_counterexample", "report_dict",
           "expectation_verdict"]
