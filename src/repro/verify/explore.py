"""Explicit-state exploration of the barrier transition system.

:func:`explore` runs a breadth-first search over canonical states,
checking the transition-level properties (safety, exactly-once, the
4-cycle completion bound) as edges are generated and then proving
deadlock/livelock freedom with a progress pass over the closed state
graph.  Everything is deterministic -- action enumeration order, BFS
order, state counts -- so golden state-space sizes can be pinned in CI
and shard results merge reproducibly.

A counterexample is stored as the list of *action indices* along the
path from the initial state (index ``i`` selects
``model.actions(state)[i]``); :func:`replay_actions` turns it back into
concrete states, and :mod:`repro.verify.conformance` into a real
simulator schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import (GLBarrierModel, P_DEADLOCK, P_EXACTLY_ONCE, P_FLAP,
                    P_FOUR_CYCLE, P_RECOVERY, P_SAFETY, PropertyViolation)

#: Property result labels.
PROVED = "proved"
VIOLATED = "violated"
NOT_PROVED = "not-proved"   # exploration capped before closure
SKIPPED = "skipped"         # not meaningful for this scenario

ALL_PROPERTIES = (P_SAFETY, P_DEADLOCK, P_EXACTLY_ONCE, P_FOUR_CYCLE)


@dataclass
class Counterexample:
    """A violating path: ``actions[i]`` is an index into
    ``model.actions(state_i)`` and the final action triggers the
    violation (or, for liveness, enters the stuck cycle)."""

    prop: str
    message: str
    action_indices: List[int]

    def to_dict(self) -> Dict[str, object]:
        return {"property": self.prop, "message": self.message,
                "action_indices": list(self.action_indices)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Counterexample":
        raw = data["action_indices"]
        assert isinstance(raw, list)
        return cls(prop=str(data["property"]),
                   message=str(data["message"]),
                   action_indices=[int(i) for i in raw])


@dataclass
class ExploreResult:
    """Outcome of one (possibly rooted) exploration."""

    states: int
    transitions: int
    capped: bool
    violation: Optional[Counterexample]
    #: Property name -> PROVED / VIOLATED / NOT_PROVED / SKIPPED.
    properties: Dict[str, str] = field(default_factory=dict)
    #: Largest observed all-arrived-to-release latency (ticks).
    max_completion_ticks: int = 0

    @property
    def ok(self) -> bool:
        return self.violation is None and not self.capped


def replay_actions(model: GLBarrierModel, action_indices: List[int],
                   root: Optional[bytes] = None
                   ) -> Tuple[List[bytes], List[object],
                              Optional[PropertyViolation]]:
    """Re-walk a path of action indices from *root*.

    Returns ``(states, actions, violation)``: ``states[i]`` is the state
    *before* ``actions[i]``; a violation raised by the final step is
    captured and returned rather than raised."""
    state = model.initial() if root is None else root
    states: List[bytes] = []
    actions: List[object] = []
    for n, idx in enumerate(action_indices):
        acts = model.actions(state)
        if not 0 <= idx < len(acts):
            raise ValueError(f"action index {idx} out of range at "
                             f"step {n}")
        states.append(state)
        actions.append(acts[idx])
        try:
            state = model.step(state, acts[idx])
        except PropertyViolation as exc:
            if n != len(action_indices) - 1:
                raise
            return states, actions, exc
    states.append(state)
    return states, actions, None


def _path_to(parents: List[Tuple[int, int]], sid: int) -> List[int]:
    path: List[int] = []
    while sid > 0:
        pid, ai = parents[sid]
        path.append(ai)
        sid = pid
    path.reverse()
    return path


def explore(model: GLBarrierModel, *, max_states: int = 2_000_000,
            root: Optional[bytes] = None) -> ExploreResult:
    """Exhaustively enumerate the reachable canonical state space.

    Stops at the first property violation (returning its counterexample)
    or when *max_states* distinct states have been generated (returning
    ``capped=True`` -- all universal properties then downgrade to
    ``not-proved``)."""
    init = model.initial() if root is None else root
    states: List[bytes] = [init]
    index: Dict[bytes, int] = {init: 0}
    parents: List[Tuple[int, int]] = [(-1, -1)]
    transitions = 0
    capped = False
    violation: Optional[Counterexample] = None

    head = 0
    while head < len(states) and violation is None:
        sid = head
        head += 1
        state = states[sid]
        acts = model.actions(state)
        for ai, act in enumerate(acts):
            try:
                nxt = model.step(state, act)
            except PropertyViolation as exc:
                violation = Counterexample(
                    prop=exc.prop, message=exc.message,
                    action_indices=_path_to(parents, sid) + [ai])
                break
            if nxt == state:
                continue  # pure stutter; dormancy adds no new behavior
            transitions += 1
            if nxt not in index:
                if len(states) >= max_states:
                    capped = True
                    continue
                index[nxt] = len(states)
                states.append(nxt)
                parents.append((sid, ai))

    if violation is None and not capped:
        violation = _progress_pass(model, states, index, parents)

    return ExploreResult(
        states=len(states), transitions=transitions, capped=capped,
        violation=violation,
        properties=_verdicts(model, capped, violation),
        max_completion_ticks=model.max_completion_ticks)


def _progress_pass(model: GLBarrierModel, states: List[bytes],
                   index: Dict[bytes, int],
                   parents: List[Tuple[int, int]]
                   ) -> Optional[Counterexample]:
    """Deadlock/livelock freedom: from *every* reachable state, the
    fair schedule that delivers all pending arrivals each step must
    complete all episodes.

    This is the standard progress argument for barrier FSMs: once no new
    arrivals are withheld the system is deterministic, so following the
    maximal action either reaches completion (good -- and so is every
    state on the way) or revisits a state (a genuine livelock/deadlock,
    since no further stimulus can ever arrive)."""
    good = bytearray(len(states))
    for start in range(len(states)):
        if good[start]:
            continue
        chain: List[int] = []
        pos: Dict[int, int] = {}
        cur = start
        while True:
            if good[cur] or model.is_complete(states[cur]):
                break
            if cur in pos:
                # Cycle with no completion: every state in it is stuck.
                prefix = _path_to(parents, chain[0]) if chain else []
                loop_actions = [len(model.actions(states[c])) - 1
                                for c in chain[pos[cur]:]]
                return Counterexample(
                    prop=P_DEADLOCK,
                    message=("no completion reachable under maximal "
                             "arrival delivery (stuck cycle of length "
                             f"{len(chain) - pos[cur]})"),
                    action_indices=prefix + [
                        len(model.actions(states[c])) - 1
                        for c in chain[:pos[cur]]] + loop_actions)
            pos[cur] = len(chain)
            chain.append(cur)
            nxt = model.step(states[cur], model.max_action(states[cur]))
            if nxt == states[cur]:
                prefix = _path_to(parents, start)
                return Counterexample(
                    prop=P_DEADLOCK,
                    message="state can make no further progress yet "
                            "episodes remain incomplete",
                    action_indices=prefix)
            cur = index[nxt]
        for c in chain:
            good[c] = 1
    return None


def _verdicts(model: GLBarrierModel, capped: bool,
              violation: Optional[Counterexample]) -> Dict[str, str]:
    props = ALL_PROPERTIES + ((P_RECOVERY, P_FLAP) if model.recovery
                              else ())
    out: Dict[str, str] = {}
    for prop in props:
        if prop == P_FOUR_CYCLE and not model.check_four_cycle:
            out[prop] = SKIPPED
            continue
        if violation is not None and violation.prop == prop:
            out[prop] = VIOLATED
        elif violation is not None or capped:
            out[prop] = NOT_PROVED
        else:
            out[prop] = PROVED
    return out
