"""Conformance bridge between the abstract model and the real simulator.

Two directions close the refinement loop:

* **Concretize + replay** -- a model counterexample is a path of action
  indices over *canonical* (symmetry-reduced) states.  :func:`concretize`
  rewrites it as per-cycle schedules of concrete mesh core ids, and
  :func:`replay_on_simulator` drives a real
  :class:`~repro.gline.network.GLineBarrierNetwork` (same scenario fault,
  same mutation, ``barreg_write_cycles=0`` so model step *i* is engine
  cycle *i*) with those schedules, confirming that the abstract violation
  manifests on the reference implementation.  The replay runs under a
  :class:`~repro.obs.RingTracer`, so the confirmed counterexample exports
  to Perfetto/VCD via :func:`export_counterexample` for post-mortem
  inspection in the same viewers as any other repro trace.

* **Lift** -- :func:`lift_trace` runs the opposite check: given an
  observability event stream from a *real* simulation, it re-executes the
  concrete (non-symmetric) model from the recorded ``gline.arrive``
  times and demands the model release the same number of cores on the
  same cycles as the recorded ``gline.release`` events.  Any divergence
  is a refinement bug in either the model or the network and is reported
  cycle-by-cycle.  :func:`lift_perfetto` reconstructs the event stream
  from an exported Perfetto document first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..faults import FAILOVER
from ..gline.network import GLineBarrierNetwork
from ..obs import Observability, RingTracer, to_perfetto, write_vcd
from ..obs import events as obs_ev
from ..obs.events import TraceEvent
from ..sim.engine import Engine
from ..gline.recovery import PROBATION
from .model import (GLBarrierModel, GLITCH, MA, MCD, MR, ROW_FIXED,
                    SL_A, SL_CD, SL_R, SLAVE, Action, PropertyViolation)
from .scenarios import (FAULT_FREE, FaultScenario, Mutation,
                        ScenarioInjector, get_mutation)

#: Engine-cycle slack appended after the last scheduled arrival when
#: replaying: enough for the deepest gather/release plus every watchdog
#: retry round on a 7x7 mesh.
REPLAY_HORIZON_SLACK = 4096


# ---------------------------------------------------------------------- #
# Abstract -> concrete: schedules of mesh core ids
# ---------------------------------------------------------------------- #
@dataclass
class ConcretePath:
    """A counterexample rewritten as per-step concrete arrival schedules.

    ``schedules[i]`` lists the mesh core ids (``row * cols + col``, col 0
    being the row master) whose arrivals land at model step *i*; the
    concrete twin model raises the same violation the canonical path did
    (captured in :attr:`prop`/:attr:`message` when the path ends in one).
    """

    schedules: List[List[int]]
    prop: Optional[str] = None
    message: Optional[str] = None
    #: Model steps at which the path fired the armed wire glitch.
    glitches: List[int] = field(default_factory=list)

    @property
    def violating(self) -> bool:
        return self.prop is not None

    def to_dict(self) -> Dict[str, object]:
        return {"schedules": [list(s) for s in self.schedules],
                "property": self.prop, "message": self.message,
                "glitches": list(self.glitches)}


def _row_order(model: GLBarrierModel, conc: bytes) -> List[int]:
    """Concrete row index for each canonical row position.

    Mirrors ``GLBarrierModel._canon``: rows ``1..R-1`` are ordered by
    their slave-sorted register blocks (row 0 is never sorted).  Ties are
    byte-identical rows, so any assignment among them is sound."""
    if not model.sort_rows:
        return list(range(model.rows))
    keyed: List[Tuple[bytes, int]] = []
    for r in range(1, model.rows):
        base = r * model.row_size
        row = bytearray(conc[base: base + model.row_size])
        blocks = sorted(bytes(row[ROW_FIXED + i * SLAVE:
                                  ROW_FIXED + (i + 1) * SLAVE])
                        for i in range(model.num_slaves_h))
        for i, blk in enumerate(blocks):
            row[ROW_FIXED + i * SLAVE: ROW_FIXED + (i + 1) * SLAVE] = blk
        keyed.append((bytes(row), r))
    keyed.sort(key=lambda kv: kv[0])
    return [0] + [r for _, r in keyed]


def _match_action(model: GLBarrierModel, conc: bytes,
                  action: Action) -> List[int]:
    """Concrete core ids realizing a canonical *action* against the
    concrete state *conc* (one eligible slave per requested class slot)."""
    order = _row_order(model, conc)
    cores: List[int] = []
    for k, (m_arr, slave_choices) in enumerate(action):
        r = order[k]
        base = r * model.row_size
        if m_arr:
            if conc[base + MA] != conc[base + MR] or conc[base + MCD]:
                raise ValueError(f"row {r} master not eligible for the "
                                 f"canonical action")
            cores.append(r * model.cols)
        taken: set = set()
        sb = base + ROW_FIXED
        for blk, count in slave_choices:
            for _ in range(count):
                for i in range(model.num_slaves_h):
                    off = sb + i * SLAVE
                    if i not in taken \
                            and conc[off: off + SLAVE] == blk \
                            and conc[off + SL_A] == conc[off + SL_R] \
                            and not conc[off + SL_CD]:
                        taken.add(i)
                        cores.append(r * model.cols + i + 1)
                        break
                else:
                    raise ValueError(
                        f"no eligible slave of class {blk.hex()} left in "
                        f"row {r} for the canonical action")
    return cores


def concretize(model: GLBarrierModel,
               action_indices: Sequence[int]) -> ConcretePath:
    """Rewrite a canonical action path as concrete per-step schedules.

    Walks the symmetric model and a ``symmetric=False`` twin in
    lockstep: each canonical action is matched against the concrete
    state (row blocks aligned by the same sort ``_canon`` uses, slaves
    picked by register-block value), then both advance.  A
    :class:`~repro.verify.model.PropertyViolation` raised by the twin's
    final step is captured -- that is the concrete confirmation that the
    canonical counterexample is not a symmetry artifact."""
    twin = GLBarrierModel(
        model.rows, model.cols, scenario=model.scenario,
        mutation=(model.mutation.name if model.mutation is not None
                  else None),
        episodes=model.episodes, symmetric=False)
    abstract = model.initial()
    conc = twin.initial()
    schedules: List[List[int]] = []
    glitches: List[int] = []
    prop: Optional[str] = None
    message: Optional[str] = None
    for n, idx in enumerate(action_indices):
        acts = model.actions(abstract)
        if not 0 <= idx < len(acts):
            raise ValueError(f"action index {idx} out of range at step "
                             f"{n}")
        action = acts[idx]
        glitched = bool(action) and action[-1] == GLITCH
        if glitched:
            glitches.append(n)
            action = action[:-1]
        cores = _match_action(twin, conc, action)
        schedules.append(cores)
        try:
            conc = twin.step_cores(conc, cores, glitch=glitched)
        except PropertyViolation as exc:
            if n != len(action_indices) - 1:
                raise
            prop, message = exc.prop, exc.message
            break
        try:
            abstract = model.step(abstract, acts[idx])
        except PropertyViolation as exc:
            if n != len(action_indices) - 1:
                raise
            # The canonical walk violated but the concrete one did not:
            # report the canonical verdict (the replay will arbitrate).
            prop, message = exc.prop, exc.message
            break
    return ConcretePath(schedules=schedules, prop=prop, message=message,
                        glitches=glitches)


# ---------------------------------------------------------------------- #
# Replay on the reference simulator
# ---------------------------------------------------------------------- #
@dataclass
class ReplayResult:
    """Outcome of driving the real network with a concrete schedule."""

    rows: int
    cols: int
    scenario: str
    mutation: Optional[str]
    schedules: List[List[int]]
    #: (core id, resume cycle, via-failover) in resume order.
    releases: List[Tuple[int, int, bool]]
    #: Hardware releases that beat a still-missing arrival (the concrete
    #: safety violations); empty on a conforming safe replay.
    early_releases: List[Tuple[int, int]]
    quarantined: bool
    #: Captured observability stream (Perfetto/VCD export source).
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def confirmed(self) -> bool:
        """True when the simulator exhibited the violation in hardware."""
        return bool(self.early_releases)

    def summary(self) -> str:
        n_hw = sum(1 for _, _, fo in self.releases if not fo)
        n_fo = len(self.releases) - n_hw
        parts = [f"{self.rows}x{self.cols} replay: "
                 f"{sum(map(len, self.schedules))} arrivals over "
                 f"{len(self.schedules)} cycles, {n_hw} hardware releases"
                 + (f", {n_fo} failover bounces" if n_fo else "")]
        if self.early_releases:
            first = self.early_releases[0]
            parts.append(f"EARLY RELEASE CONFIRMED: core {first[0]} "
                         f"resumed at cycle {first[1]} with arrivals "
                         f"still missing")
        elif self.quarantined:
            parts.append("network quarantined (watchdog failover); no "
                         "early hardware release")
        else:
            parts.append("no early release observed")
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {"rows": self.rows, "cols": self.cols,
                "scenario": self.scenario, "mutation": self.mutation,
                "schedules": [list(s) for s in self.schedules],
                "releases": [list(r) for r in self.releases],
                "early_releases": [list(r) for r in self.early_releases],
                "quarantined": self.quarantined,
                "confirmed": self.confirmed}


def replay_on_simulator(rows: int, cols: int,
                        schedules: Sequence[Sequence[int]], *,
                        scenario: FaultScenario = FAULT_FREE,
                        mutation: Union[Mutation, str, None] = None,
                        glitches: Sequence[int] = (),
                        trace_capacity: Optional[int] = 65536
                        ) -> ReplayResult:
    """Drive a real ``GLineBarrierNetwork`` with concrete schedules.

    ``barreg_write_cycles=0`` makes an arrival scheduled at cycle *t*
    visible to that same cycle's tick, so model step *i* and engine
    cycle *i* coincide and release cycles compare directly: the model
    delivers a step-*t* release which the engine runs at ``t + 1``.

    A hardware release is flagged *early* when some core's scheduled
    arrival count through the release's triggering cycle is below the
    released core's episode number -- exactly the model's safety check,
    evaluated against the ground-truth schedule."""
    if isinstance(mutation, str):
        mutation = get_mutation(mutation)
    engine = Engine()
    stats = StatsRegistry(rows * cols)
    cfg = GLineConfig(barreg_write_cycles=0,
                      watchdog_budget=scenario.watchdog_budget,
                      watchdog_retries=scenario.watchdog_retries,
                      recovery_enabled=scenario.recovery,
                      recovery_probe_interval=scenario.probe_backoff,
                      recovery_backoff_factor=1,
                      recovery_max_backoff=scenario.probe_backoff,
                      recovery_probation_barriers=(
                          scenario.probation_barriers),
                      recovery_max_flaps=scenario.max_flaps,
                      recovery_max_probes=scenario.max_probes)
    net = GLineBarrierNetwork(engine, stats, rows, cols, cfg)
    if mutation is not None:
        mutation.apply_to_network(net)
    if scenario.needs_injector:
        inj = ScenarioInjector(scenario, glitch_cycles=tuple(glitches))
        inj.net = net
        net.set_injector(inj)
    if scenario.recovery and scenario.start == "probation" \
            and net.recovery is not None:
        net.recovery.state = PROBATION
        net.recovery.probation_left = scenario.probation_barriers
    tracer = RingTracer(capacity=trace_capacity)
    net.set_obs(Observability(tracer=tracer))

    releases: List[Tuple[int, int, bool]] = []

    def make_resume(cid: int):
        def resume(token: object = None) -> None:
            releases.append((cid, engine.now, token is FAILOVER))
        return resume

    for t, cores in enumerate(schedules):
        for cid in cores:
            engine.schedule_at(
                t, lambda c=cid: net.arrive(c, make_resume(c)))
    engine.run(until=len(schedules) + REPLAY_HORIZON_SLACK)

    # Ground truth: arrivals of core d visible at cycles <= t.
    def arrivals_through(d: int, t: int) -> int:
        return sum(1 for step, cores in enumerate(schedules)
                   if step <= t and d in cores)

    early: List[Tuple[int, int]] = []
    rel_count: Dict[int, int] = {}
    for cid, cycle, via_failover in releases:
        rel_count[cid] = k = rel_count.get(cid, 0) + 1
        if via_failover:
            continue    # completes over the software fallback cohort
        # The release was produced by the tick of cycle - 1 (model step
        # cycle - 1), so only arrivals visible through that cycle count.
        if any(arrivals_through(d, cycle - 1) < k
               for d in range(rows * cols)):
            early.append((cid, cycle))

    return ReplayResult(
        rows=rows, cols=cols, scenario=scenario.name,
        mutation=(mutation.name if mutation is not None else None),
        schedules=[list(s) for s in schedules],
        releases=releases, early_releases=early,
        quarantined=net.quarantined, events=list(tracer))


def export_counterexample(replay: ReplayResult,
                          prefix: Union[str, Path],
                          verify_meta: Optional[Dict[str, object]] = None
                          ) -> Dict[str, str]:
    """Write the replay's trace as ``<prefix>.perfetto.json`` and
    ``<prefix>.vcd``, stamping the verification metadata (scenario,
    mutation, schedules, verdict) under ``otherData.verify`` so
    ``scripts/validate_trace.py --counterexample`` can audit it."""
    doc = to_perfetto(replay.events)
    meta: Dict[str, object] = dict(verify_meta or {})
    meta.setdefault("scenario", replay.scenario)
    meta.setdefault("mutation", replay.mutation)
    meta.setdefault("mesh", f"{replay.rows}x{replay.cols}")
    meta.setdefault("schedules", [list(s) for s in replay.schedules])
    meta.setdefault("confirmed", replay.confirmed)
    meta.setdefault("early_releases",
                    [list(r) for r in replay.early_releases])
    doc["otherData"]["verify"] = meta
    perfetto_path = Path(f"{prefix}.perfetto.json")
    perfetto_path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n")
    vcd_path = Path(f"{prefix}.vcd")
    write_vcd(replay.events, vcd_path)
    return {"perfetto": str(perfetto_path), "vcd": str(vcd_path)}


# ---------------------------------------------------------------------- #
# Concrete -> abstract: lifting real traces into model runs
# ---------------------------------------------------------------------- #
@dataclass
class LiftResult:
    """Refinement verdict for one recorded trace."""

    ok: bool
    steps: int
    episodes: int
    #: cycle -> number of cores the model released that step.
    model_releases: Dict[int, int]
    #: cycle -> number of cores the trace's GL_RELEASE events released.
    trace_releases: Dict[int, int]
    mismatches: List[str]

    def summary(self) -> str:
        verdict = "refines" if self.ok else "DIVERGES"
        return (f"trace {verdict} the model: {self.episodes} episode(s) "
                f"over {self.steps} modelled cycles, "
                f"{sum(self.trace_releases.values())} released; "
                f"{len(self.mismatches)} mismatch(es)")


def lift_trace(events: Iterable[TraceEvent], rows: int, cols: int, *,
               scenario: FaultScenario = FAULT_FREE,
               mutation: Union[Mutation, str, None] = None,
               source: Optional[str] = None) -> LiftResult:
    """Check that a recorded trace refines the model.

    Replays the trace's ``gline.arrive`` events (whose timestamps are
    bar_reg *visibility* cycles, so they transfer across
    ``barreg_write_cycles`` settings) through the concrete model and
    compares, cycle by cycle, how many cores the model releases against
    the trace's ``gline.release`` records.  *source* restricts the lift
    to one network's events when the trace covers several."""
    arrivals: Dict[int, List[int]] = {}
    trace_rel: Dict[int, int] = {}
    for e in events:
        if source is not None and e.source != source:
            continue
        if e.kind == obs_ev.GL_ARRIVE and "core" in e.detail:
            arrivals.setdefault(e.time, []).append(int(e.detail["core"]))
        elif e.kind == obs_ev.GL_RELEASE:
            # The release was produced by the tick at e.time; the model
            # delivers it at that same step.
            trace_rel[e.time] = trace_rel.get(e.time, 0) \
                + int(e.detail.get("cores", 0))

    mismatches: List[str] = []
    if not arrivals:
        return LiftResult(ok=not trace_rel, steps=0, episodes=0,
                          model_releases={}, trace_releases=trace_rel,
                          mismatches=(["releases recorded without any "
                                       "arrivals"] if trace_rel else []))

    per_core: Dict[int, int] = {}
    for cores in arrivals.values():
        for c in cores:
            per_core[c] = per_core.get(c, 0) + 1
    episodes = max(per_core.values())

    model = GLBarrierModel(
        rows, cols, scenario=scenario,
        mutation=(mutation.name if isinstance(mutation, Mutation)
                  else mutation),
        episodes=min(max(episodes, 1), 16), symmetric=False)
    state = model.initial()
    t0 = min(arrivals)
    t_end = max(max(arrivals), max(trace_rel, default=t0))
    horizon = t_end + REPLAY_HORIZON_SLACK

    model_rel: Dict[int, int] = {}
    t = t0
    while t <= horizon:
        before = model._core_regs(state)
        try:
            state = model.step_cores(state, arrivals.get(t, []))
        except PropertyViolation as exc:
            mismatches.append(f"model violation at cycle {t}: "
                              f"{exc.prop}: {exc.message}")
            break
        except ValueError as exc:
            mismatches.append(f"trace arrival not admissible at cycle "
                              f"{t}: {exc}")
            break
        released = sum(1 for (_, rb), (_, ra)
                       in zip(before, model._core_regs(state))
                       if ra > rb)
        if released:
            model_rel[t] = released
        if model.is_complete(state) and t >= max(arrivals):
            break
        t += 1

    for cyc in sorted(set(model_rel) | set(trace_rel)):
        m, r = model_rel.get(cyc, 0), trace_rel.get(cyc, 0)
        if m != r:
            mismatches.append(f"cycle {cyc}: model releases {m} "
                              f"core(s), trace records {r}")

    return LiftResult(ok=not mismatches, steps=max(0, t - t0 + 1),
                      episodes=episodes, model_releases=model_rel,
                      trace_releases=trace_rel, mismatches=mismatches)


def lift_perfetto(doc: Dict[str, object], rows: int, cols: int, *,
                  scenario: FaultScenario = FAULT_FREE,
                  mutation: Union[Mutation, str, None] = None,
                  source: Optional[str] = None) -> LiftResult:
    """Lift an exported Perfetto document (see :func:`lift_trace`).

    Reconstructs the event stream from the document's ``gline.*``
    instants, resolving each instant's track back to its source name via
    the thread-name metadata records."""
    raw = doc.get("traceEvents")
    if not isinstance(raw, list):
        raise ValueError("not a trace document: missing 'traceEvents'")
    names: Dict[Tuple[int, int], str] = {}
    for e in raw:
        if isinstance(e, dict) and e.get("ph") == "M" \
                and e.get("name") == "thread_name":
            names[(e["pid"], e["tid"])] = str(e["args"]["name"])
    events: List[TraceEvent] = []
    for e in raw:
        if not isinstance(e, dict) or e.get("ph") != "i":
            continue
        kind = e.get("name", "")
        if kind not in (obs_ev.GL_ARRIVE, obs_ev.GL_RELEASE):
            continue
        src = names.get((e.get("pid"), e.get("tid")), "")
        events.append(TraceEvent(time=int(e["ts"]), source=src,
                                 kind=str(kind),
                                 detail=dict(e.get("args", {}))))
    return lift_trace(events, rows, cols, scenario=scenario,
                      mutation=mutation, source=source)
