"""State-space sharding over the parallel experiment executor.

``repro verify --shard-depth D`` splits one exploration into independent
sub-explorations rooted at the distinct states reachable in ``D`` steps
from the initial state.  Each root becomes a :class:`VerifyShardSpec` --
the verify analogue of :class:`~repro.exec.spec.RunSpec` -- so shards fan
out over :class:`~repro.exec.ParallelRunner` worker processes, land in
the persistent :class:`~repro.exec.ResultCache` keyed by mesh, scenario,
mutation, prefix and ``code_fingerprint()``, and enjoy the supervisor's
timeout/retry/journal machinery for free.

Shards overlap wherever their subtrees reconverge, so merged state and
transition totals are an upper bound on the single-process count; the
merge is nevertheless deterministic, and a violation found by any shard
carries its full action path (prefix + local) back to the initial state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec.version import code_fingerprint
from .explore import Counterexample, ExploreResult, explore
from .model import GLBarrierModel, PropertyViolation
from .scenarios import FAULT_FREE


@dataclass
class VerifyShardResult:
    """One shard's contribution, in cache/IPC dict form like RunResult."""

    states: int
    transitions: int
    capped: bool
    max_completion_ticks: int
    violation: Optional[Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "verify-shard", "states": self.states,
                "transitions": self.transitions, "capped": self.capped,
                "max_completion_ticks": self.max_completion_ticks,
                "violation": self.violation}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VerifyShardResult":
        def as_int(key: str) -> int:
            value = data[key]
            assert isinstance(value, (int, float, str))
            return int(value)

        violation = data.get("violation")
        assert violation is None or isinstance(violation, dict)
        return cls(states=as_int("states"),
                   transitions=as_int("transitions"),
                   capped=bool(data["capped"]),
                   max_completion_ticks=as_int("max_completion_ticks"),
                   violation=violation)


@dataclass
class VerifyShardSpec:
    """A picklable, content-hashable sub-exploration rooted at a prefix.

    Satisfies the executor's spec protocol: ``key()``/``fingerprint()``
    for the cache, ``execute()`` for the worker, ``result_from_dict`` so
    the runner decodes stored dicts into :class:`VerifyShardResult`
    instead of ``RunResult``, and ``max_events = None`` so the
    supervisor's deadline heuristic falls back to its flat default.
    """

    rows: int
    cols: int
    scenario: str = FAULT_FREE.name
    mutation: Optional[str] = None
    episodes: int = 1
    prefix: Tuple[int, ...] = ()
    max_states: int = 2_000_000

    #: Supervisor deadline hook (no event budget for explorations).
    max_events: Optional[int] = None

    #: Executor protocol: decode cached/IPC dicts into shard results.
    result_from_dict = staticmethod(VerifyShardResult.from_dict)

    # ------------------------------------------------------------------ #
    def build_model(self) -> GLBarrierModel:
        from .scenarios import get_scenario
        return GLBarrierModel(self.rows, self.cols,
                              scenario=get_scenario(self.scenario),
                              mutation=self.mutation,
                              episodes=self.episodes)

    def fingerprint(self) -> Dict[str, object]:
        return {"kind": "verify-shard",
                "rows": self.rows, "cols": self.cols,
                "scenario": self.scenario, "mutation": self.mutation,
                "episodes": self.episodes,
                "prefix": list(self.prefix),
                "max_states": self.max_states,
                "code": code_fingerprint()}

    def key(self) -> str:
        blob = json.dumps(self.fingerprint(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def execute(self) -> VerifyShardResult:
        model = self.build_model()
        state = model.initial()
        for n, idx in enumerate(self.prefix):
            acts = model.actions(state)
            try:
                state = model.step(state, acts[idx])
            except PropertyViolation as exc:
                return VerifyShardResult(
                    states=0, transitions=0, capped=False,
                    max_completion_ticks=model.max_completion_ticks,
                    violation=Counterexample(
                        prop=exc.prop, message=exc.message,
                        action_indices=list(self.prefix[:n + 1])
                    ).to_dict())
        res = explore(model, max_states=self.max_states, root=state)
        violation = None
        if res.violation is not None:
            violation = Counterexample(
                prop=res.violation.prop, message=res.violation.message,
                action_indices=(list(self.prefix)
                                + res.violation.action_indices)).to_dict()
        return VerifyShardResult(
            states=res.states, transitions=res.transitions,
            capped=res.capped,
            max_completion_ticks=res.max_completion_ticks,
            violation=violation)


# ---------------------------------------------------------------------- #
def shard_prefixes(model: GLBarrierModel, depth: int
                   ) -> Tuple[List[Tuple[int, ...]],
                              Optional[Counterexample]]:
    """Distinct depth-*depth* action prefixes (deduplicated by reached
    canonical state), or a counterexample if one surfaces that shallow."""
    frontier: Dict[bytes, Tuple[int, ...]] = {model.initial(): ()}
    for _ in range(depth):
        nxt: Dict[bytes, Tuple[int, ...]] = {}
        for state, prefix in frontier.items():
            for ai, act in enumerate(model.actions(state)):
                try:
                    child = model.step(state, act)
                except PropertyViolation as exc:
                    return [], Counterexample(
                        prop=exc.prop, message=exc.message,
                        action_indices=list(prefix) + [ai])
                if child == state:
                    # Keep stutter roots: the subtree below them is the
                    # same, and dropping a root would lose coverage when
                    # the state has no other representative.
                    nxt.setdefault(state, prefix)
                    continue
                nxt.setdefault(child, prefix + (ai,))
        frontier = nxt
    return sorted(frontier.values()), None


def merge_shards(results: Sequence[VerifyShardResult],
                 model: GLBarrierModel) -> ExploreResult:
    """Deterministically combine shard results into one report.

    Counts are summed (shards overlap where subtrees reconverge, so this
    upper-bounds the single-process census); the first shard violation in
    spec order wins, matching single-process first-violation semantics
    closely enough for reporting."""
    violation: Optional[Counterexample] = None
    for res in results:
        if res.violation is not None:
            violation = Counterexample.from_dict(res.violation)
            break
    capped = any(r.capped for r in results)
    from .explore import _verdicts
    return ExploreResult(
        states=sum(r.states for r in results),
        transitions=sum(r.transitions for r in results),
        capped=capped, violation=violation,
        properties=_verdicts(model, capped, violation),
        max_completion_ticks=max(
            (r.max_completion_ticks for r in results), default=0))
