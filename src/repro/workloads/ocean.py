"""OCEAN-like scientific application (SPLASH-2).

OCEAN "studies large-scale ocean movements based on eddy and boundary
currents".  Structurally it is a sequence of red-black Gauss-Seidel /
stencil phases over large grids, separated by barriers, with occasional
lock-protected global reductions.  The paper picks it as the SPLASH-2
application with the *most* barrier executions -- and still finds only one
barrier every ~205,206 cycles, which is why GL only buys ~5%.

Our re-implementation: a 3-point vertical stencil over a row-partitioned
``g x g`` pair of ping-pong grids.  Interior rows are private (cached
after the first sweep); the rows at partition boundaries are read by two
cores, producing the moderate sharing traffic of a stencil code.  Each
phase ends with a lock-protected update of a global residual cell and a
barrier.  Grid values are seeded and the final state is verifiable against
a NumPy reference (:meth:`verify`).
"""

from __future__ import annotations

import random
from typing import Generator

import numpy as np

from ..common.errors import WorkloadError
from ..cpu import isa
from ..mem.address import WORD_BYTES
from .base import VALUE_MOD, Workload, WorkloadInfo, chunk_bounds


class OceanWorkload(Workload):
    """Row-partitioned stencil phases with a lock-protected reduction."""

    name = "OCEAN"

    def __init__(self, grid: int = 66, phases: int = 12,
                 flops_per_point: int = 5, seed: int = 23):
        if grid < 4:
            raise WorkloadError("grid must be at least 4x4")
        if phases < 1:
            raise WorkloadError("phases must be >= 1")
        self.grid = grid
        self.phases = phases
        self.flops = flops_per_point
        self.seed = seed

    def programs(self, chip) -> list[Generator]:
        g = self.grid
        rng = random.Random(self.seed)
        ncores = chip.num_cores
        # Two grids (current / next) plus the residual cell and its lock.
        grid_a = chip.allocator.alloc_array(g * g)
        grid_b = chip.allocator.alloc_array(g * g)
        self._a0 = [rng.randrange(VALUE_MOD) for _ in range(g * g)]
        chip.funcmem.store_array(grid_a, self._a0)
        self._grid_a, self._grid_b = grid_a, grid_b
        self._residual = chip.allocator.alloc_line(home=0)
        residual_lock = chip.allocator.alloc_line(home=0)

        def addr(base: int, r: int, c: int) -> int:
            return base + WORD_BYTES * (r * g + c)

        def program(cid: int) -> Generator:
            row_lo, row_hi = chunk_bounds(g - 2, ncores, cid)
            row_lo += 1
            row_hi += 1
            for phase in range(self.phases):
                src, dst = (grid_a, grid_b) if phase % 2 == 0 \
                    else (grid_b, grid_a)
                acc = 0
                for r in range(row_lo, row_hi):
                    for c in range(1, g - 1):
                        # 3-point vertical stencil; north/south rows at
                        # partition edges are the shared ones.
                        center = yield isa.Load(addr(src, r, c))
                        north = yield isa.Load(addr(src, r - 1, c))
                        south = yield isa.Load(addr(src, r + 1, c))
                        yield isa.Compute(self.flops)
                        yield isa.Store(addr(dst, r, c),
                                        (center + north + south)
                                        % VALUE_MOD)
                        acc += 1
                # Lock-protected global residual update (OCEAN's lock use).
                yield isa.AcquireLock(residual_lock)
                value = yield isa.Load(self._residual)
                yield isa.Store(self._residual, value + acc)
                yield isa.ReleaseLock(residual_lock)
                yield isa.BarrierOp()

        return [program(c) for c in range(chip.num_cores)]

    def reference_grids(self) -> tuple[np.ndarray, np.ndarray]:
        """Expected final (grid_a, grid_b) contents."""
        g = self.grid
        a = np.array(self._a0, dtype=np.int64).reshape(g, g)
        b = np.zeros((g, g), dtype=np.int64)
        for phase in range(self.phases):
            src, dst = (a, b) if phase % 2 == 0 else (b, a)
            dst[1:-1, 1:-1] = (src[1:-1, 1:-1] + src[:-2, 1:-1]
                               + src[2:, 1:-1]) % VALUE_MOD
        return a, b

    def verify(self, chip) -> None:
        g = self.grid
        ref_a, ref_b = self.reference_grids()
        got_a = np.array(chip.funcmem.load_array(self._grid_a, g * g)
                         ).reshape(g, g)
        got_b = np.array(chip.funcmem.load_array(self._grid_b, g * g)
                         ).reshape(g, g)
        assert np.array_equal(got_a, ref_a), "OCEAN grid A mismatch"
        assert np.array_equal(got_b, ref_b), "OCEAN grid B mismatch"
        interior = (g - 2) * (g - 2)
        residual = chip.funcmem.load(self._residual)
        assert residual == self.phases * interior, \
            f"OCEAN residual {residual} != {self.phases * interior}"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.grid}x{self.grid} ocean, "
                       f"{self.phases} phases",
            num_barriers=self.phases,
            paper_barriers=364,
            paper_period=205_206,
        )
