"""Workload abstractions.

A workload builds one operation-generator per core against a concrete chip
(it allocates its shared data through the chip's allocator, so homes and
line padding are explicit).  Workloads are re-implementations of the
paper's benchmarks at the operation level: they reproduce the *structure*
that drives the paper's results -- how much computation and which memory
accesses happen between consecutive barriers (the "barrier period" of
Table 2), how data is shared between cores, and where locks are used.

Every workload takes a ``scale`` knob that divides iteration counts while
preserving per-iteration structure; Table 2's full-scale parameters are
recorded in each workload's :class:`WorkloadInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..common.errors import WorkloadError
from ..cpu import isa


@dataclass(frozen=True)
class WorkloadInfo:
    """Descriptive metadata mirroring a Table-2 row."""

    name: str
    input_size: str
    #: Barriers executed at the configured (possibly scaled) size.
    num_barriers: int
    #: Paper's full-scale barrier count (Table 2), for the report.
    paper_barriers: int
    #: Paper's measured barrier period in cycles (Table 2).
    paper_period: int


class Workload:
    """Base class: subclasses implement :meth:`programs`."""

    name = "abstract"

    def build(self, chip) -> list[Generator | None]:
        """Allocate data on *chip* and return one program per core."""
        progs = self.programs(chip)
        if len(progs) != chip.num_cores:
            raise WorkloadError(
                f"{self.name}: built {len(progs)} programs for "
                f"{chip.num_cores} cores")
        return progs

    def programs(self, chip) -> list[Generator | None]:
        raise NotImplementedError

    def info(self) -> WorkloadInfo:
        raise NotImplementedError

    def verify(self, chip) -> None:
        """Check the run's functional results against a reference.

        Workloads that seed real data (the kernels, OCEAN, EM3D) recompute
        the expected values with plain Python/NumPy and compare against the
        chip's functional memory after the run -- an end-to-end check that
        barrier/lock ordering and the coherent memory system delivered a
        correct dataflow.  Raises AssertionError on mismatch.  The default
        is a no-op for workloads without a deterministic reference.
        """


#: Modulus keeping seeded integer dataflows bounded (values stay exact in
#: both the simulated run and the NumPy/Python reference).
VALUE_MOD = 997


# ---------------------------------------------------------------------- #
# Partitioning helpers
# ---------------------------------------------------------------------- #
def chunk_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """Even block partition of ``range(n)``: bounds of chunk *index*."""
    if parts < 1 or not (0 <= index < parts):
        raise WorkloadError(f"bad partition request {index}/{parts}")
    base, extra = divmod(n, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def skewed_bounds(n: int, parts: int, index: int,
                  skew: float) -> tuple[int, int]:
    """Deliberately imbalanced block partition.

    ``skew`` in [0, 1): part 0 gets up to ``(1+skew)`` times the average
    share, decreasing linearly to ``(1-skew)`` for the last part.  Used by
    UNSTRUCTURED to reproduce the workload imbalance the paper identifies
    as the reason its barrier latency is S2-dominated.
    """
    if not (0 <= skew < 1):
        raise WorkloadError(f"skew must be in [0,1), got {skew}")
    if parts == 1:
        return 0, n
    weights = [1.0 + skew * (1 - 2 * i / (parts - 1)) for i in range(parts)]
    total = sum(weights)
    # Integer sizes preserving the total (largest-remainder rounding).
    raw = [n * w / total for w in weights]
    sizes = [int(x) for x in raw]
    remainder = n - sum(sizes)
    fracs = sorted(range(parts), key=lambda i: raw[i] - sizes[i],
                   reverse=True)
    for i in fracs[:remainder]:
        sizes[i] += 1
    lo = sum(sizes[:index])
    return lo, lo + sizes[index]


# ---------------------------------------------------------------------- #
# Common op-sequence fragments
# ---------------------------------------------------------------------- #
def vector_sweep(base_addrs: list[int], lo: int, hi: int,
                 stores: list[int] | None = None,
                 flops_per_elem: int = 2) -> Generator:
    """Load each of *base_addrs* at indices [lo, hi), do *flops_per_elem*
    cycles of work per element, optionally store to *stores* arrays."""
    for k in range(lo, hi):
        for base in base_addrs:
            yield isa.Load(base + 8 * k)
        if flops_per_elem:
            yield isa.Compute(flops_per_elem)
        for base in (stores or ()):
            yield isa.Store(base + 8 * k, k)
