"""Randomized stress workload.

Generates a seeded random mix of every operation type -- compute bursts,
private and shared loads/stores, atomics, lock-protected critical
sections, and barriers -- across all cores.  Used by the stress test-suite
to shake out protocol and synchronization corner cases that structured
benchmarks never reach, while remaining fully deterministic per seed.

The workload self-checks two invariants after the run (:meth:`verify`):

* every lock-protected counter equals the number of critical sections
  executed against it (no lost updates -> mutual exclusion held);
* every atomic counter equals the number of fetch&adds issued.
"""

from __future__ import annotations

import random
from typing import Generator

from ..common.errors import WorkloadError
from ..cpu import isa
from ..mem.address import WORD_BYTES
from .base import Workload, WorkloadInfo


class StressWorkload(Workload):
    """Deterministic random op-mix with self-checking counters."""

    name = "Stress"

    def __init__(self, ops_per_core: int = 120, barriers: int = 4,
                 shared_lines: int = 6, locks: int = 2, seed: int = 7):
        if ops_per_core < 1 or barriers < 0:
            raise WorkloadError("ops_per_core >= 1, barriers >= 0")
        if shared_lines < 1 or locks < 1:
            raise WorkloadError("need at least one shared line and lock")
        self.ops_per_core = ops_per_core
        self.barriers = barriers
        self.shared_lines = shared_lines
        self.locks = locks
        self.seed = seed
        self._cs_counts: dict[int, int] = {}
        self._atomic_counts: dict[int, int] = {}

    def programs(self, chip) -> list[Generator]:
        rng = random.Random(self.seed)
        ncores = chip.num_cores
        shared = [chip.allocator.alloc_line()
                  for _ in range(self.shared_lines)]
        self._lock_addrs = [chip.allocator.alloc_line()
                            for _ in range(self.locks)]
        self._lock_counters = [chip.allocator.alloc_line()
                               for _ in range(self.locks)]
        self._atomic_addrs = [chip.allocator.alloc_line()
                              for _ in range(self.shared_lines)]
        private = [chip.allocator.alloc_array(32) for _ in range(ncores)]
        self._cs_counts = {i: 0 for i in range(self.locks)}
        self._atomic_counts = {i: 0 for i in range(self.shared_lines)}

        # Pre-generate each core's op script (determinism: one rng, fixed
        # traversal order).
        scripts: list[list] = [[] for _ in range(ncores)]
        barrier_points = set()
        if self.barriers:
            step = self.ops_per_core // (self.barriers + 1)
            barrier_points = {step * (k + 1) for k in range(self.barriers)}
        for cid in range(ncores):
            for op_idx in range(self.ops_per_core):
                if op_idx in barrier_points:
                    scripts[cid].append(("barrier",))
                    continue
                roll = rng.random()
                if roll < 0.25:
                    scripts[cid].append(("compute",
                                         rng.randrange(1, 60)))
                elif roll < 0.45:
                    scripts[cid].append(("load_private",
                                         private[cid]
                                         + WORD_BYTES
                                         * rng.randrange(32)))
                elif roll < 0.60:
                    scripts[cid].append(("store_private",
                                         private[cid]
                                         + WORD_BYTES
                                         * rng.randrange(32),
                                         rng.randrange(1000)))
                elif roll < 0.72:
                    scripts[cid].append(("load_shared",
                                         rng.choice(shared)))
                elif roll < 0.80:
                    scripts[cid].append(("store_shared",
                                         rng.choice(shared),
                                         rng.randrange(1000)))
                elif roll < 0.90:
                    which = rng.randrange(self.shared_lines)
                    scripts[cid].append(("atomic", which))
                    self._atomic_counts[which] += 1
                else:
                    which = rng.randrange(self.locks)
                    scripts[cid].append(("critical", which,
                                         rng.randrange(1, 20)))
                    self._cs_counts[which] += 1

        def program(cid: int) -> Generator:
            for op in scripts[cid]:
                kind = op[0]
                if kind == "barrier":
                    yield isa.BarrierOp()
                elif kind == "compute":
                    yield isa.Compute(op[1])
                elif kind in ("load_private", "load_shared"):
                    yield isa.Load(op[1])
                elif kind in ("store_private", "store_shared"):
                    yield isa.Store(op[1], op[2])
                elif kind == "atomic":
                    yield isa.FetchAdd(self._atomic_addrs[op[1]], 1)
                else:  # critical section
                    _which, hold = op[1], op[2]
                    yield isa.AcquireLock(self._lock_addrs[_which])
                    value = yield isa.Load(self._lock_counters[_which])
                    yield isa.Compute(hold)
                    yield isa.Store(self._lock_counters[_which], value + 1)
                    yield isa.ReleaseLock(self._lock_addrs[_which])

        return [program(c) for c in range(ncores)]

    def verify(self, chip) -> None:
        for which, expected in self._cs_counts.items():
            got = chip.funcmem.load(self._lock_counters[which])
            assert got == expected, \
                f"lock {which}: {got} != {expected} critical sections"
        for which, expected in self._atomic_counts.items():
            got = chip.funcmem.load(self._atomic_addrs[which])
            assert got == expected, \
                f"atomic {which}: {got} != {expected} increments"
        for addr in self._lock_addrs:
            assert chip.funcmem.load(addr) == 0, "lock left held"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.ops_per_core} ops/core, seed {self.seed}",
            num_barriers=self.barriers,
            paper_barriers=0,
            paper_period=0,
        )
