"""The paper's benchmarks, re-implemented at the operation level."""

from .base import (
    Workload,
    WorkloadInfo,
    chunk_bounds,
    skewed_bounds,
    vector_sweep,
)
from .collective import (CollectiveAllReduceWorkload,
                         CollectiveSDCWorkload)
from .em3d import EM3DWorkload
from .fullscale import fullscale_benchmarks
from .livermore import Kernel2Workload, Kernel3Workload, Kernel6Workload
from .ocean import OceanWorkload
from .stress import StressWorkload
from .synthetic import SyntheticBarrierWorkload
from .unstructured import UnstructuredWorkload

__all__ = [
    "Workload", "WorkloadInfo", "chunk_bounds", "skewed_bounds",
    "vector_sweep",
    "CollectiveAllReduceWorkload",
    "CollectiveSDCWorkload",
    "EM3DWorkload",
    "fullscale_benchmarks",
    "Kernel2Workload", "Kernel3Workload", "Kernel6Workload",
    "OceanWorkload",
    "StressWorkload",
    "SyntheticBarrierWorkload",
    "UnstructuredWorkload",
]


def default_benchmarks(scale: float = 1.0) -> list[Workload]:
    """The six Table-2 benchmarks at bench-default (scaled) sizes.

    ``scale`` multiplies iteration/phase counts (values below 1 shrink the
    run); per-interval structure -- hence barrier period and traffic ratios
    -- is unchanged.
    """
    def s(x: int) -> int:
        return max(1, round(x * scale))

    return [
        SyntheticBarrierWorkload(iterations=s(250)),
        Kernel2Workload(iterations=s(40)),
        Kernel3Workload(iterations=s(200)),
        Kernel6Workload(iterations=s(4)),
        OceanWorkload(phases=s(12)),
        UnstructuredWorkload(phases=s(10)),
        EM3DWorkload(steps=s(8)),
    ]
