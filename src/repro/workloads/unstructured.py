"""UNSTRUCTURED-like computational fluid dynamics application.

UNSTRUCTURED (Mukherjee et al.) sweeps the edges and faces of an irregular
3D mesh, accumulating into node values; it synchronizes with barriers
between sweep phases and uses locks for reduction updates.  The paper
reports it barrier-poor (80 barriers, ~67k-cycle period) and -- key to its
results -- *imbalanced*, so barrier latency is dominated by the S2
(busy-wait) stage and a faster barrier network buys almost nothing.

Our re-implementation builds a random irregular mesh (via networkx, seeded
for determinism), partitions its edges across cores with a deliberate skew
(reproducing the imbalance), and runs lock-sprinkled edge sweeps separated
by barriers.
"""

from __future__ import annotations

from typing import Generator

import networkx as nx

from ..common.errors import WorkloadError
from ..cpu import isa
from ..mem.address import WORD_BYTES
from .base import Workload, WorkloadInfo, skewed_bounds


class UnstructuredWorkload(Workload):
    """Skew-partitioned irregular edge sweeps with locks."""

    name = "UNSTR"

    def __init__(self, nodes: int = 512, edge_factor: int = 4,
                 phases: int = 10, skew: float = 0.45,
                 flops_per_edge: int = 4, seed: int = 2010):
        if nodes < 8:
            raise WorkloadError("need at least 8 mesh nodes")
        if phases < 1:
            raise WorkloadError("phases must be >= 1")
        if edge_factor < 1:
            raise WorkloadError("edge_factor must be >= 1")
        self.nodes = nodes
        self.num_edges = nodes * edge_factor
        self.phases = phases
        self.skew = skew
        self.flops = flops_per_edge
        self.seed = seed
        graph = nx.gnm_random_graph(nodes, self.num_edges, seed=seed)
        self.edges: list[tuple[int, int]] = sorted(graph.edges())
        if not self.edges:
            raise WorkloadError("generated mesh has no edges")

    def programs(self, chip) -> list[Generator]:
        import random as _random
        rng = _random.Random(self.seed + 7)
        ncores = chip.num_cores
        node_vals = chip.allocator.alloc_array(self.nodes)
        node_acc = chip.allocator.alloc_array(self.nodes)
        chip.funcmem.store_array(
            node_vals, [rng.randrange(100) for _ in range(self.nodes)])
        self._reduction = chip.allocator.alloc_line(home=0)
        reduction = self._reduction
        reduction_lock = chip.allocator.alloc_line(home=0)
        nedges = len(self.edges)

        def program(cid: int) -> Generator:
            lo, hi = skewed_bounds(nedges, ncores, cid, self.skew)
            for _phase in range(self.phases):
                acc = 0
                for u, v in self.edges[lo:hi]:
                    # Irregular gather from both endpoints, scatter into
                    # the accumulation array (false/true sharing patterns
                    # arise naturally from the random mesh).
                    uv = yield isa.Load(node_vals + WORD_BYTES * u)
                    vv = yield isa.Load(node_vals + WORD_BYTES * v)
                    yield isa.Compute(self.flops)
                    yield isa.Store(node_acc + WORD_BYTES * u, uv + vv)
                    acc += 1
                # Lock-protected global reduction per phase.
                yield isa.AcquireLock(reduction_lock)
                value = yield isa.Load(reduction)
                yield isa.Store(reduction, value + acc)
                yield isa.ReleaseLock(reduction_lock)
                yield isa.BarrierOp()

        return [program(c) for c in range(chip.num_cores)]

    def verify(self, chip) -> None:
        """The per-node scatter is last-writer-wins (timing-dependent), so
        the verifiable result is the lock-protected reduction: each phase
        contributes exactly one count per edge."""
        expected = self.phases * len(self.edges)
        got = chip.funcmem.load(self._reduction)
        assert got == expected, \
            f"UNSTRUCTURED reduction {got} != {expected}"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"mesh {self.nodes}n/{len(self.edges)}e, "
                       f"{self.phases} phases, skew {self.skew}",
            num_barriers=self.phases,
            paper_barriers=80,
            paper_period=67_361,
        )
