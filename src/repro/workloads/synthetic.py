"""Synthetic barrier microbenchmark (Figure 5).

Follows the methodology the paper takes from Culler/Singh/Gupta:
"performance is measured as average time per barrier over a loop of four
consecutive barriers with no work or delays between them, with the loop
being executed 100,000 times".  The scaled default keeps the structure
(4 barriers per loop iteration) with fewer iterations.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import WorkloadError
from ..cpu import isa
from .base import Workload, WorkloadInfo


class SyntheticBarrierWorkload(Workload):
    """Back-to-back barriers; measures barrier latency itself."""

    name = "Synthetic"
    PAPER_ITERATIONS = 100_000

    def __init__(self, iterations: int = 250, barriers_per_iter: int = 4):
        if iterations < 1 or barriers_per_iter < 1:
            raise WorkloadError("iterations and barriers_per_iter >= 1")
        self.iterations = iterations
        self.barriers_per_iter = barriers_per_iter

    def programs(self, chip) -> list[Generator]:
        def program() -> Generator:
            for _ in range(self.iterations):
                for _ in range(self.barriers_per_iter):
                    yield isa.BarrierOp()

        return [program() for _ in range(chip.num_cores)]

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.iterations:,} iterations",
            num_barriers=self.iterations * self.barriers_per_iter,
            paper_barriers=400_000,
            paper_period=2_568,
        )
