"""EM3D: electromagnetic wave propagation on a bipartite graph (Split-C).

EM3D models E-field and H-field nodes in a bipartite dependency graph;
each time step updates every E node from its H dependencies, then every H
node from its E dependencies, with barriers separating the sweeps.  The
paper's configuration: 38,400 nodes, degree 2, 15% remote dependencies, 25
time steps, 198 barriers (≈8 per step), barrier period 3,673 cycles --
fine-grain enough that GL cuts its execution time by 54% and traffic by
51%.

Our re-implementation keeps the structure exactly: block-owned bipartite
node arrays, per-node dependency lists with a configurable remote
fraction (remote = owned by another core, so the load misses to a remote
L1/home), and each half-sweep split into chunks with a barrier after each
(``barriers_per_step`` total).
"""

from __future__ import annotations

import random
from typing import Generator

from ..common.errors import WorkloadError
from ..cpu import isa
from ..mem.address import WORD_BYTES
from .base import Workload, WorkloadInfo, chunk_bounds


class EM3DWorkload(Workload):
    """Bipartite E/H time-stepping with remote dependencies."""

    name = "EM3D"

    def __init__(self, nodes: int = 3840, degree: int = 2,
                 remote_frac: float = 0.15, steps: int = 8,
                 barriers_per_step: int = 8, flops_per_node: int = 4,
                 seed: int = 1993):
        if nodes < 16 or nodes % 2:
            raise WorkloadError("nodes must be an even number >= 16")
        if degree < 1:
            raise WorkloadError("degree must be >= 1")
        if not (0.0 <= remote_frac <= 1.0):
            raise WorkloadError("remote_frac must be in [0, 1]")
        if steps < 1 or barriers_per_step < 2 or barriers_per_step % 2:
            raise WorkloadError(
                "steps >= 1; barriers_per_step must be an even number >= 2")
        self.nodes = nodes
        self.half = nodes // 2
        self.degree = degree
        self.remote_frac = remote_frac
        self.steps = steps
        self.barriers_per_step = barriers_per_step
        self.chunks_per_half = barriers_per_step // 2
        self.flops = flops_per_node
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _deps(self, ncores: int) -> list[list[int]]:
        """Dependency lists: deps[i] are opposite-field node indices; a
        ``remote_frac`` share of them belongs to another core's block."""
        rng = random.Random(self.seed)
        deps: list[list[int]] = []
        for i in range(self.half):
            owner = self._owner_of(i, ncores)
            mine = []
            for _ in range(self.degree):
                if rng.random() < self.remote_frac and ncores > 1:
                    other = rng.randrange(ncores - 1)
                    if other >= owner:
                        other += 1
                    lo, hi = chunk_bounds(self.half, ncores, other)
                else:
                    lo, hi = chunk_bounds(self.half, ncores, owner)
                mine.append(rng.randrange(lo, hi) if hi > lo else 0)
            deps.append(mine)
        return deps

    def _owner_of(self, i: int, ncores: int) -> int:
        for c in range(ncores):
            lo, hi = chunk_bounds(self.half, ncores, c)
            if lo <= i < hi:
                return c
        return ncores - 1

    # ------------------------------------------------------------------ #
    def programs(self, chip) -> list[Generator]:
        rng = random.Random(self.seed + 1)
        ncores = chip.num_cores
        e_vals = chip.allocator.alloc_array(self.half)
        h_vals = chip.allocator.alloc_array(self.half)
        self._e0 = [rng.randrange(100) for _ in range(self.half)]
        self._h0 = [rng.randrange(100) for _ in range(self.half)]
        chip.funcmem.store_array(e_vals, self._e0)
        chip.funcmem.store_array(h_vals, self._h0)
        self._e_addr, self._h_addr = e_vals, h_vals
        self._e_deps = self._deps(ncores)   # E nodes read H values
        self._h_deps = self._deps(ncores)   # H nodes read E values

        def half_sweep(cid: int, own_vals: int, dep_vals: int,
                       deps: list[list[int]]) -> Generator:
            lo, hi = chunk_bounds(self.half, ncores, cid)
            span = hi - lo
            for chunk in range(self.chunks_per_half):
                clo, chi = chunk_bounds(span, self.chunks_per_half, chunk)
                for i in range(lo + clo, lo + chi):
                    total = 0
                    for dep in deps[i]:
                        total += yield isa.Load(dep_vals + WORD_BYTES * dep)
                    yield isa.Compute(self.flops)
                    yield isa.Store(own_vals + WORD_BYTES * i,
                                    total % 997)
                yield isa.BarrierOp()

        def program(cid: int) -> Generator:
            for _step in range(self.steps):
                yield from half_sweep(cid, e_vals, h_vals, self._e_deps)
                yield from half_sweep(cid, h_vals, e_vals, self._h_deps)

        return [program(c) for c in range(chip.num_cores)]

    # ------------------------------------------------------------------ #
    def reference_fields(self) -> tuple[list[int], list[int]]:
        """Expected final (E, H) node values."""
        e, h = list(self._e0), list(self._h0)
        for _ in range(self.steps):
            e = [sum(h[d] for d in self._e_deps[i]) % 997
                 for i in range(self.half)]
            h = [sum(e[d] for d in self._h_deps[i]) % 997
                 for i in range(self.half)]
        return e, h

    def verify(self, chip) -> None:
        ref_e, ref_h = self.reference_fields()
        got_e = chip.funcmem.load_array(self._e_addr, self.half)
        got_h = chip.funcmem.load_array(self._h_addr, self.half)
        assert got_e == ref_e, "EM3D E-field mismatch"
        assert got_h == ref_h, "EM3D H-field mismatch"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=(f"{self.nodes} nodes, degree {self.degree}, "
                        f"{self.remote_frac:.0%} remote, "
                        f"{self.steps} time steps"),
            num_barriers=self.steps * self.barriers_per_step,
            paper_barriers=198,
            paper_period=3_673,
        )
