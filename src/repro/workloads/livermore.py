"""Livermore Loops kernels 2, 3 and 6, parallelized with barriers.

The paper follows Sampson et al. in picking these three kernels: fine-grain
parallelism that is hard to exploit without cheap synchronization.

* **Kernel 2** -- excerpt from an incomplete Cholesky conjugate gradient
  (ICCG).  A reduction pyramid: each level halves the working set and
  every level ends in a barrier (log2(n) barriers per outer iteration;
  1,024 elements -> 10 levels, matching the paper's 10,000 barriers for
  1,000 iterations).  Level l's outputs are level l+1's inputs, producing
  cross-core sharing at chunk boundaries.
* **Kernel 3** -- inner product.  Each core accumulates a local partial
  over its (cached-after-first-iteration) slice and publishes it to a
  line-padded partial slot; one barrier per iteration.  Nearly all traffic
  this kernel generates comes from the barrier itself -- the property
  behind the paper's 99.82% traffic reduction.
* **Kernel 6** -- general linear recurrence.  Every output w[i] needs all
  previous w[k], so each step parallelizes the partial sums and a rotating
  reducer core combines them: one barrier per recurrence step (n-2 steps
  per iteration; 1,024 elements -> 1,022 barriers per iteration, matching
  the paper's 1,022,000 for 1,000 iterations).  The rotating writes to w[]
  invalidate every reader, generating the heavy coherence traffic that
  makes Kernel 6 the least-improved kernel in the paper.

All three seed real data and support :meth:`~repro.workloads.base.
Workload.verify`: after a run, the values the simulated chip produced are
checked against a plain-Python reference -- an end-to-end test that
coherence and synchronization delivered a correct dataflow.
"""

from __future__ import annotations

import random
from typing import Generator

from ..common.errors import WorkloadError
from ..cpu import isa
from ..mem.address import WORD_BYTES
from .base import VALUE_MOD, Workload, WorkloadInfo, chunk_bounds


def _check_pow2(n: int) -> None:
    if n < 4 or n & (n - 1):
        raise WorkloadError(f"element count must be a power of two >= 4, "
                            f"got {n}")


class Kernel2Workload(Workload):
    """ICCG reduction pyramid (Livermore Kernel 2)."""

    name = "KERN2"

    def __init__(self, n: int = 1024, iterations: int = 40,
                 flops_per_elem: int = 4, seed: int = 2):
        _check_pow2(n)
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        self.n = n
        self.iterations = iterations
        self.flops = flops_per_elem
        self.seed = seed
        # Level sizes: n/2, n/4, ..., 1.
        self.levels: list[int] = []
        size = n // 2
        while size >= 1:
            self.levels.append(size)
            size //= 2

    def programs(self, chip) -> list[Generator]:
        rng = random.Random(self.seed)
        # x holds the pyramid (n inputs followed by each level's outputs);
        # v holds the coefficients.
        total_words = self.n + sum(self.levels) + 2
        x = chip.allocator.alloc_array(total_words)
        v = chip.allocator.alloc_array(self.n + 2)
        self._x0 = [rng.randrange(VALUE_MOD) for _ in range(self.n)]
        self._v0 = [rng.randrange(VALUE_MOD) for _ in range(self.n)]
        chip.funcmem.store_array(x, self._x0)
        chip.funcmem.store_array(v, self._v0)
        self._x_addr = x
        ncores = chip.num_cores

        def program(cid: int) -> Generator:
            for _ in range(self.iterations):
                read_off = 0
                read_size = self.n
                for size in self.levels:
                    write_off = read_off + read_size
                    lo, hi = chunk_bounds(size, ncores, cid)
                    for k in range(lo, hi):
                        i = read_off + 2 * k
                        a = yield isa.Load(x + WORD_BYTES * i)
                        b = yield isa.Load(x + WORD_BYTES * (i + 1))
                        c = yield isa.Load(v + WORD_BYTES * k)
                        yield isa.Compute(self.flops)
                        out = (a - c * b) % VALUE_MOD
                        yield isa.Store(x + WORD_BYTES * (write_off + k),
                                        out)
                    yield isa.BarrierOp()
                    read_off = write_off
                    read_size = size

        return [program(c) for c in range(chip.num_cores)]

    def reference_pyramid(self) -> list[int]:
        """Expected contents of the whole pyramid array."""
        pyramid = list(self._x0)
        read_off = 0
        read_size = self.n
        for size in self.levels:
            out = [(pyramid[read_off + 2 * k]
                    - self._v0[k] * pyramid[read_off + 2 * k + 1])
                   % VALUE_MOD for k in range(size)]
            pyramid.extend(out)
            read_off += read_size
            read_size = size
        return pyramid

    def verify(self, chip) -> None:
        expected = self.reference_pyramid()
        got = chip.funcmem.load_array(self._x_addr, len(expected))
        assert got == expected, "Kernel 2 pyramid mismatch"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.n} elements, {self.iterations} iterations",
            num_barriers=self.iterations * len(self.levels),
            paper_barriers=10_000,
            paper_period=3_103,
        )


class Kernel3Workload(Workload):
    """Inner product (Livermore Kernel 3)."""

    name = "KERN3"

    def __init__(self, n: int = 1024, iterations: int = 200,
                 flops_per_elem: int = 2, seed: int = 3):
        _check_pow2(n)
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        self.n = n
        self.iterations = iterations
        self.flops = flops_per_elem
        self.seed = seed

    def programs(self, chip) -> list[Generator]:
        rng = random.Random(self.seed)
        z = chip.allocator.alloc_array(self.n)
        x = chip.allocator.alloc_array(self.n)
        self._z0 = [rng.randrange(100) for _ in range(self.n)]
        self._x0 = [rng.randrange(100) for _ in range(self.n)]
        chip.funcmem.store_array(z, self._z0)
        chip.funcmem.store_array(x, self._x0)
        ncores = chip.num_cores
        partials = [chip.allocator.alloc_line(home=c % ncores)
                    for c in range(ncores)]
        self._result_addr = chip.allocator.alloc_line(home=0)

        def program(cid: int) -> Generator:
            lo, hi = chunk_bounds(self.n, ncores, cid)
            acc = 0
            for _ in range(self.iterations):
                acc = 0
                for k in range(lo, hi):
                    zv = yield isa.Load(z + WORD_BYTES * k)
                    xv = yield isa.Load(x + WORD_BYTES * k)
                    yield isa.Compute(self.flops)
                    acc += zv * xv
                # Publish the partial to this core's own padded line (stays
                # modified in the local L1: no traffic after the first
                # iteration).
                yield isa.Store(partials[cid], acc)
                yield isa.BarrierOp()
            if cid == 0:
                # Final reduction, once.
                total = 0
                for c in range(ncores):
                    total += yield isa.Load(partials[c])
                yield isa.Compute(ncores)
                yield isa.Store(self._result_addr, total)

        return [program(c) for c in range(chip.num_cores)]

    def verify(self, chip) -> None:
        expected = sum(zi * xi for zi, xi in zip(self._z0, self._x0))
        got = chip.funcmem.load(self._result_addr)
        assert got == expected, \
            f"Kernel 3 dot product mismatch: {got} != {expected}"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.n} elements, {self.iterations} iterations",
            num_barriers=self.iterations,
            paper_barriers=1_000,
            paper_period=2_862,
        )


class Kernel6Workload(Workload):
    """General linear recurrence (Livermore Kernel 6)."""

    name = "KERN6"

    def __init__(self, n: int = 128, iterations: int = 4,
                 flops_per_elem: int = 2, seed: int = 6):
        _check_pow2(n)
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        self.n = n
        self.iterations = iterations
        self.flops = flops_per_elem
        self.seed = seed

    def programs(self, chip) -> list[Generator]:
        rng = random.Random(self.seed)
        w = chip.allocator.alloc_array(self.n)
        b = chip.allocator.alloc_array(self.n)
        self._w0 = [rng.randrange(VALUE_MOD), rng.randrange(VALUE_MOD)]
        self._b0 = [rng.randrange(VALUE_MOD) for _ in range(self.n)]
        chip.funcmem.store_array(w, self._w0)
        chip.funcmem.store_array(b, self._b0)
        self._w_addr = w
        ncores = chip.num_cores
        # Double-buffered partial slots (by step parity): the reducer of
        # step i reads its buffer *after* barrier i, concurrently with the
        # other cores producing step i+1's partials -- which therefore go
        # to the other buffer.
        partials = [[chip.allocator.alloc_line(home=c % ncores)
                     for c in range(ncores)] for _parity in range(2)]

        def program(cid: int) -> Generator:
            for _ in range(self.iterations):
                for i in range(2, self.n):
                    # Partial sums over w[0 .. i-2]; the reducer handles the
                    # freshly-written w[i-1] term itself, so no core reads a
                    # value written after the previous barrier.
                    lo, hi = chunk_bounds(i - 1, ncores, cid)
                    acc = 0
                    for k in range(lo, hi):
                        wv = yield isa.Load(w + WORD_BYTES * k)
                        yield isa.Compute(self.flops)
                        acc += wv
                    yield isa.Store(partials[i % 2][cid], acc)
                    yield isa.BarrierOp()
                    if cid == i % ncores:
                        # Rotating reducer: combine partials and produce
                        # w[i] (invalidating every reader of that line).
                        total = 0
                        for c in range(ncores):
                            total += yield isa.Load(partials[i % 2][c])
                        total += yield isa.Load(w + WORD_BYTES * (i - 1))
                        total += yield isa.Load(b + WORD_BYTES * i)
                        yield isa.Compute(self.flops)
                        yield isa.Store(w + WORD_BYTES * i,
                                        total % VALUE_MOD)

        return [program(c) for c in range(chip.num_cores)]

    def reference_w(self) -> list[int]:
        """Expected final w[] after all iterations."""
        w = list(self._w0) + [0] * (self.n - 2)
        for _ in range(self.iterations):
            for i in range(2, self.n):
                w[i] = (sum(w[:i]) + self._b0[i]) % VALUE_MOD
        return w

    def verify(self, chip) -> None:
        expected = self.reference_w()
        got = chip.funcmem.load_array(self._w_addr, self.n)
        assert got == expected, "Kernel 6 recurrence mismatch"

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=f"{self.n} elements, {self.iterations} iterations",
            num_barriers=self.iterations * (self.n - 2),
            paper_barriers=1_022_000,
            paper_period=4_908,
        )
