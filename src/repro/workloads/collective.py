"""All-reduce workload driving the collective subsystem end to end.

Each core contributes a deterministic per-episode operand to a rotating
sequence of collective kinds (:data:`repro.collectives.ops.KINDS`), folds
every delivered result into a running checksum, and stores the checksum
to its own padded line at the end.  :meth:`verify` recomputes the
expected checksum from :func:`~repro.collectives.ops.reference_reduce`,
so a run only verifies if *every* episode delivered the bit-exact
reduction value to *every* core -- over the G-line fabric, the software
NoC fallback, or a mid-run failover between the two.
"""

from __future__ import annotations

from typing import Generator

from ..collectives import ops
from ..common.errors import WorkloadError
from ..cpu import isa
from .base import Workload, WorkloadInfo

#: Checksum fold modulus (fits comfortably in a simulated word).
_CHECK_MOD = 1 << 31


class CollectiveAllReduceWorkload(Workload):
    """Back-to-back all-reduce episodes with verified results.

    The chip must be configured with ``config.collectives.enabled`` --
    the workload reduces over whatever backend that config selects
    (``gl`` fabric, hierarchical, time-multiplexed or ``sw``), which is
    exactly what makes it the shootout's common yardstick.
    """

    name = "COLL"

    def __init__(self, iterations: int = 32,
                 kinds: tuple[str, ...] = ops.KINDS,
                 compute_grain: int = 3):
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in ops.KINDS:
                raise WorkloadError(f"unknown collective kind {kind!r}")
        if not kinds:
            raise WorkloadError("kinds must be non-empty")
        if compute_grain < 0:
            raise WorkloadError("compute_grain must be >= 0")
        self.iterations = iterations
        self.kinds = kinds
        self.compute_grain = compute_grain

    # ------------------------------------------------------------------ #
    def _kind(self, ep: int) -> str:
        return self.kinds[ep % len(self.kinds)]

    @staticmethod
    def _value(cid: int, ep: int, width: int) -> int:
        """Deterministic operand: varies per core and episode, exercises
        several bit patterns across the configured value width."""
        return (cid * 7 + ep * 3 + 1) % (1 << width)

    def programs(self, chip) -> list[Generator]:
        cc = chip.config.collectives
        if not cc.enabled:
            raise WorkloadError(
                f"{self.name} needs config.collectives.enabled=True")
        width = cc.value_width
        ncores = chip.num_cores
        self._check_addrs = [chip.allocator.alloc_line(home=c)
                             for c in range(ncores)]
        # Reference results per episode (same for every core).
        refs = []
        for ep in range(self.iterations):
            vals = [self._value(c, ep, width) for c in range(ncores)]
            refs.append(ops.reference_reduce(self._kind(ep), vals, width))
        expected = 0
        for ref in refs:
            expected = (expected * 1009 + int(ref) + 1) % _CHECK_MOD
        self._expected = expected

        def program(cid: int) -> Generator:
            acc = 0
            for ep in range(self.iterations):
                value = self._value(cid, ep, width)
                result = yield isa.CollectiveOp(self._kind(ep), value=value)
                acc = (acc * 1009 + int(result) + 1) % _CHECK_MOD
                if self.compute_grain:
                    # Uneven local work staggers the next episode's
                    # arrivals (the interesting interleavings).
                    yield isa.Compute(1 + (cid + ep) % self.compute_grain)
            yield isa.Store(self._check_addrs[cid], acc)

        return [program(c) for c in range(ncores)]

    def verify(self, chip) -> None:
        for cid, addr in enumerate(self._check_addrs):
            got = chip.funcmem.load(addr)
            assert got == self._expected, \
                (f"collective checksum mismatch on core {cid}: "
                 f"{got} != {self._expected}")

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(
            name=self.name,
            input_size=(f"{self.iterations} episodes x "
                        f"{len(self.kinds)} kinds"),
            num_barriers=0,
            paper_barriers=0,
            paper_period=0,
        )


class CollectiveSDCWorkload(CollectiveAllReduceWorkload):
    """All-reduce episodes that *count* wrong results instead of asserting.

    The silent-data-corruption sweep needs runs that complete under
    injected miscounts and report how many delivered values were wrong --
    an assertion would abort the very runs the experiment exists to
    measure.  Each core compares every delivered result against the
    precomputed reference and bumps two chip counters:

    * ``workload.collective.episodes_checked`` -- results delivered;
    * ``workload.collective.wrong_values`` -- results that mismatched
      (the undetected-wrong-value count, i.e. observed SDC).

    Counters live in the run's :class:`~repro.common.stats.StatsRegistry`,
    so the workload stays cache-routable through :mod:`repro.exec`.
    """

    name = "COLL-SDC"

    def programs(self, chip) -> list[Generator]:
        cc = chip.config.collectives
        if not cc.enabled:
            raise WorkloadError(
                f"{self.name} needs config.collectives.enabled=True")
        width = cc.value_width
        ncores = chip.num_cores
        stats = chip.stats
        refs = []
        for ep in range(self.iterations):
            vals = [self._value(c, ep, width) for c in range(ncores)]
            refs.append(ops.reference_reduce(self._kind(ep), vals, width))

        def program(cid: int) -> Generator:
            for ep in range(self.iterations):
                value = self._value(cid, ep, width)
                result = yield isa.CollectiveOp(self._kind(ep), value=value)
                stats.bump("workload.collective.episodes_checked")
                if result != refs[ep]:
                    stats.bump("workload.collective.wrong_values")
                if self.compute_grain:
                    yield isa.Compute(1 + (cid + ep) % self.compute_grain)

        return [program(c) for c in range(ncores)]

    def verify(self, chip) -> None:
        """Counting, not asserting: wrong values are the measurement."""
