"""Full-scale (Table 2 exact) benchmark configurations.

These are the paper's actual input sizes.  They are *expensive* under a
Python timing simulator (Kernel 6 alone executes 1,022,000 barriers); the
shipped benches default to scaled configurations instead (DESIGN.md §6).
Use these for overnight validation runs::

    from repro.workloads.fullscale import fullscale_benchmarks
    for wl in fullscale_benchmarks():
        ...

Estimated event counts at 32 cores are given per benchmark so users can
budget runtime (the event engine executes a few hundred thousand events
per second on commodity hardware).
"""

from __future__ import annotations

from .em3d import EM3DWorkload
from .livermore import Kernel2Workload, Kernel3Workload, Kernel6Workload
from .ocean import OceanWorkload
from .synthetic import SyntheticBarrierWorkload
from .unstructured import UnstructuredWorkload


def fullscale_synthetic() -> SyntheticBarrierWorkload:
    """100,000 iterations x 4 barriers = 400,000 barriers."""
    return SyntheticBarrierWorkload(iterations=100_000)


def fullscale_kernel2() -> Kernel2Workload:
    """1,024 elements, 1,000 iterations -> 10,000 barriers."""
    return Kernel2Workload(n=1024, iterations=1000)


def fullscale_kernel3() -> Kernel3Workload:
    """1,024 elements, 1,000 iterations -> 1,000 barriers."""
    return Kernel3Workload(n=1024, iterations=1000)


def fullscale_kernel6() -> Kernel6Workload:
    """1,024 elements, 1,000 iterations -> 1,022,000 barriers."""
    return Kernel6Workload(n=1024, iterations=1000)


def fullscale_ocean() -> OceanWorkload:
    """258x258 ocean; 364 barrier-separated phases."""
    return OceanWorkload(grid=258, phases=364)


def fullscale_unstructured() -> UnstructuredWorkload:
    """Mesh.2K-scale irregular mesh, one time step, 80 phases."""
    return UnstructuredWorkload(nodes=2048, edge_factor=8, phases=80)


def fullscale_em3d() -> EM3DWorkload:
    """38,400 nodes, degree 2, 15% remote, 25 steps (~198 barriers)."""
    return EM3DWorkload(nodes=38_400, degree=2, remote_frac=0.15,
                        steps=25, barriers_per_step=8)


def fullscale_benchmarks():
    """All seven Table-2 benchmarks at the paper's exact sizes."""
    return [
        fullscale_synthetic(),
        fullscale_kernel2(),
        fullscale_kernel3(),
        fullscale_kernel6(),
        fullscale_ocean(),
        fullscale_unstructured(),
        fullscale_em3d(),
    ]
