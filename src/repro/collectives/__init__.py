"""Collective operations on the G-line fabric (reduce / broadcast /
all-reduce), the subsystem grown around the barrier network's S-CSMA
counting wires."""

from .build import build_collective_contexts, total_wires
from .config import CollectiveConfig
from .controllers import MUTATIONS, StageMaster, StageSlave
from .fabric import CollectiveFabric
from .hierarchical import HierarchicalCollectiveNetwork
from .library import CollectiveImpl, GLCollective, SoftwareAllReduce
from .network import CollectiveNetwork
from .ops import (
    COMBINE_KIND, KINDS, MECHANISM, reference_reduce, result_width,
)
from .timemux import CollectiveSlotContext, build_time_multiplexed

__all__ = [
    "COMBINE_KIND",
    "CollectiveConfig",
    "CollectiveFabric",
    "CollectiveImpl",
    "CollectiveNetwork",
    "CollectiveSlotContext",
    "GLCollective",
    "HierarchicalCollectiveNetwork",
    "KINDS",
    "MECHANISM",
    "MUTATIONS",
    "SoftwareAllReduce",
    "StageMaster",
    "StageSlave",
    "build_collective_contexts",
    "build_time_multiplexed",
    "reference_reduce",
    "result_width",
    "total_wires",
]
