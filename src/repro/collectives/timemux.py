"""Time-multiplexed collective contexts (shared physical wire budget).

The same scheme as :mod:`repro.gline.timemux`: ``time_slots`` logical
contexts share one network's physical wires by dividing the clock into
recurring slots -- context *s* drives and samples only in cycles
congruent to *s* modulo ``time_slots``.  Behaviourally, each context is
a :class:`~repro.collectives.network.CollectiveNetwork` whose
``line_latency`` equals the slot period, with arrivals aligned to the
context's slot phase.  Reduction rounds therefore take ``time_slots``
cycles each, but the wire budget stays that of a single fabric no
matter how many collectives are in flight.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

from ..common.errors import ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..sim.engine import Engine
from .config import CollectiveConfig
from .fabric import CollectiveFabric
from .network import CollectiveNetwork


class CollectiveSlotContext:
    """One logical collective context bound to a recurring time slot.

    Exposes the same ``arrive`` interface as a plain network, so it
    plugs into :class:`~repro.collectives.library.GLCollective`.
    """

    def __init__(self, net: CollectiveNetwork, slot: int, num_slots: int,
                 engine: Engine):
        self.net = net
        self.slot = slot
        self.num_slots = num_slots
        self.engine = engine

    def arrive(self, core_id: int, kind: str, value: int, resume) -> None:
        """Align the col_reg write so it becomes visible in our slot."""
        write = self.net.gl_config.barreg_write_cycles
        visible = self.engine.now + write
        align = (self.slot - visible) % self.num_slots
        if align:
            self.engine.schedule(align, self.net.arrive, core_id, kind,
                                 value, resume)
        else:
            self.net.arrive(core_id, kind, value, resume)

    # Pass-throughs used by GLCollective / reports / tests.
    @property
    def num_cores(self) -> int:
        return self.net.num_cores

    @property
    def num_glines(self) -> int:
        return self.net.num_glines

    @property
    def fabric(self) -> CollectiveFabric:
        return self.net.fabric

    @property
    def collectives_completed(self) -> int:
        return self.net.collectives_completed

    @property
    def quarantined(self) -> bool:
        return self.net.quarantined

    @property
    def detections(self) -> int:
        return self.net.detections

    @property
    def retries(self) -> int:
        return self.net.retries

    @property
    def failovers(self) -> int:
        return self.net.failovers

    @property
    def failover_reports(self) -> "deque[str]":
        return self.net.failover_reports

    @property
    def int_detections(self) -> int:
        return self.net.int_detections

    @property
    def int_round_retries(self) -> int:
        return self.net.int_round_retries

    @property
    def int_corrections(self) -> int:
        return self.net.int_corrections

    @property
    def int_op_retries(self) -> int:
        return self.net.int_op_retries

    @property
    def int_failovers(self) -> int:
        return self.net.int_failovers

    @property
    def integrity_log(self) -> "deque[str]":
        return self.net.integrity_log

    def set_injector(self, injector) -> None:
        self.net.set_injector(injector)

    def set_stats(self, stats: StatsRegistry) -> None:
        self.net.set_stats(stats)

    def set_obs(self, obs) -> None:
        self.net.set_obs(obs)

    def fully_idle(self) -> bool:
        return self.net.fully_idle()


def build_time_multiplexed(engine: Engine, stats: StatsRegistry,
                           rows: int, cols: int,
                           gl_config: GLineConfig | None = None,
                           coll_config: CollectiveConfig | None = None,
                           name: str = "colltm"
                           ) -> list[CollectiveSlotContext]:
    """Build ``coll_config.time_slots`` logical contexts sharing one
    physical fabric's wire budget, indexable by ``CollectiveOp.ident``."""
    gl_config = gl_config or GLineConfig()
    coll_config = coll_config or CollectiveConfig()
    num_slots = coll_config.time_slots
    if num_slots < 1:
        raise ConfigError("time_slots must be >= 1 to time-multiplex")
    slot_gl = replace(gl_config,
                      line_latency=gl_config.line_latency * num_slots)
    contexts = []
    for slot in range(num_slots):
        net = CollectiveNetwork(engine, stats, rows, cols, slot_gl,
                                coll_config, name=f"{name}.s{slot}")
        contexts.append(CollectiveSlotContext(
            net, slot * gl_config.line_latency,
            num_slots * gl_config.line_latency, engine))
    return contexts


def physical_wires(contexts: list[CollectiveSlotContext]) -> int:
    """The shared physical wire count (one fabric, not per-context)."""
    return contexts[0].num_glines if contexts else 0
