"""Two-level hierarchical collective network for meshes beyond 7x7.

Mirrors :mod:`repro.gline.hierarchical`: the mesh is partitioned into
clusters of at most ``max_transmitters + 1`` per dimension, each with its
own :class:`~repro.collectives.network.CollectiveNetwork` built in
``hold_result`` mode, plus a *top* network spanning the cluster grid
(one participant per cluster -- its (0,0) *root* core).

The reduction recursion is the same ``COMBINE_KIND`` composition the
flat fabric uses between its row and column stages, one level up:

* a cluster reduces its cores' operands with kind *k* and parks the
  partial (``on_reduced``);
* the root arrives at the top network with kind ``COMBINE_KIND[k]`` and
  the partial as its operand (the top fabric's operand width is sized
  for the widest possible cluster partial);
* the top result is chip-global; each root's resume hands it back here,
  which resumes the root core and opens the cluster's local broadcast
  (``open_result``) framed at the global width the clusters were told
  at ``begin`` time (``bcast_width_fn``).

Fault containment is whole-operation: if any cluster or the top network
fails over, every waiting core of the episode is bounced with
``FAILOVER`` and the library completes the operation as one software
cohort -- splitting one collective between hardware and software could
deliver different values to different cores.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import chain

from ..common.errors import CapacityError, ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..faults import FAILOVER
from ..gline.hierarchical import partition
from ..sim.component import Component
from ..sim.engine import Engine
from . import ops
from .config import CollectiveConfig
from .network import CollectiveNetwork


class HierarchicalCollectiveNetwork(Component):
    """Two-level collective network; same ``arrive`` interface as the
    flat :class:`~repro.collectives.network.CollectiveNetwork`."""

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, gl_config: GLineConfig | None = None,
                 coll_config: CollectiveConfig | None = None,
                 name: str = "collh"):
        super().__init__(engine, stats, name)
        self.gl_config = gl_config or GLineConfig()
        self.coll_config = coll_config or CollectiveConfig()
        self.rows = rows
        self.cols = cols
        self.num_cores = rows * cols
        max_dim = self.gl_config.max_transmitters + 1
        row_chunks = partition(rows, max_dim)
        col_chunks = partition(cols, max_dim)
        self.cluster_rows = len(row_chunks)
        self.cluster_cols = len(col_chunks)
        if self.cluster_rows > max_dim or self.cluster_cols > max_dim:
            raise CapacityError(
                f"{rows}x{cols} needs more than {max_dim}x{max_dim} "
                f"clusters; a deeper hierarchy is not implemented")

        w = self.coll_config.value_width
        max_nc = max(rl for _, rl in row_chunks) * \
            max(cl for _, cl in col_chunks)
        #: Top-level operand width: sized for the widest cluster partial
        #: any kind can produce (SUM over the largest cluster).
        self.top_width = ops.stage_result_width("sum", w, max_nc)
        if self.top_width > 64:
            raise ConfigError(
                f"value_width {w} leaves no headroom for cluster SUM "
                f"partials on a {rows}x{cols} mesh (needs "
                f"{self.top_width} bits at the top level); reduce "
                f"CollectiveConfig.value_width")

        self.clusters: list[CollectiveNetwork] = []
        self._cluster_of: dict[int, CollectiveNetwork] = {}
        root_ids: list[int] = []
        for ri, (r0, rl) in enumerate(row_chunks):
            for ci, (c0, cl) in enumerate(col_chunks):
                ids = [(r0 + r) * cols + (c0 + c)
                       for r in range(rl) for c in range(cl)]
                cl_net = CollectiveNetwork(
                    engine, stats, rl, cl, self.gl_config,
                    self.coll_config, name=f"{name}.c{ri}_{ci}",
                    core_ids=ids, hold_result=True)
                cl_net.bcast_width_fn = self._global_bw
                cl_net.on_reduced = \
                    lambda partial, n=cl_net: self._cluster_reduced(
                        n, partial)
                cl_net.on_failover = self.failover
                self.clusters.append(cl_net)
                for cid in ids:
                    self._cluster_of[cid] = cl_net
                root_ids.append(ids[0])

        top_coll = replace(self.coll_config, value_width=self.top_width)
        self.top = CollectiveNetwork(
            engine, stats, self.cluster_rows, self.cluster_cols,
            self.gl_config, top_coll, name=f"{name}.top",
            core_ids=root_ids)
        self.top.on_failover = self.failover

        self.quarantined = False
        self.failovers = 0
        self._failing = False

    # ------------------------------------------------------------------ #
    def _global_bw(self, kind: str) -> int:
        """Broadcast framing of the chip-global result -- identical to
        the width the top fabric computes for its own broadcast, so the
        cluster rebroadcast carries every bit."""
        k2 = ops.COMBINE_KIND[kind]
        return ops.result_width(k2, self.top_width, self.cluster_rows,
                                self.cluster_cols)

    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, kind: str, value: int, resume) -> None:
        self._cluster_of[core_id].arrive(core_id, kind, value, resume)

    def _cluster_reduced(self, cluster: CollectiveNetwork,
                         partial: int) -> None:
        """A cluster parked its partial: its root joins the top level."""
        kind = cluster._kind
        assert kind is not None
        self.top.arrive(
            cluster.core_ids[0], ops.COMBINE_KIND[kind], partial,
            lambda outcome=None, n=cluster: self._top_resumed(n, outcome))

    def _top_resumed(self, cluster: CollectiveNetwork, outcome) -> None:
        if outcome == FAILOVER:
            self.failover()
            return
        cluster.open_result(outcome)

    # ------------------------------------------------------------------ #
    def failover(self) -> None:
        """Whole-operation abort: one software cohort for the episode."""
        if self._failing or self.quarantined:
            return
        self._failing = True
        self.quarantined = True
        self.failovers += 1
        self.fault_stats.bump("faults.collective.segment_aborts")
        if not self.top.quarantined:
            self.top.failover(reason="hierarchical abort")
        for cl_net in self.clusters:
            cl_net.abort_episode()
        self._failing = False

    # ------------------------------------------------------------------ #
    @property
    def fault_stats(self) -> StatsRegistry:
        return self.stats

    @property
    def num_glines(self) -> int:
        return self.top.num_glines + sum(c.num_glines
                                         for c in self.clusters)

    @property
    def collectives_completed(self) -> int:
        return self.top.collectives_completed

    @property
    def detections(self) -> int:
        return self.top.detections + sum(c.detections
                                         for c in self.clusters)

    @property
    def retries(self) -> int:
        return self.top.retries + sum(c.retries for c in self.clusters)

    @property
    def failover_reports(self) -> list[str]:
        return list(chain(self.top.failover_reports,
                          *(c.failover_reports for c in self.clusters)))

    def set_injector(self, injector) -> None:
        self.top.set_injector(injector)
        for c in self.clusters:
            c.set_injector(injector)

    def set_stats(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self.top.set_stats(stats)
        for c in self.clusters:
            c.set_stats(stats)

    def set_obs(self, obs) -> None:
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self.top.set_obs(obs)
        for c in self.clusters:
            c.set_obs(obs)

    def fully_idle(self) -> bool:
        return self.top.fully_idle() and all(c.fully_idle()
                                             for c in self.clusters)
