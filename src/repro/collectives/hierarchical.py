"""Two-level hierarchical collective network for meshes beyond 7x7.

Mirrors :mod:`repro.gline.hierarchical`: the mesh is partitioned into
clusters of at most ``max_transmitters + 1`` per dimension, each with its
own :class:`~repro.collectives.network.CollectiveNetwork` built in
``hold_result`` mode, plus a *top* network spanning the cluster grid
(one participant per cluster -- its (0,0) *root* core).

The reduction recursion is the same ``COMBINE_KIND`` composition the
flat fabric uses between its row and column stages, one level up:

* a cluster reduces its cores' operands with kind *k* and parks the
  partial (``on_reduced``);
* the root arrives at the top network with kind ``COMBINE_KIND[k]`` and
  the partial as its operand (the top fabric's operand width is sized
  for the widest possible cluster partial);
* the top result is chip-global; each root's resume hands it back here,
  which resumes the root core and opens the cluster's local broadcast
  (``open_result``) framed at the global width the clusters were told
  at ``begin`` time (``bcast_width_fn``).

Fault containment is whole-operation by default: if any cluster or the
top network fails over, every waiting core of the episode is bounced
with ``FAILOVER`` and the library completes the operation as one
software cohort -- splitting one collective between hardware and
software could deliver different values to different cores.

With ``GLineConfig.segment_failover`` the containment is per *segment*,
mirroring the barrier network's segment machinery: a cluster that fails
before any of its cores saw a result keeps the rest of the chip on
hardware.  The failed cluster's cores form a software cohort whose
operands are combined over the NoC (modelled latency
``entry_overhead + 2 * (rows + cols)`` per leg, the barrier's segment
cost); the cohort's combined partial arrives at the top network through
the cluster's root slot, and the chip-global result is scattered back
to the cohort.  A cluster that already delivered results (or parked a
partial the top consumed) still aborts the whole operation -- splitting
*that* episode could not keep values coherent.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import chain

from ..common.errors import CapacityError, ConfigError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..faults import FAILOVER
from ..gline.hierarchical import partition
from ..sim.component import Component
from ..sim.engine import Engine
from . import ops
from .config import CollectiveConfig
from .network import CollectiveNetwork


class HierarchicalCollectiveNetwork(Component):
    """Two-level collective network; same ``arrive`` interface as the
    flat :class:`~repro.collectives.network.CollectiveNetwork`."""

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, gl_config: GLineConfig | None = None,
                 coll_config: CollectiveConfig | None = None,
                 name: str = "collh"):
        super().__init__(engine, stats, name)
        self.gl_config = gl_config or GLineConfig()
        self.coll_config = coll_config or CollectiveConfig()
        self.rows = rows
        self.cols = cols
        self.num_cores = rows * cols
        max_dim = self.gl_config.max_transmitters + 1
        row_chunks = partition(rows, max_dim)
        col_chunks = partition(cols, max_dim)
        self.cluster_rows = len(row_chunks)
        self.cluster_cols = len(col_chunks)
        if self.cluster_rows > max_dim or self.cluster_cols > max_dim:
            raise CapacityError(
                f"{rows}x{cols} needs more than {max_dim}x{max_dim} "
                f"clusters; a deeper hierarchy is not implemented")

        w = self.coll_config.value_width
        max_nc = max(rl for _, rl in row_chunks) * \
            max(cl for _, cl in col_chunks)
        #: Top-level operand width: sized for the widest cluster partial
        #: any kind can produce (SUM over the largest cluster).
        self.top_width = ops.stage_result_width("sum", w, max_nc)
        if self.top_width > 64:
            raise ConfigError(
                f"value_width {w} leaves no headroom for cluster SUM "
                f"partials on a {rows}x{cols} mesh (needs "
                f"{self.top_width} bits at the top level); reduce "
                f"CollectiveConfig.value_width")

        self.segment_mode = self.gl_config.segment_failover
        self.clusters: list[CollectiveNetwork] = []
        self._cluster_of: dict[int, CollectiveNetwork] = {}
        #: Per-cluster software-cohort state (segment_failover mode):
        #: the pending (value, resume) pairs of the open episode, its
        #: kind, and the modelled NoC combine/scatter leg latency.
        self._segments: dict[str, dict] = {}
        root_ids: list[int] = []
        for ri, (r0, rl) in enumerate(row_chunks):
            for ci, (c0, cl) in enumerate(col_chunks):
                ids = [(r0 + r) * cols + (c0 + c)
                       for r in range(rl) for c in range(cl)]
                cl_net = CollectiveNetwork(
                    engine, stats, rl, cl, self.gl_config,
                    self.coll_config, name=f"{name}.c{ri}_{ci}",
                    core_ids=ids, hold_result=True)
                cl_net.bcast_width_fn = self._global_bw
                cl_net.on_reduced = \
                    lambda partial, n=cl_net: self._cluster_reduced(
                        n, partial)
                cl_net.on_failover = \
                    lambda n=cl_net: self._cluster_failed(n)
                self.clusters.append(cl_net)
                self._segments[cl_net.name] = {
                    "pend": [], "kind": None,
                    "latency": self.gl_config.entry_overhead
                    + 2 * (rl + cl)}
                for cid in ids:
                    self._cluster_of[cid] = cl_net
                root_ids.append(ids[0])

        top_coll = replace(self.coll_config, value_width=self.top_width)
        self.top = CollectiveNetwork(
            engine, stats, self.cluster_rows, self.cluster_cols,
            self.gl_config, top_coll, name=f"{name}.top",
            core_ids=root_ids)
        self.top.on_failover = self.failover

        self.quarantined = False
        self.failovers = 0
        self.segment_failovers = 0
        self._failing = False

    # ------------------------------------------------------------------ #
    def _global_bw(self, kind: str) -> int:
        """Broadcast framing of the chip-global result -- identical to
        the width the top fabric computes for its own broadcast, so the
        cluster rebroadcast carries every bit."""
        k2 = ops.COMBINE_KIND[kind]
        return ops.result_width(k2, self.top_width, self.cluster_rows,
                                self.cluster_cols)

    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, kind: str, value: int, resume) -> None:
        cluster = self._cluster_of[core_id]
        if self.segment_mode and not self.quarantined:
            if cluster.quarantined and not self.top.quarantined:
                # The cluster is retired but the chip is healthy: its
                # cores join the software cohort directly.
                self._segment_arrive(cluster, kind, value, resume)
                return
            resume = self._wrap_segment(cluster, kind, value, resume)
        cluster.arrive(core_id, kind, value, resume)

    def _cluster_reduced(self, cluster: CollectiveNetwork,
                         partial: int) -> None:
        """A cluster parked its partial: its root joins the top level."""
        kind = cluster._kind
        assert kind is not None
        self.top.arrive(
            cluster.core_ids[0], ops.COMBINE_KIND[kind], partial,
            lambda outcome=None, n=cluster: self._top_resumed(n, outcome))

    def _top_resumed(self, cluster: CollectiveNetwork, outcome) -> None:
        if outcome == FAILOVER:
            self.failover()
            return
        if cluster.quarantined:
            # A whole-op abort raced the hand-off: the cluster already
            # bounced its cores; nothing left to broadcast into.
            return
        cluster.open_result(outcome)

    # ------------------------------------------------------------------ #
    # Per-segment software fallback (segment_failover mode)
    # ------------------------------------------------------------------ #
    def _wrap_segment(self, cluster: CollectiveNetwork, kind: str,
                      value: int, resume):
        """Intercept a FAILOVER bounce from a still-splittable cluster
        episode and divert the core into the segment cohort instead of
        the chip-wide software path."""
        if resume is None:
            return None

        def wrapped(outcome=None):
            if outcome == FAILOVER and self.segment_mode \
                    and not self.quarantined and not self.top.quarantined \
                    and cluster.quarantined:
                self._segment_arrive(cluster, kind, value, resume)
            else:
                resume(outcome)
        return wrapped

    def _cluster_failed(self, cluster: CollectiveNetwork) -> None:
        """A cluster gave up.  Degrade per-segment when the episode is
        still splittable (nothing delivered, partial not yet consumed by
        the top); otherwise abort the whole operation."""
        if self.segment_mode and not self.quarantined \
                and not self.top.quarantined \
                and not cluster.last_partial_delivery \
                and not cluster.last_parked:
            self.segment_failovers += 1
            self.fault_stats.bump("faults.collective.segment_failovers")
            # The bounced (wrapped) resumes now stream into the cohort.
            return
        self.failover()

    def _segment_arrive(self, cluster: CollectiveNetwork, kind: str,
                        value: int, resume) -> None:
        seg = self._segments[cluster.name]
        if seg["kind"] is None:
            seg["kind"] = kind
        self.fault_stats.bump("faults.collective.segment_arrivals")
        seg["pend"].append((value, resume))
        if len(seg["pend"]) == cluster.num_cores:
            self.schedule(seg["latency"], self._segment_gathered, cluster)

    def _segment_gathered(self, cluster: CollectiveNetwork) -> None:
        """The cohort's operands were combined over the NoC; the partial
        takes the retired cluster's root slot at the top network."""
        seg = self._segments[cluster.name]
        if not seg["pend"]:
            return  # flushed by a whole-op abort in the meantime
        kind = seg["kind"]
        assert kind is not None
        partial = ops.reference_reduce(
            kind, [v for v, _ in seg["pend"]],
            self.coll_config.value_width)
        self.top.arrive(
            cluster.core_ids[0], ops.COMBINE_KIND[kind], partial,
            lambda outcome=None, n=cluster: self._segment_resumed(
                n, outcome))

    def _segment_resumed(self, cluster: CollectiveNetwork,
                         outcome) -> None:
        seg = self._segments[cluster.name]
        pend, seg["pend"] = seg["pend"], []
        seg["kind"] = None
        if outcome == FAILOVER:
            self.failover()
            release = self.now + 1
        else:
            release = self.now + seg["latency"]
        for _value, resume in pend:
            if resume is not None:
                self.engine.schedule_at(release, resume, outcome)

    # ------------------------------------------------------------------ #
    def failover(self) -> None:
        """Whole-operation abort: one software cohort for the episode."""
        if self._failing or self.quarantined:
            return
        self._failing = True
        self.quarantined = True
        self.failovers += 1
        self.fault_stats.bump("faults.collective.segment_aborts")
        if not self.top.quarantined:
            self.top.failover(reason="hierarchical abort")
        for cl_net in self.clusters:
            cl_net.abort_episode()
        for cl_net in self.clusters:
            seg = self._segments[cl_net.name]
            pend, seg["pend"] = seg["pend"], []
            seg["kind"] = None
            for _value, resume in pend:
                if resume is not None:
                    self.engine.schedule_at(self.now + 1, resume, FAILOVER)
        self._failing = False

    # ------------------------------------------------------------------ #
    @property
    def fault_stats(self) -> StatsRegistry:
        return self.stats

    @property
    def num_glines(self) -> int:
        return self.top.num_glines + sum(c.num_glines
                                         for c in self.clusters)

    @property
    def collectives_completed(self) -> int:
        return self.top.collectives_completed

    @property
    def detections(self) -> int:
        return self.top.detections + sum(c.detections
                                         for c in self.clusters)

    @property
    def retries(self) -> int:
        return self.top.retries + sum(c.retries for c in self.clusters)

    @property
    def int_detections(self) -> int:
        return self.top.int_detections + sum(c.int_detections
                                             for c in self.clusters)

    @property
    def int_round_retries(self) -> int:
        return self.top.int_round_retries + sum(c.int_round_retries
                                                for c in self.clusters)

    @property
    def int_corrections(self) -> int:
        return self.top.int_corrections + sum(c.int_corrections
                                              for c in self.clusters)

    @property
    def int_op_retries(self) -> int:
        return self.top.int_op_retries + sum(c.int_op_retries
                                             for c in self.clusters)

    @property
    def int_failovers(self) -> int:
        return self.top.int_failovers + sum(c.int_failovers
                                            for c in self.clusters)

    @property
    def integrity_log(self) -> list[str]:
        return list(chain(self.top.integrity_log,
                          *(c.integrity_log for c in self.clusters)))

    @property
    def failover_reports(self) -> list[str]:
        return list(chain(self.top.failover_reports,
                          *(c.failover_reports for c in self.clusters)))

    def set_injector(self, injector) -> None:
        self.top.set_injector(injector)
        for c in self.clusters:
            c.set_injector(injector)

    def set_stats(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self.top.set_stats(stats)
        for c in self.clusters:
            c.set_stats(stats)

    def set_obs(self, obs) -> None:
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self.top.set_obs(obs)
        for c in self.clusters:
            c.set_obs(obs)

    def fully_idle(self) -> bool:
        return self.top.fully_idle() and all(c.fully_idle()
                                             for c in self.clusters)
