"""Engine-free collective fabric: stages composed over G-line wires.

The flat fabric mirrors the barrier network's physical layout -- one
horizontal wire pair per mesh row plus one vertical pair along the first
column -- but runs the bit-serial reduction protocol of
:mod:`repro.collectives.controllers` instead of a single arrival count:

* each **row stage** reduces the row's operands (kind *k*),
* the **column stage** reduces the per-row partials with
  ``COMBINE_KIND[k]``,
* the global result is **broadcast** back down the column, then along
  every row, and each core is *delivered* exactly once when its row's
  broadcast completes.

The class owns no engine and no clock: callers (the engine-backed
:class:`~repro.collectives.network.CollectiveNetwork`, the verify-layer
model, unit tests) call :meth:`tick` whenever one network cycle elapses.
One tick = assert phase, fault-perturbation hook, release-line guard,
sample phase, then orchestration (pure state hand-offs between stages).

``hold_result=True`` turns the fabric into a *cluster* for the
hierarchical variant: instead of broadcasting, the global value is
parked and reported through ``on_reduced``; the upper level later calls
:meth:`open_with` to inject the chip-wide result into the local
broadcast (skipping local core 0, which the upper level delivers
itself).
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import ConfigError, GLineError
from ..gline.gline import GLine
from ..gline.integrity import INTEGRITY_MODES
from . import ops
from .controllers import (
    M_BC_DONE, M_DONE, S_DONE, MUTATIONS, StageMaster, StageSlave,
)


class CollectiveFabric:
    """One flat R x C collective reduction fabric (engine-free)."""

    def __init__(self, rows: int, cols: int, value_width: int,
                 max_transmitters: int, name: str = "coll",
                 hold_result: bool = False,
                 mutation: str | None = None,
                 integrity: str = "off",
                 integrity_budget: int = 3) -> None:
        if rows < 1 or cols < 1:
            raise ConfigError("collective fabric needs a >=1x1 mesh")
        if cols - 1 > max_transmitters or rows - 1 > max_transmitters:
            raise ConfigError(
                f"{rows}x{cols} mesh exceeds the S-CSMA fan-in limit of "
                f"{max_transmitters} transmitters per line")
        if mutation is not None and mutation not in MUTATIONS:
            raise ConfigError(f"unknown mutation {mutation!r}; "
                              f"expected one of {sorted(MUTATIONS)}")
        if integrity not in INTEGRITY_MODES:
            raise ConfigError(f"unknown integrity mode {integrity!r}; "
                              f"expected one of {INTEGRITY_MODES}")
        self.rows = rows
        self.cols = cols
        self.value_width = value_width
        self.name = name
        self.hold_result = hold_result
        self.mutation = mutation
        self.integrity = integrity
        self.integrity_budget = integrity_budget
        self.num_cores = rows * cols

        # ---- wiring (mirrors the barrier network's budget) ----------- #
        self.lines: list[GLine] = []

        def _line(suffix: str) -> GLine:
            gl = GLine(f"{name}.{suffix}", max_transmitters)
            self.lines.append(gl)
            return gl

        # Mutation placement: one deliberately buggy controller, sited
        # where the bug is expressible on this mesh (verify picks meshes
        # accordingly).
        m_master = mutation if mutation in ("master-skip-own",
                                            "skip-echo-compare") else None
        m_bcast = mutation if mutation == "bcast-drop-msb" else None
        m_slave = mutation if mutation == "slave-double-pulse" else None

        self.rmasters: list[StageMaster] = []
        self.rslaves: list[list[StageSlave]] = []
        self._slave_tids: list[list[str]] = []
        for r in range(rows):
            if cols > 1:
                tx: GLine | None = _line(f"txH{r}")
                rel: GLine | None = _line(f"relH{r}")
            else:
                tx = rel = None
            mut = m_master if r == 0 else None
            if r == 0 and m_bcast is not None and cols > 1:
                mut = m_bcast
            self.rmasters.append(
                StageMaster(tx, rel, f"{name}.m{r}", mutation=mut))
            row_s: list[StageSlave] = []
            row_t: list[str] = []
            for c in range(1, cols):
                tid = f"{name}.s{r}_{c}"
                smut = m_slave if (r == 0 and c == 1) else None
                assert tx is not None and rel is not None
                row_s.append(StageSlave(tx, rel, tid, mutation=smut))
                row_t.append(tid)
            self.rslaves.append(row_s)
            self._slave_tids.append(row_t)

        self.colmaster: StageMaster | None = None
        self.colslaves: list[StageSlave] = []
        self._col_tids: list[str] = []
        if rows > 1:
            txv = _line("txV")
            relv = _line("relV")
            cmut = m_bcast if (m_bcast is not None and cols == 1) else None
            self.colmaster = StageMaster(txv, relv, f"{name}.cm",
                                         mutation=cmut)
            for r in range(1, rows):
                tid = f"{name}.cs{r}"
                smut = m_slave if (cols == 1 and r == 1) else None
                self.colslaves.append(
                    StageSlave(txv, relv, tid, mutation=smut))
                self._col_tids.append(tid)

        # ---- hooks --------------------------------------------------- #
        #: Called between assert and sample with (lines,) -- the network
        #: points this at ``injector.perturb_glines``.
        self.perturb_hook: Callable[[list[GLine]], None] | None = None
        #: Hardened mode: mask + flag spurious release-line levels.
        self.guard = False
        #: Called post-sample / pre-end_cycle with (lines,) -- the network
        #: hangs wire tracing and toggle accounting here.
        self.wire_probe: Callable[[list[GLine]], None] | None = None
        #: Cluster mode: called once with the stage-global result.
        self.on_reduced: Callable[[int], None] | None = None

        # ---- episode state ------------------------------------------- #
        self.kind: str | None = None
        self._row_fed = [False] * rows
        self._col_done = False
        self._global_ready = False
        self.result: int | None = None
        self._bc_started = False
        self._skip_root = False
        self._delivered = [False] * self.num_cores
        self._row_w = 1       # row stage result width
        self._bw = 1          # broadcast framing width
        # Read-and-clear watermark for collect_integrity() (network-side
        # bookkeeping only; deliberately not part of snapshot()).
        self._int_seen = [0, 0, 0]

    # ------------------------------------------------------------------ #
    # episode control
    # ------------------------------------------------------------------ #
    def begin(self, kind: str, bcast_width: int | None = None) -> None:
        """Configure every controller for one *kind* episode.

        *bcast_width* overrides the broadcast framing width -- the
        hierarchical variant passes the chip-global result width, which
        can exceed this cluster's own.
        """
        ops.check_kind(kind)
        if self.kind is not None:
            raise GLineError(
                f"{self.name}: begin({kind!r}) during an open "
                f"{self.kind!r} episode")
        self.kind = kind
        w = self.value_width
        mech = ops.MECHANISM[kind]
        in_w = ops.stage_in_width(kind, w)
        strong = 0 if kind == "min" else 1
        self._row_w = ops.stage_result_width(kind, in_w, self.cols)
        k2 = ops.COMBINE_KIND[kind]
        bw = bcast_width if bcast_width is not None \
            else ops.result_width(kind, w, self.rows, self.cols)
        self._bw = bw
        fin_row = (kind if kind in ("any", "all") else None, self.cols)
        # Broadcast stages carry no counted rounds (release-line levels
        # are immune to S-CSMA miscounts), so integrity adds nothing.
        integ = self.integrity if mech != "bcast" else "off"
        for r in range(self.rows):
            self.rmasters[r].configure(mech, in_w, strong, bw, fin_row,
                                       self.cols - 1, integ,
                                       self.integrity_budget)
            for s in self.rslaves[r]:
                s.configure(mech, in_w, strong, bw, integ)
        if self.colmaster is not None:
            mech2 = ops.MECHANISM[k2]
            in_w2 = ops.stage_in_width(k2, self._row_w)
            strong2 = 0 if k2 == "min" else 1
            fin_col = (k2 if k2 in ("any", "all") else None, self.rows)
            integ2 = self.integrity if mech2 != "bcast" else "off"
            self.colmaster.configure(mech2, in_w2, strong2, bw, fin_col,
                                     self.rows - 1, integ2,
                                     self.integrity_budget)
            for s in self.colslaves:
                s.configure(mech2, in_w2, strong2, bw, integ2)

    def arrive_local(self, local: int, value: int) -> None:
        """Present core *local*'s operand to its row stage."""
        if self.kind is None:
            raise GLineError(f"{self.name}: arrive_local before begin()")
        if not 0 <= local < self.num_cores:
            raise ConfigError(f"{self.name}: local id {local} out of "
                              f"range for {self.rows}x{self.cols}")
        contrib = ops.stage_contrib(self.kind, value, self.value_width)
        r, c = divmod(local, self.cols)
        if c == 0:
            self.rmasters[r].set_own(contrib)
        else:
            self.rslaves[r][c - 1].set_input(contrib)

    def open_with(self, value: int) -> None:
        """Cluster hand-off: broadcast the chip-global *value* locally.

        Local core 0 (the cluster root) is *not* delivered -- the upper
        level that produced *value* resumes it directly.
        """
        if not self.hold_result or not self._global_ready:
            raise GLineError(
                f"{self.name}: open_with() without a parked result")
        self._skip_root = True
        self._start_broadcast(value)

    def reset_episode(self, keep_operands: bool = True) -> None:
        """Watchdog retry: restart the episode's wire protocol.

        With *keep_operands* the already-latched row inputs re-signal;
        column-stage state is always rebuilt from the rows.
        """
        for r in range(self.rows):
            if keep_operands:
                self.rmasters[r].resignal()
                for s in self.rslaves[r]:
                    s.resignal()
            else:
                self.rmasters[r].reset()
                for s in self.rslaves[r]:
                    s.reset()
        if self.colmaster is not None:
            self.colmaster.reset()
            for s in self.colslaves:
                s.reset()
        self._row_fed = [False] * self.rows
        self._col_done = False
        self._global_ready = False
        self.result = None
        self._bc_started = False
        self._delivered = [False] * self.num_cores
        if not keep_operands:
            self.kind = None
            self._skip_root = False
        self._int_seen = [0, 0, 0]
        for gl in self.lines:
            gl.end_cycle()

    def close_episode(self) -> None:
        """Finish the episode: full reset, ready for the next begin()."""
        self.reset_episode(keep_operands=False)

    # ------------------------------------------------------------------ #
    # the clock
    # ------------------------------------------------------------------ #
    def tick(self) -> list[tuple[int, int]]:
        """Advance one network cycle; returns newly delivered
        ``(local, value)`` pairs."""
        # Assert phase.
        for r in range(self.rows):
            self.rmasters[r].assert_phase()
            for s, tid in zip(self.rslaves[r], self._slave_tids[r]):
                s.assert_phase(tid)
        if self.colmaster is not None:
            self.colmaster.assert_phase()
            for s, tid in zip(self.colslaves, self._col_tids):
                s.assert_phase(tid)

        # Fault injection lands between assert and sample, like the
        # barrier network's tick.
        if self.perturb_hook is not None:
            self.perturb_hook(self.lines)
        if self.guard:
            self._guard_release_lines()

        # Sample phase.
        for r in range(self.rows):
            self.rmasters[r].sample_phase()
            for s in self.rslaves[r]:
                s.sample_phase()
        if self.colmaster is not None:
            self.colmaster.sample_phase()
            for s in self.colslaves:
                s.sample_phase()
        if self.wire_probe is not None:
            self.wire_probe(self.lines)
        for gl in self.lines:
            gl.end_cycle()

        return self._orchestrate()

    def _guard_release_lines(self) -> None:
        """Hardened mode: a release-line level the master did not drive
        is a wire fault -- flag it and mask it before the slaves sample,
        so a stuck-high wire degrades to detection + failover rather
        than a silently wrong value."""
        masters = list(self.rmasters)
        if self.colmaster is not None:
            masters.append(self.colmaster)
        for m in masters:
            if m.rel is not None and not m.drove_rel and m.rel.sampled_on():
                m.fault_suspected = True
                m.rel.glitch_force = 0

    # ------------------------------------------------------------------ #
    # orchestration: pure state hand-offs between stages
    # ------------------------------------------------------------------ #
    def _orchestrate(self) -> list[tuple[int, int]]:
        assert self.kind is not None or not any(
            not m.idle for m in self.rmasters), "ticking a closed episode"
        k2 = ops.COMBINE_KIND[self.kind] if self.kind else "sum"

        # Row stage done -> feed the column stage.
        for r in range(self.rows):
            m = self.rmasters[r]
            if m.state == M_DONE and not self._row_fed[r]:
                self._row_fed[r] = True
                if self.rows == 1:
                    self._global_done(m.result)
                else:
                    contrib = ops.stage_contrib(k2, m.result, self._row_w)
                    if r == 0:
                        assert self.colmaster is not None
                        self.colmaster.set_own(contrib)
                    else:
                        self.colslaves[r - 1].set_input(contrib)

        # Column stage done -> the global result exists.
        if self.colmaster is not None \
                and self.colmaster.state == M_DONE and not self._col_done:
            self._col_done = True
            self._global_done(self.colmaster.result)

        # Column broadcast landed at a row master -> start its row
        # broadcast with the latched value.
        for j, cs in enumerate(self.colslaves):
            if cs.state == S_DONE:
                rm = self.rmasters[j + 1]
                if rm.state == M_DONE and self._bc_started:
                    rm.start_broadcast(cs.result)

        # Broadcast landed -> deliver each core exactly once.  A master
        # is done when it has driven its last data bit; a slave when it
        # has latched bw bits.  In a clean episode both happen in the
        # same tick, so the whole row releases together; under a fault
        # the unaffected cores still make progress.
        out: list[tuple[int, int]] = []
        for r in range(self.rows):
            base = r * self.cols
            rm = self.rmasters[r]
            if rm.state == M_BC_DONE and not self._delivered[base] \
                    and not (r == 0 and self._skip_root):
                self._delivered[base] = True
                out.append((base, rm.bc_value))
            for c, s in enumerate(self.rslaves[r], start=1):
                if s.state == S_DONE and not self._delivered[base + c]:
                    self._delivered[base + c] = True
                    out.append((base + c, s.result))
        return out

    def _global_done(self, result: int) -> None:
        self._global_ready = True
        self.result = result
        if self.hold_result:
            # An exhausted integrity budget means the parked partial is
            # suspect: never report it upward -- the network escalates
            # this same tick (retry or failover) before the upper level
            # could combine a corrupt partial.
            if self.on_reduced is not None and not self.int_exhausted:
                self.on_reduced(result)
            return
        self._start_broadcast(result)

    def _start_broadcast(self, value: int) -> None:
        self._bc_started = True
        if self.colmaster is not None:
            self.colmaster.start_broadcast(value)
        self.rmasters[0].start_broadcast(value)
        # Rows > 0 start when the column broadcast reaches them (or now,
        # if it already has -- e.g. open_with after the column settled).
        for j, cs in enumerate(self.colslaves):
            if cs.state == S_DONE and self.rmasters[j + 1].state == M_DONE:
                self.rmasters[j + 1].start_broadcast(cs.result)

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #
    @property
    def fault_suspected(self) -> bool:
        if any(m.fault_suspected for m in self.rmasters):
            return True
        return self.colmaster is not None and self.colmaster.fault_suspected

    def collect_fault(self) -> bool:
        """Read-and-clear this tick's fault suspicions (network hook)."""
        found = False
        for m in self.rmasters:
            found |= m.fault_suspected
            m.fault_suspected = False
        if self.colmaster is not None:
            found |= self.colmaster.fault_suspected
            self.colmaster.fault_suspected = False
        return found

    # ------------------------------------------------------------------ #
    # integrity status (see repro.gline.integrity)
    # ------------------------------------------------------------------ #
    def _all_masters(self) -> list[StageMaster]:
        masters = list(self.rmasters)
        if self.colmaster is not None:
            masters.append(self.colmaster)
        return masters

    @property
    def int_exhausted(self) -> bool:
        """A stage burned its whole round-retry budget this episode."""
        return any(m.int_exhausted for m in self._all_masters())

    @property
    def int_flagged(self) -> bool:
        """Any corruption detected this episode (retried or not).  The
        detection-completeness property in the verify layer is exactly
        'no wrong value is ever delivered while this is False'."""
        return any(m.int_faults > 0 or m.int_exhausted
                   for m in self._all_masters())

    def collect_integrity(self) -> tuple[int, int, int, bool]:
        """Read-and-clear the episode's new integrity activity: returns
        ``(detections, round_retries, corrections, exhausted)`` deltas
        since the previous collect (exhaustion is a level, not a delta)."""
        masters = self._all_masters()
        faults = sum(m.int_faults for m in masters)
        retries = sum(m.int_retries for m in masters)
        corrected = sum(m.int_corrected for m in masters)
        exhausted = any(m.int_exhausted for m in masters)
        seen = self._int_seen
        out = (faults - seen[0], retries - seen[1], corrected - seen[2],
               exhausted)
        self._int_seen = [faults, retries, corrected]
        return out

    @property
    def done(self) -> bool:
        """Every core delivered (or parked, for a held cluster)."""
        if self.hold_result and not self._bc_started:
            return self._global_ready
        return all(d for i, d in enumerate(self._delivered)
                   if not (i == 0 and self._skip_root))

    def will_act(self) -> bool:
        """Does the next tick change fabric state unprompted?  Mirrors
        the barrier network's power gating: False while merely waiting
        for arrivals (or parked on a held result)."""
        for r in range(self.rows):
            if self.rmasters[r].will_act():
                return True
            for s in self.rslaves[r]:
                if s.will_act():
                    return True
        if self.colmaster is not None:
            if self.colmaster.will_act():
                return True
            for s in self.colslaves:
                if s.will_act():
                    return True
        return self._orchestration_pending()

    def _orchestration_pending(self) -> bool:
        for r in range(self.rows):
            if self.rmasters[r].state == M_DONE and not self._row_fed[r]:
                return True
        if self.colmaster is not None \
                and self.colmaster.state == M_DONE and not self._col_done:
            return True
        for j, cs in enumerate(self.colslaves):
            if cs.state == S_DONE and self._bc_started \
                    and self.rmasters[j + 1].state == M_DONE:
                return True
        for r in range(self.rows):
            base = r * self.cols
            rm = self.rmasters[r]
            if rm.state == M_BC_DONE and not self._delivered[base] \
                    and not (r == 0 and self._skip_root):
                return True
            for c, s in enumerate(self.rslaves[r], start=1):
                if s.state == S_DONE and not self._delivered[base + c]:
                    return True
        return False

    @property
    def idle(self) -> bool:
        return self.kind is None

    # ------------------------------------------------------------------ #
    # model-checker support
    # ------------------------------------------------------------------ #
    def snapshot(self) -> tuple:
        return (
            tuple(m.snapshot() for m in self.rmasters),
            tuple(tuple(s.snapshot() for s in row) for row in self.rslaves),
            self.colmaster.snapshot() if self.colmaster else None,
            tuple(s.snapshot() for s in self.colslaves),
            self.kind, tuple(self._row_fed), self._col_done,
            self._global_ready, self.result, self._bc_started,
            self._skip_root, tuple(self._delivered),
            self._row_w, self._bw,
            tuple(gl.stuck for gl in self.lines),
        )

    def restore(self, snap: tuple) -> None:
        (rm, rs, cm, cs, kind, row_fed, col_done, global_ready, result,
         bc_started, skip_root, delivered, row_w, bw, stuck) = snap
        for m, s in zip(self.rmasters, rm):
            m.restore(s)
        for row, snaps in zip(self.rslaves, rs):
            for sl, s in zip(row, snaps):
                sl.restore(s)
        if self.colmaster is not None:
            self.colmaster.restore(cm)
        for sl, s in zip(self.colslaves, cs):
            sl.restore(s)
        self.kind = kind
        self._row_fed = list(row_fed)
        self._col_done = col_done
        self._global_ready = global_ready
        self.result = result
        self._bc_started = bc_started
        self._skip_root = skip_root
        self._delivered = list(delivered)
        self._row_w = row_w
        self._bw = bw
        for gl, st in zip(self.lines, stuck):
            gl.stuck = st
            gl._asserting.clear()
            gl.glitch_force = None
            gl.count_delta = 0
