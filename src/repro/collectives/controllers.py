"""Master/slave controller FSMs for one bit-serial reduction stage.

A *stage* reduces over one shared wire pair -- ``tx`` (slaves -> master,
S-CSMA counted) and ``rel`` (master -> slaves) -- and is instantiated
once per mesh row plus once for the first column, mirroring the barrier
network's wiring.  The protocol per stage:

1. **Gather**: each slave pulses ``tx`` once when its operand is ready;
   the master accumulates the S-CSMA count until every slave (and its
   own operand) is present.
2. **Start pulse**: the master pulses ``rel`` for one tick; rounds run
   in lockstep from the next tick.
3. **Rounds** -- per mechanism (:data:`repro.collectives.ops.MECHANISM`):

   * ``count``: round *b* has every slave assert ``tx`` iff bit *b* of
     its contribution is set; the master adds ``count << b``.  With the
     predicate kinds' 1-bit contributions this degenerates to a single
     voting round.
   * ``elim``: MSB-first elimination, two ticks per bit.  Transmit tick:
     every still-competing slave asserts iff its current bit equals the
     *strong* bit (0 for MIN, 1 for MAX).  Reflect tick: the master
     drives the winning bit back on ``rel``; slaves whose bit lost drop
     out.
   * ``bcast``: no rounds -- the master's own operand is the result.

4. **Broadcast**: a start bit then ``bw`` data bits on ``rel`` (LSB
   first), so slaves can distinguish a result of 0 from silence.

Controllers are *pure state machines*: they never touch the engine, so
the verify layer drives the exact production FSMs under exhaustive
arrival interleavings (``repro.verify.collectives``) while
:class:`~repro.collectives.network.CollectiveNetwork` clocks the same
objects inside the simulator.  ``snapshot``/``restore`` exist for that
model checker.

``mutation`` plants a named bug for the checker to catch (see
:data:`MUTATIONS`); production builders never set it.
"""

from __future__ import annotations

from ..gline.gline import GLine

# Slave states.
S_IDLE = 0        # no operand yet
S_SIGNAL = 1      # operand latched; arrival pulse pending
S_WAIT_START = 2  # waiting for the master's round-start pulse
S_ROUNDS = 3      # lockstep reduction rounds
S_WAIT_BC = 4     # waiting for the broadcast start bit
S_BC_DATA = 5     # latching broadcast data bits
S_DONE = 6        # result latched

# Master states.
M_GATHER = 0      # counting arrival pulses
M_START = 1       # round-start pulse pending
M_ROUNDS = 2      # reduction rounds
M_DONE = 3        # stage result computed (fabric orchestrates next)
M_BC_START = 4    # broadcast start bit pending
M_BC_DATA = 5     # driving broadcast data bits
M_BC_DONE = 6     # broadcast finished

#: Planted-bug registry for the verify layer (name -> description).
MUTATIONS = {
    "master-skip-own": "counting master omits its own contribution",
    "slave-double-pulse": "slave re-sends its arrival pulse, so the "
                          "master starts rounds before the row is full",
    "bcast-drop-msb": "broadcasting master never drives the final data "
                      "bit, truncating the result's MSB",
}


class StageSlave:
    """One slave controller of a reduction stage."""

    __slots__ = ("tx", "rel", "mechanism", "in_width", "strong_bit", "bw",
                 "state", "value", "competing", "pulses", "round",
                 "reflect", "cur_bit", "bc_idx", "result", "mutation")

    def __init__(self, tx: GLine, rel: GLine, transmitter_id: str,
                 mutation: str | None = None) -> None:
        self.tx = tx
        self.rel = rel
        tx.attach(transmitter_id)
        self.mutation = mutation
        # Per-episode parameters (set by configure()).
        self.mechanism = "count"
        self.in_width = 1
        self.strong_bit = 0
        self.bw = 1
        # Mutable FSM state.
        self.state = S_IDLE
        self.value = 0
        self.competing = False
        self.pulses = 0
        self.round = 0
        self.reflect = False
        self.cur_bit = 0
        self.bc_idx = 0
        self.result = 0

    # ------------------------------------------------------------------ #
    def configure(self, mechanism: str, in_width: int, strong_bit: int,
                  bw: int) -> None:
        self.mechanism = mechanism
        self.in_width = in_width
        self.strong_bit = strong_bit
        self.bw = bw

    def set_input(self, contrib: int) -> None:
        """Latch this participant's stage-domain contribution."""
        self.value = contrib
        self.competing = True
        self.pulses = 0
        self.state = S_SIGNAL

    def resignal(self) -> None:
        """Watchdog retry: re-announce the still-latched operand."""
        if self.state != S_IDLE:
            self.set_input(self.value)

    def reset(self) -> None:
        self.state = S_IDLE
        self.value = 0
        self.competing = False
        self.pulses = 0
        self.round = 0
        self.reflect = False
        self.cur_bit = 0
        self.bc_idx = 0
        self.result = 0

    # ------------------------------------------------------------------ #
    def assert_phase(self, tid: str) -> None:
        if self.state == S_SIGNAL:
            self.tx.assert_signal(tid)
            self.pulses += 1
            if self.mutation == "slave-double-pulse" and self.pulses == 1:
                return  # stay in S_SIGNAL: the pulse repeats next tick
            self.state = (S_WAIT_BC if self.mechanism == "bcast"
                          else S_WAIT_START)
        elif self.state == S_ROUNDS:
            if self.mechanism == "count":
                if (self.value >> self.round) & 1:
                    self.tx.assert_signal(tid)
            elif not self.reflect and self.competing \
                    and ((self.value >> self.cur_bit) & 1) == self.strong_bit:
                self.tx.assert_signal(tid)

    def sample_phase(self) -> None:
        if self.state == S_WAIT_START:
            if self.rel.sampled_on():
                self.state = S_ROUNDS
                self.round = 0
                self.reflect = False
                self.cur_bit = self.in_width - 1
        elif self.state == S_ROUNDS:
            if self.mechanism == "count":
                self.round += 1
                if self.round >= self.in_width:
                    self.state = S_WAIT_BC
            elif not self.reflect:
                self.reflect = True
            else:
                winner = 1 if self.rel.sampled_on() else 0
                if self.competing \
                        and ((self.value >> self.cur_bit) & 1) != winner:
                    self.competing = False
                self.reflect = False
                self.cur_bit -= 1
                if self.cur_bit < 0:
                    self.state = S_WAIT_BC
        elif self.state == S_WAIT_BC:
            if self.rel.sampled_on():
                self.state = S_BC_DATA
                self.bc_idx = 0
                self.result = 0
        elif self.state == S_BC_DATA:
            if self.rel.sampled_on():
                self.result |= 1 << self.bc_idx
            self.bc_idx += 1
            if self.bc_idx >= self.bw:
                self.state = S_DONE

    # ------------------------------------------------------------------ #
    def will_act(self) -> bool:
        """True if this controller changes state next tick unprompted."""
        return self.state in (S_SIGNAL, S_ROUNDS, S_BC_DATA)

    @property
    def idle(self) -> bool:
        return self.state == S_IDLE

    def snapshot(self) -> tuple:
        return (self.state, self.value, self.competing, self.pulses,
                self.round, self.reflect, self.cur_bit, self.bc_idx,
                self.result, self.mechanism, self.in_width,
                self.strong_bit, self.bw)

    def restore(self, snap: tuple) -> None:
        (self.state, self.value, self.competing, self.pulses, self.round,
         self.reflect, self.cur_bit, self.bc_idx, self.result,
         self.mechanism, self.in_width, self.strong_bit, self.bw) = snap


class StageMaster:
    """The master controller of a reduction stage.

    *n_slaves* may be 0 (single-column rows): the stage then completes
    as soon as the master's own operand is ready, with no wire activity.
    """

    __slots__ = ("tx", "rel", "rel_tid", "n_slaves", "mechanism",
                 "in_width", "strong_bit", "bw", "finalize", "state",
                 "own", "own_set", "arrived", "acc", "round", "cur_bit",
                 "own_competing", "pending_reflect", "result", "bc_value",
                 "bc_idx", "drove_rel", "fault_suspected", "mutation")

    def __init__(self, tx: GLine | None, rel: GLine | None,
                 rel_tid: str = "", mutation: str | None = None) -> None:
        self.tx = tx
        self.rel = rel
        self.rel_tid = rel_tid
        if rel is not None:
            rel.attach(rel_tid)
        self.mutation = mutation
        self.n_slaves = 0
        # Per-episode parameters (configure()).
        self.mechanism = "count"
        self.in_width = 1
        self.strong_bit = 0
        self.bw = 1
        #: Applied to the raw accumulator: ("any"|"all"|None, n).
        self.finalize: tuple[str | None, int] = (None, 1)
        # Mutable FSM state.
        self.state = M_GATHER
        self.own = 0
        self.own_set = False
        self.arrived = 0
        self.acc = 0
        self.round = 0
        self.cur_bit = 0
        self.own_competing = False
        self.pending_reflect = -1
        self.result = 0
        self.bc_value = 0
        self.bc_idx = 0
        self.drove_rel = False
        self.fault_suspected = False

    # ------------------------------------------------------------------ #
    def configure(self, mechanism: str, in_width: int, strong_bit: int,
                  bw: int, finalize: tuple[str | None, int],
                  n_slaves: int) -> None:
        self.mechanism = mechanism
        self.in_width = in_width
        self.strong_bit = strong_bit
        self.bw = bw
        self.finalize = finalize
        self.n_slaves = n_slaves

    def set_own(self, contrib: int) -> None:
        """Latch the master's co-located operand (register write, not a
        wire pulse -- the master is its own receiver)."""
        self.own = contrib
        self.own_set = True
        self._maybe_complete_gather()

    def resignal(self) -> None:
        """Watchdog retry: back to gather-start with the operand kept."""
        own, own_set = self.own, self.own_set
        self.reset()
        self.own, self.own_set = own, own_set
        self._maybe_complete_gather()

    def reset(self) -> None:
        self.state = M_GATHER
        self.own = 0
        self.own_set = False
        self.arrived = 0
        self.acc = 0
        self.round = 0
        self.cur_bit = 0
        self.own_competing = False
        self.pending_reflect = -1
        self.result = 0
        self.bc_value = 0
        self.bc_idx = 0
        self.drove_rel = False
        self.fault_suspected = False

    # ------------------------------------------------------------------ #
    def _maybe_complete_gather(self) -> None:
        if self.state != M_GATHER or not self.own_set \
                or self.arrived < self.n_slaves:
            return
        if self.mechanism == "bcast" or self.n_slaves == 0:
            # No rounds: the result is local arithmetic on the operand.
            self._finish(self.own)
        else:
            self.state = M_START

    def _finish(self, raw: int) -> None:
        fin, n = self.finalize
        if fin == "any":
            raw = 1 if raw > 0 else 0
        elif fin == "all":
            raw = 1 if raw == n else 0
        self.result = raw
        self.state = M_DONE

    def start_broadcast(self, value: int) -> None:
        """Fabric hand-off: push *value* down this stage's ``rel`` line."""
        self.bc_value = value
        self.bc_idx = 0
        if self.n_slaves == 0:
            self.state = M_BC_DONE
        else:
            self.state = M_BC_START

    # ------------------------------------------------------------------ #
    def assert_phase(self) -> None:
        self.drove_rel = False
        if self.rel is None:
            return
        if self.state == M_START:
            # The start pulse; the sample phase arms the round state so
            # the first round is counted one tick later, in lockstep with
            # the slaves (they observe this pulse at end of tick).
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
        elif self.state == M_ROUNDS and self.mechanism == "elim" \
                and self.pending_reflect == 1:
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
        elif self.state == M_BC_START:
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
            self.bc_idx = 0
            self.state = M_BC_DATA
        elif self.state == M_BC_DATA:
            last = self.bc_idx == self.bw - 1
            if (self.bc_value >> self.bc_idx) & 1 \
                    and not (last and self.mutation == "bcast-drop-msb"):
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True
            self.bc_idx += 1
            if self.bc_idx >= self.bw:
                self.state = M_BC_DONE

    def sample_phase(self) -> None:
        if self.state == M_GATHER:
            if self.tx is not None:
                cnt = self.tx.sample_count()
                if cnt:
                    self.arrived += cnt
                    if self.arrived > self.n_slaves:
                        self.fault_suspected = True
                        self.arrived = self.n_slaves
            self._maybe_complete_gather()
        elif self.state == M_START:
            # Pulse sent this tick; rounds are live from the next one.
            self.round = 0
            self.cur_bit = self.in_width - 1
            self.acc = 0 if self.mutation == "master-skip-own" else self.own
            self.own_competing = True
            self.pending_reflect = -1
            self.state = M_ROUNDS
            if self.mechanism == "elim":
                self.acc = 0
        elif self.state == M_ROUNDS:
            if self.mechanism == "count":
                assert self.tx is not None
                cnt = self.tx.sample_count()
                if cnt > self.n_slaves:
                    self.fault_suspected = True
                    cnt = self.n_slaves
                self.acc += cnt << self.round
                self.round += 1
                if self.round >= self.in_width:
                    self._finish(self.acc)
            elif self.pending_reflect < 0:  # elim transmit tick
                assert self.tx is not None
                cnt = self.tx.sample_count()
                if cnt > self.n_slaves:
                    self.fault_suspected = True
                    cnt = self.n_slaves
                own_bit = (self.own >> self.cur_bit) & 1
                holders = cnt + (1 if self.own_competing
                                 and own_bit == self.strong_bit else 0)
                self.pending_reflect = (self.strong_bit if holders > 0
                                        else 1 - self.strong_bit)
            else:  # elim reflect tick
                winner = self.pending_reflect
                own_bit = (self.own >> self.cur_bit) & 1
                if self.own_competing and own_bit != winner:
                    self.own_competing = False
                self.acc |= winner << self.cur_bit
                self.pending_reflect = -1
                self.cur_bit -= 1
                if self.cur_bit < 0:
                    self._finish(self.acc)

    # ------------------------------------------------------------------ #
    def will_act(self) -> bool:
        return self.state in (M_START, M_ROUNDS, M_BC_START, M_BC_DATA)

    @property
    def idle(self) -> bool:
        return self.state == M_GATHER and not self.own_set \
            and self.arrived == 0

    def snapshot(self) -> tuple:
        return (self.state, self.own, self.own_set, self.arrived, self.acc,
                self.round, self.cur_bit, self.own_competing,
                self.pending_reflect, self.result, self.bc_value,
                self.bc_idx, self.drove_rel, self.fault_suspected,
                self.mechanism, self.in_width, self.strong_bit, self.bw,
                self.finalize, self.n_slaves)

    def restore(self, snap: tuple) -> None:
        (self.state, self.own, self.own_set, self.arrived, self.acc,
         self.round, self.cur_bit, self.own_competing,
         self.pending_reflect, self.result, self.bc_value, self.bc_idx,
         self.drove_rel, self.fault_suspected, self.mechanism,
         self.in_width, self.strong_bit, self.bw, self.finalize,
         self.n_slaves) = snap
