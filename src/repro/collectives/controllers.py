"""Master/slave controller FSMs for one bit-serial reduction stage.

A *stage* reduces over one shared wire pair -- ``tx`` (slaves -> master,
S-CSMA counted) and ``rel`` (master -> slaves) -- and is instantiated
once per mesh row plus once for the first column, mirroring the barrier
network's wiring.  The protocol per stage:

1. **Gather**: each slave pulses ``tx`` once when its operand is ready;
   the master accumulates the S-CSMA count until every slave (and its
   own operand) is present.
2. **Start pulse**: the master pulses ``rel`` for one tick; rounds run
   in lockstep from the next tick.
3. **Rounds** -- per mechanism (:data:`repro.collectives.ops.MECHANISM`):

   * ``count``: round *b* has every slave assert ``tx`` iff bit *b* of
     its contribution is set; the master adds ``count << b``.  With the
     predicate kinds' 1-bit contributions this degenerates to a single
     voting round.
   * ``elim``: MSB-first elimination, two ticks per bit.  Transmit tick:
     every still-competing slave asserts iff its current bit equals the
     *strong* bit (0 for MIN, 1 for MAX).  Reflect tick: the master
     drives the winning bit back on ``rel``; slaves whose bit lost drop
     out.
   * ``bcast``: no rounds -- the master's own operand is the result.

4. **Broadcast**: a start bit then ``bw`` data bits on ``rel`` (LSB
   first), so slaves can distinguish a result of 0 from silence.

Controllers are *pure state machines*: they never touch the engine, so
the verify layer drives the exact production FSMs under exhaustive
arrival interleavings (``repro.verify.collectives``) while
:class:`~repro.collectives.network.CollectiveNetwork` clocks the same
objects inside the simulator.  ``snapshot``/``restore`` exist for that
model checker.

``mutation`` plants a named bug for the checker to catch (see
:data:`MUTATIONS`); production builders never set it.
"""

from __future__ import annotations

from ..gline.gline import GLine
from ..gline.integrity import (RESIDUE_BITS, RESIDUE_MOD,
                               SAMPLES_PER_ROUND, majority, residue_of)

# Slave states.
S_IDLE = 0        # no operand yet
S_SIGNAL = 1      # operand latched; arrival pulse pending
S_WAIT_START = 2  # waiting for the master's round-start pulse
S_ROUNDS = 3      # lockstep reduction rounds
S_WAIT_BC = 4     # waiting for the broadcast start bit
S_BC_DATA = 5     # latching broadcast data bits
S_DONE = 6        # result latched

# Master states.
M_GATHER = 0      # counting arrival pulses
M_START = 1       # round-start pulse pending
M_ROUNDS = 2      # reduction rounds
M_DONE = 3        # stage result computed (fabric orchestrates next)
M_BC_START = 4    # broadcast start bit pending
M_BC_DATA = 5     # driving broadcast data bits
M_BC_DONE = 6     # broadcast finished

#: Planted-bug registry for the verify layer (name -> description).
MUTATIONS = {
    "master-skip-own": "counting master omits its own contribution",
    "slave-double-pulse": "slave re-sends its arrival pulse, so the "
                          "master starts rounds before the row is full",
    "bcast-drop-msb": "broadcasting master never drives the final data "
                      "bit, truncating the result's MSB",
    "skip-echo-compare": "integrity master skips every verification "
                         "compare, acking corrupted rounds as clean",
}


def _elim_samples(integ: str) -> int:
    """Redundant samples per elimination transmit phase.  The residue
    code has no elimination analogue, so that mode uses the echo pair."""
    return 3 if integ == "vote" else 2


class StageSlave:
    """One slave controller of a reduction stage."""

    __slots__ = ("tx", "rel", "mechanism", "in_width", "strong_bit", "bw",
                 "state", "value", "competing", "pulses", "round",
                 "reflect", "cur_bit", "bc_idx", "result", "mutation",
                 "integ", "confirming", "iphase")

    def __init__(self, tx: GLine, rel: GLine, transmitter_id: str,
                 mutation: str | None = None) -> None:
        self.tx = tx
        self.rel = rel
        tx.attach(transmitter_id)
        self.mutation = mutation
        # Per-episode parameters (set by configure()).
        self.mechanism = "count"
        self.in_width = 1
        self.strong_bit = 0
        self.bw = 1
        self.integ = "off"
        # Mutable FSM state.
        self.state = S_IDLE
        self.value = 0
        self.competing = False
        self.pulses = 0
        self.round = 0
        self.reflect = False
        self.cur_bit = 0
        self.bc_idx = 0
        self.result = 0
        self.confirming = False
        self.iphase = 0

    # ------------------------------------------------------------------ #
    def configure(self, mechanism: str, in_width: int, strong_bit: int,
                  bw: int, integ: str = "off") -> None:
        self.mechanism = mechanism
        self.in_width = in_width
        self.strong_bit = strong_bit
        self.bw = bw
        self.integ = integ

    def set_input(self, contrib: int) -> None:
        """Latch this participant's stage-domain contribution."""
        self.value = contrib
        self.competing = True
        self.pulses = 0
        self.state = S_SIGNAL

    def resignal(self) -> None:
        """Watchdog retry: re-announce the still-latched operand."""
        if self.state != S_IDLE:
            self.set_input(self.value)

    def reset(self) -> None:
        self.state = S_IDLE
        self.value = 0
        self.competing = False
        self.pulses = 0
        self.round = 0
        self.reflect = False
        self.cur_bit = 0
        self.bc_idx = 0
        self.result = 0
        self.confirming = False
        self.iphase = 0

    # ------------------------------------------------------------------ #
    def _round_bit(self) -> int:
        """The bit serialized in counting round ``round`` -- a data bit,
        or a residue digit bit in the appended check rounds."""
        if self.round < self.in_width:
            return (self.value >> self.round) & 1
        return (residue_of(self.value) >> (self.round - self.in_width)) & 1

    def _total_rounds(self) -> int:
        if self.mechanism == "count" and self.integ == "residue":
            return self.in_width + RESIDUE_BITS
        return self.in_width

    def assert_phase(self, tid: str) -> None:
        if self.state == S_SIGNAL:
            self.tx.assert_signal(tid)
            self.pulses += 1
            if self.mutation == "slave-double-pulse" and self.pulses == 1:
                return  # stay in S_SIGNAL: the pulse repeats next tick
            self.state = (S_WAIT_BC if self.mechanism == "bcast"
                          else S_WAIT_START)
        elif self.state == S_ROUNDS:
            if self.integ != "off":
                self._int_assert(tid)
            elif self.mechanism == "count":
                if (self.value >> self.round) & 1:
                    self.tx.assert_signal(tid)
            elif not self.reflect and self.competing \
                    and ((self.value >> self.cur_bit) & 1) == self.strong_bit:
                self.tx.assert_signal(tid)

    def _int_assert(self, tid: str) -> None:
        """Round asserts under an integrity mode: redundant samples are
        produced by re-asserting the same decision; confirm/ACK/valid/
        reflect ticks are silent on ``tx``."""
        if self.confirming:
            if self.iphase == 0:
                self.tx.assert_signal(tid)
        elif self.mechanism == "count":
            if self.iphase < SAMPLES_PER_ROUND[self.integ] \
                    and self._round_bit():
                self.tx.assert_signal(tid)
        else:  # elim
            if self.iphase < _elim_samples(self.integ) and self.competing \
                    and ((self.value >> self.cur_bit) & 1) == self.strong_bit:
                self.tx.assert_signal(tid)

    def sample_phase(self) -> None:
        if self.state == S_WAIT_START:
            if self.rel.sampled_on():
                self.state = S_ROUNDS
                self.round = 0
                self.reflect = False
                self.cur_bit = self.in_width - 1
                if self.integ != "off":
                    self.confirming = True
                    self.iphase = 0
        elif self.state == S_ROUNDS:
            if self.integ != "off":
                self._int_sample()
            elif self.mechanism == "count":
                self.round += 1
                if self.round >= self.in_width:
                    self.state = S_WAIT_BC
            elif not self.reflect:
                self.reflect = True
            else:
                winner = 1 if self.rel.sampled_on() else 0
                if self.competing \
                        and ((self.value >> self.cur_bit) & 1) != winner:
                    self.competing = False
                self.reflect = False
                self.cur_bit -= 1
                if self.cur_bit < 0:
                    self.state = S_WAIT_BC
        elif self.state == S_WAIT_BC:
            if self.rel.sampled_on():
                self.state = S_BC_DATA
                self.bc_idx = 0
                self.result = 0
        elif self.state == S_BC_DATA:
            if self.rel.sampled_on():
                self.result |= 1 << self.bc_idx
            self.bc_idx += 1
            if self.bc_idx >= self.bw:
                self.state = S_DONE

    def _int_sample(self) -> None:
        """Round sampling under an integrity mode.  The master's ACK (a
        release-line pulse on the tick after the redundant samples)
        advances the round; a silent ACK tick repeats it."""
        if self.confirming:
            if self.iphase == 0:
                self.iphase = 1
            else:  # ACK tick of the confirm round
                if self.rel.sampled_on():
                    self.confirming = False
                self.iphase = 0
        elif self.mechanism == "count":
            if self.integ == "residue":
                # Residue rounds are unacknowledged single ticks; the
                # master checks the accumulated residue at the end.
                self.round += 1
                if self.round >= self._total_rounds():
                    self.state = S_WAIT_BC
            elif self.iphase < SAMPLES_PER_ROUND[self.integ]:
                self.iphase += 1
            else:  # ACK tick
                self.iphase = 0
                if self.rel.sampled_on():
                    self.round += 1
                    if self.round >= self.in_width:
                        self.state = S_WAIT_BC
        else:  # elim: transmits, then a valid tick, then the reflect
            ns = _elim_samples(self.integ)
            if self.iphase < ns:
                self.iphase += 1
            elif self.iphase == ns:  # valid tick (rel on = pair accepted)
                self.iphase = ns + 1 if self.rel.sampled_on() else 0
            else:  # reflect tick
                winner = 1 if self.rel.sampled_on() else 0
                if self.competing \
                        and ((self.value >> self.cur_bit) & 1) != winner:
                    self.competing = False
                self.cur_bit -= 1
                self.iphase = 0
                if self.cur_bit < 0:
                    self.state = S_WAIT_BC

    # ------------------------------------------------------------------ #
    def will_act(self) -> bool:
        """True if this controller changes state next tick unprompted."""
        return self.state in (S_SIGNAL, S_ROUNDS, S_BC_DATA)

    @property
    def idle(self) -> bool:
        return self.state == S_IDLE

    def snapshot(self) -> tuple:
        return (self.state, self.value, self.competing, self.pulses,
                self.round, self.reflect, self.cur_bit, self.bc_idx,
                self.result, self.mechanism, self.in_width,
                self.strong_bit, self.bw, self.integ, self.confirming,
                self.iphase)

    def restore(self, snap: tuple) -> None:
        (self.state, self.value, self.competing, self.pulses, self.round,
         self.reflect, self.cur_bit, self.bc_idx, self.result,
         self.mechanism, self.in_width, self.strong_bit, self.bw,
         self.integ, self.confirming, self.iphase) = snap


class StageMaster:
    """The master controller of a reduction stage.

    *n_slaves* may be 0 (single-column rows): the stage then completes
    as soon as the master's own operand is ready, with no wire activity.
    """

    __slots__ = ("tx", "rel", "rel_tid", "n_slaves", "mechanism",
                 "in_width", "strong_bit", "bw", "finalize", "state",
                 "own", "own_set", "arrived", "acc", "round", "cur_bit",
                 "own_competing", "pending_reflect", "result", "bc_value",
                 "bc_idx", "drove_rel", "fault_suspected", "mutation",
                 "integ", "int_budget", "confirming", "iphase",
                 "int_samples", "int_accept", "int_value", "int_retries",
                 "int_faults", "int_corrected", "int_exhausted", "racc")

    def __init__(self, tx: GLine | None, rel: GLine | None,
                 rel_tid: str = "", mutation: str | None = None) -> None:
        self.tx = tx
        self.rel = rel
        self.rel_tid = rel_tid
        if rel is not None:
            rel.attach(rel_tid)
        self.mutation = mutation
        self.n_slaves = 0
        # Per-episode parameters (configure()).
        self.mechanism = "count"
        self.in_width = 1
        self.strong_bit = 0
        self.bw = 1
        #: Applied to the raw accumulator: ("any"|"all"|None, n).
        self.finalize: tuple[str | None, int] = (None, 1)
        self.integ = "off"
        self.int_budget = 3
        # Mutable FSM state.
        self.state = M_GATHER
        self.own = 0
        self.own_set = False
        self.arrived = 0
        self.acc = 0
        self.round = 0
        self.cur_bit = 0
        self.own_competing = False
        self.pending_reflect = -1
        self.result = 0
        self.bc_value = 0
        self.bc_idx = 0
        self.drove_rel = False
        self.fault_suspected = False
        self.confirming = False
        self.iphase = 0
        self.int_samples: list[int] = []
        self.int_accept = False
        self.int_value = 0
        self.int_retries = 0
        self.int_faults = 0
        self.int_corrected = 0
        self.int_exhausted = False
        self.racc = 0

    # ------------------------------------------------------------------ #
    def configure(self, mechanism: str, in_width: int, strong_bit: int,
                  bw: int, finalize: tuple[str | None, int],
                  n_slaves: int, integ: str = "off",
                  int_budget: int = 3) -> None:
        self.mechanism = mechanism
        self.in_width = in_width
        self.strong_bit = strong_bit
        self.bw = bw
        self.finalize = finalize
        self.n_slaves = n_slaves
        self.integ = integ
        self.int_budget = int_budget

    def set_own(self, contrib: int) -> None:
        """Latch the master's co-located operand (register write, not a
        wire pulse -- the master is its own receiver)."""
        self.own = contrib
        self.own_set = True
        self._maybe_complete_gather()

    def resignal(self) -> None:
        """Watchdog retry: back to gather-start with the operand kept."""
        own, own_set = self.own, self.own_set
        self.reset()
        self.own, self.own_set = own, own_set
        self._maybe_complete_gather()

    def reset(self) -> None:
        self.state = M_GATHER
        self.own = 0
        self.own_set = False
        self.arrived = 0
        self.acc = 0
        self.round = 0
        self.cur_bit = 0
        self.own_competing = False
        self.pending_reflect = -1
        self.result = 0
        self.bc_value = 0
        self.bc_idx = 0
        self.drove_rel = False
        self.fault_suspected = False
        self.confirming = False
        self.iphase = 0
        self.int_samples = []
        self.int_accept = False
        self.int_value = 0
        self.int_retries = 0
        self.int_faults = 0
        self.int_corrected = 0
        self.int_exhausted = False
        self.racc = 0

    # ------------------------------------------------------------------ #
    def _maybe_complete_gather(self) -> None:
        if self.state != M_GATHER or not self.own_set \
                or self.arrived < self.n_slaves:
            return
        if self.mechanism == "bcast" or self.n_slaves == 0:
            # No rounds: the result is local arithmetic on the operand.
            self._finish(self.own)
        else:
            self.state = M_START

    def _finish(self, raw: int) -> None:
        fin, n = self.finalize
        if fin == "any":
            raw = 1 if raw > 0 else 0
        elif fin == "all":
            raw = 1 if raw == n else 0
        self.result = raw
        self.state = M_DONE

    def start_broadcast(self, value: int) -> None:
        """Fabric hand-off: push *value* down this stage's ``rel`` line."""
        self.bc_value = value
        self.bc_idx = 0
        if self.n_slaves == 0:
            self.state = M_BC_DONE
        else:
            self.state = M_BC_START

    # ------------------------------------------------------------------ #
    def assert_phase(self) -> None:
        self.drove_rel = False
        if self.rel is None:
            return
        if self.state == M_START:
            # The start pulse; the sample phase arms the round state so
            # the first round is counted one tick later, in lockstep with
            # the slaves (they observe this pulse at end of tick).
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
        elif self.state == M_ROUNDS and self.integ != "off":
            self._int_assert()
        elif self.state == M_ROUNDS and self.mechanism == "elim" \
                and self.pending_reflect == 1:
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
        elif self.state == M_BC_START:
            self.rel.assert_signal(self.rel_tid)
            self.drove_rel = True
            self.bc_idx = 0
            self.state = M_BC_DATA
        elif self.state == M_BC_DATA:
            last = self.bc_idx == self.bw - 1
            if (self.bc_value >> self.bc_idx) & 1 \
                    and not (last and self.mutation == "bcast-drop-msb"):
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True
            self.bc_idx += 1
            if self.bc_idx >= self.bw:
                self.state = M_BC_DONE

    def sample_phase(self) -> None:
        if self.state == M_GATHER:
            if self.tx is not None:
                cnt = self.tx.sample_count()
                if cnt:
                    self.arrived += cnt
                    if self.arrived > self.n_slaves:
                        self.fault_suspected = True
                        self.arrived = self.n_slaves
            self._maybe_complete_gather()
        elif self.state == M_START:
            # Pulse sent this tick; rounds are live from the next one.
            self.round = 0
            self.cur_bit = self.in_width - 1
            self.acc = 0 if self.mutation == "master-skip-own" else self.own
            self.own_competing = True
            self.pending_reflect = -1
            self.state = M_ROUNDS
            if self.integ != "off":
                self.confirming = True
                self.iphase = 0
                self.int_samples = []
                self.int_retries = 0
                self.racc = residue_of(self.acc)
            if self.mechanism == "elim":
                self.acc = 0
        elif self.state == M_ROUNDS:
            if self.integ != "off":
                self._int_sample()
            elif self.mechanism == "count":
                assert self.tx is not None
                cnt = self.tx.sample_count()
                if cnt > self.n_slaves:
                    self.fault_suspected = True
                    cnt = self.n_slaves
                self.acc += cnt << self.round
                self.round += 1
                if self.round >= self.in_width:
                    self._finish(self.acc)
            elif self.pending_reflect < 0:  # elim transmit tick
                assert self.tx is not None
                cnt = self.tx.sample_count()
                if cnt > self.n_slaves:
                    self.fault_suspected = True
                    cnt = self.n_slaves
                own_bit = (self.own >> self.cur_bit) & 1
                holders = cnt + (1 if self.own_competing
                                 and own_bit == self.strong_bit else 0)
                self.pending_reflect = (self.strong_bit if holders > 0
                                        else 1 - self.strong_bit)
            else:  # elim reflect tick
                winner = self.pending_reflect
                own_bit = (self.own >> self.cur_bit) & 1
                if self.own_competing and own_bit != winner:
                    self.own_competing = False
                self.acc |= winner << self.cur_bit
                self.pending_reflect = -1
                self.cur_bit -= 1
                if self.cur_bit < 0:
                    self._finish(self.acc)

    # ------------------------------------------------------------------ #
    # Integrity-mode round handling (see repro.gline.integrity).  The
    # protocol shape per counted round: SAMPLES_PER_ROUND redundant data
    # ticks then one ACK tick (echo/vote); residue data rounds stay
    # single-tick with RESIDUE_BITS check rounds appended.  Elimination
    # stages use redundant transmit ticks, a valid tick (ACK), then the
    # reflect tick.  A failed compare leaves the ACK silent so the whole
    # stage repeats the round in lockstep, bounded by int_budget.

    def _int_assert(self) -> None:
        assert self.rel is not None
        if self.confirming:
            if self.iphase == 1 and self.int_accept:
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True
        elif self.mechanism == "count":
            if self.integ != "residue" \
                    and self.iphase == SAMPLES_PER_ROUND[self.integ] \
                    and self.int_accept:
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True
        else:  # elim
            ns = _elim_samples(self.integ)
            if self.iphase == ns and self.int_accept:
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True
            elif self.iphase == ns + 1 and self.pending_reflect == 1:
                self.rel.assert_signal(self.rel_tid)
                self.drove_rel = True

    def _sample_tx(self) -> int:
        assert self.tx is not None
        cnt = self.tx.sample_count()
        if cnt > self.n_slaves:
            self.fault_suspected = True
            cnt = self.n_slaves
        return cnt

    def _int_decide(self, ok: bool, value: int) -> None:
        """Accept or retry a verified round; an exhausted retry budget
        accepts the (suspect) value but latches ``int_exhausted`` so the
        network escalates before the result can be delivered."""
        if self.mutation == "skip-echo-compare":
            ok = True
        if ok:
            self.int_accept = True
            self.int_value = value
            return
        self.int_faults += 1
        if self.int_retries < self.int_budget:
            self.int_retries += 1
            self.int_accept = False
        else:
            self.int_exhausted = True
            self.int_accept = True
            self.int_value = value

    def _int_sample(self) -> None:
        if self.confirming:
            self._int_sample_confirm()
        elif self.mechanism == "count":
            self._int_sample_count()
        else:
            self._int_sample_elim()

    def _int_sample_confirm(self) -> None:
        """The muster round: every slave in the round phase asserts, so
        the count must equal n_slaves.  Catches gather-phase overshoot
        (a miscount releasing rounds with a straggler pending) before
        any data round runs."""
        if self.iphase == 0:
            cnt = self._sample_tx()
            self._int_decide(cnt == self.n_slaves, cnt)
            self.iphase = 1
        else:  # ACK tick
            if self.int_accept:
                self.confirming = False
            self.iphase = 0

    def _int_sample_count(self) -> None:
        if self.integ == "residue":
            cnt = self._sample_tx()
            if self.round < self.in_width:
                self.acc += cnt << self.round
            else:
                self.racc += cnt << (self.round - self.in_width)
            self.round += 1
            if self.round >= self.in_width + RESIDUE_BITS:
                ok = (self.acc % RESIDUE_MOD) == (self.racc % RESIDUE_MOD)
                if self.mutation == "skip-echo-compare":
                    ok = True
                if not ok:
                    self.int_faults += 1
                    self.int_exhausted = True
                self._finish(self.acc)
            return
        ns = SAMPLES_PER_ROUND[self.integ]
        if self.iphase < ns:
            self.int_samples.append(self._sample_tx())
            self.iphase += 1
            if self.iphase == ns:
                self._int_judge_samples()
        else:  # ACK tick
            self.int_samples = []
            self.iphase = 0
            if self.int_accept:
                self.acc += self.int_value << self.round
                self.round += 1
                if self.round >= self.in_width:
                    self._finish(self.acc)

    def _int_judge_samples(self) -> None:
        if self.integ == "vote":
            maj = majority(self.int_samples)
            if maj is not None:
                if any(s != maj for s in self.int_samples):
                    self.int_corrected += 1
                self._int_decide(True, maj)
            else:
                self._int_decide(False, self.int_samples[0])
        else:  # echo pair
            ok = self.int_samples[0] == self.int_samples[1]
            self._int_decide(ok, self.int_samples[0])

    def _int_sample_elim(self) -> None:
        ns = _elim_samples(self.integ)
        if self.iphase < ns:
            self.int_samples.append(self._sample_tx())
            self.iphase += 1
            if self.iphase == ns:
                self._int_judge_samples()
        elif self.iphase == ns:  # valid tick
            self.int_samples = []
            if not self.int_accept:
                self.iphase = 0
                return
            own_bit = (self.own >> self.cur_bit) & 1
            holders = self.int_value + (1 if self.own_competing
                                        and own_bit == self.strong_bit else 0)
            self.pending_reflect = (self.strong_bit if holders > 0
                                    else 1 - self.strong_bit)
            self.iphase = ns + 1
        else:  # reflect tick
            winner = self.pending_reflect
            own_bit = (self.own >> self.cur_bit) & 1
            if self.own_competing and own_bit != winner:
                self.own_competing = False
            self.acc |= winner << self.cur_bit
            self.pending_reflect = -1
            self.cur_bit -= 1
            self.iphase = 0
            if self.cur_bit < 0:
                self._finish(self.acc)

    # ------------------------------------------------------------------ #
    def will_act(self) -> bool:
        return self.state in (M_START, M_ROUNDS, M_BC_START, M_BC_DATA)

    @property
    def idle(self) -> bool:
        return self.state == M_GATHER and not self.own_set \
            and self.arrived == 0

    def snapshot(self) -> tuple:
        return (self.state, self.own, self.own_set, self.arrived, self.acc,
                self.round, self.cur_bit, self.own_competing,
                self.pending_reflect, self.result, self.bc_value,
                self.bc_idx, self.drove_rel, self.fault_suspected,
                self.mechanism, self.in_width, self.strong_bit, self.bw,
                self.finalize, self.n_slaves, self.integ, self.int_budget,
                self.confirming, self.iphase, tuple(self.int_samples),
                self.int_accept, self.int_value, self.int_retries,
                self.int_faults, self.int_corrected, self.int_exhausted,
                self.racc)

    def restore(self, snap: tuple) -> None:
        (self.state, self.own, self.own_set, self.arrived, self.acc,
         self.round, self.cur_bit, self.own_competing,
         self.pending_reflect, self.result, self.bc_value, self.bc_idx,
         self.drove_rel, self.fault_suspected, self.mechanism,
         self.in_width, self.strong_bit, self.bw, self.finalize,
         self.n_slaves, self.integ, self.int_budget, self.confirming,
         self.iphase, int_samples, self.int_accept, self.int_value,
         self.int_retries, self.int_faults, self.int_corrected,
         self.int_exhausted, self.racc) = snap
        self.int_samples = list(int_samples)
