"""Context builder: flat / hierarchical / time-multiplexed selection.

The collective analogue of ``repro.gline.multibarrier.build_contexts``:
one arrive-capable context per ``CollectiveOp.ident``.

* ``time_slots > 1``: that many contexts share one physical fabric's
  wire budget (time multiplexing; the mesh must fit a single fabric);
* otherwise ``num_contexts`` replicated networks (space multiplexing),
  each flat when the mesh fits the S-CSMA fan-in and two-level
  hierarchical beyond that.
"""

from __future__ import annotations

from ..common.errors import CapacityError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..sim.engine import Engine
from .config import CollectiveConfig
from .hierarchical import HierarchicalCollectiveNetwork
from .network import CollectiveNetwork
from .timemux import build_time_multiplexed


def build_collective_contexts(engine: Engine, stats: StatsRegistry,
                              rows: int, cols: int,
                              gl_config: GLineConfig | None = None,
                              coll_config: CollectiveConfig | None = None,
                              name: str = "coll") -> list:
    """Build the chip's collective contexts per *coll_config*."""
    gl_config = gl_config or GLineConfig()
    coll_config = coll_config or CollectiveConfig()
    max_dim = gl_config.max_transmitters + 1
    if coll_config.time_slots > 1:
        if rows > max_dim or cols > max_dim:
            raise CapacityError(
                f"time multiplexing shares one physical fabric, which "
                f"supports at most {max_dim}x{max_dim} cores; "
                f"{rows}x{cols} needs the hierarchical variant "
                f"(time_slots must be 1)")
        return build_time_multiplexed(engine, stats, rows, cols,
                                      gl_config, coll_config, name=name)
    contexts = []
    for k in range(coll_config.num_contexts):
        ctx_name = f"{name}{k}" if coll_config.num_contexts > 1 else name
        if rows <= max_dim and cols <= max_dim:
            contexts.append(CollectiveNetwork(
                engine, stats, rows, cols, gl_config, coll_config,
                name=ctx_name))
        else:
            contexts.append(HierarchicalCollectiveNetwork(
                engine, stats, rows, cols, gl_config, coll_config,
                name=ctx_name))
    return contexts


def total_wires(contexts: list) -> int:
    """Physical wire budget across all contexts (time-multiplexed
    contexts share one fabric; replicated contexts each own theirs)."""
    if not contexts:
        return 0
    first = contexts[0]
    if hasattr(first, "slot"):
        return first.num_glines
    return sum(c.num_glines for c in contexts)
