"""Engine-backed collective network: one operation context on a chip.

Wraps one :class:`~repro.collectives.fabric.CollectiveFabric` with the
same lifecycle the barrier network gives its controllers: arrivals go
through a modelled ``col_reg`` write latency, the fabric is clocked at
``line_latency`` only while an episode is in flight (power gating), the
fault injector perturbs the wires between the assert and sample
sub-phases, and a hardened network (``CollectiveConfig.watchdog_budget``
> 0) guards its release lines, watches episode progress and -- after
bounded retries -- quarantines itself, bouncing every waiting core back
with the ``FAILOVER`` outcome so the library completes the operation
over the software NoC all-reduce.

``hold_result=True`` builds a *cluster* network for the hierarchical
variant: the locally reduced partial is reported through ``on_reduced``
instead of broadcast, and :meth:`open_result` later injects the
chip-global value.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..common.errors import CapacityError, GLineError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..faults import FAILOVER
from ..gline.gline import GLine
from ..gline.integrity import full_jitter
from ..gline.network import FAILOVER_REPORT_CAP, TICK_PRIORITY
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .config import CollectiveConfig
from .fabric import CollectiveFabric


class CollectiveNetwork(Component):
    """One collective operation context over a dedicated G-line fabric."""

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, gl_config: GLineConfig | None = None,
                 coll_config: CollectiveConfig | None = None,
                 name: str = "collnet",
                 core_ids: list[int] | None = None,
                 hold_result: bool = False,
                 mutation: str | None = None):
        super().__init__(engine, stats, name)
        self.gl_config = gl_config or GLineConfig()
        self.coll_config = coll_config or CollectiveConfig()
        max_dim = self.gl_config.max_transmitters + 1
        if rows > max_dim or cols > max_dim:
            raise CapacityError(
                f"a single collective network supports at most "
                f"{max_dim}x{max_dim} cores (S-CSMA limit of "
                f"{self.gl_config.max_transmitters} transmitters per "
                f"line); use repro.collectives.hierarchical for "
                f"{rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.core_ids = core_ids or list(range(rows * cols))
        if len(self.core_ids) != rows * cols:
            raise CapacityError("core_ids must cover the full mesh")
        self.num_cores = rows * cols
        self._local_of = {cid: i for i, cid in enumerate(self.core_ids)}

        self.fabric = CollectiveFabric(
            rows, cols, self.coll_config.value_width,
            self.gl_config.max_transmitters, name=name,
            hold_result=hold_result, mutation=mutation,
            integrity=self.coll_config.integrity,
            integrity_budget=self.coll_config.integrity_retry_budget)
        self._int_on = self.coll_config.integrity != "off"
        self.hardened = self.coll_config.watchdog_budget > 0
        self.fabric.guard = self.hardened
        self.fabric.wire_probe = self._wire_probe
        if hold_result:
            self.fabric.on_reduced = self._on_partial

        self.active = False
        self.active_cycles = 0
        self.collectives_completed = 0
        #: Per-episode bookkeeping.
        self._resumes: dict[int, Callable | None] = {}
        #: Locals already delivered in the open episode (deliveries
        #: stagger: row 0 finishes its broadcast before the column
        #: result has reached the other rows).
        self._delivered_locals: set[int] = set()
        #: Next-episode arrivals from already-delivered cores, drained
        #: when the open episode closes.
        self._pending: list[tuple[int, str, int, Callable | None]] = []
        self._kind: str | None = None
        self._first_arrival: int | None = None
        self._last_arrival: int | None = None
        #: Per-episode broadcast-width override (hierarchical clusters
        #: frame the chip-global width, not their own).
        self.bcast_width_fn: Callable[[str], int | None] | None = None
        #: Hierarchical hooks: partial ready / network gave up.
        self.on_reduced: Callable[[int], None] | None = None
        self.on_failover: Callable[[], None] | None = None

        # ---- fault handling (mirrors the barrier network) ------------ #
        self.injector = None
        self.fault_stats = stats
        self.quarantined = False
        self.detections = 0
        self.retries = 0
        self.failovers = 0
        self._episode_retries = 0
        self.flight = None
        self.failover_reports: deque[str] = deque(maxlen=FAILOVER_REPORT_CAP)
        self.failover_reports_dropped = 0

        # ---- integrity ladder bookkeeping (bounded like the above) --- #
        self.int_detections = 0
        self.int_round_retries = 0
        self.int_corrections = 0
        self.int_op_retries = 0
        self.int_failovers = 0
        self.integrity_log: deque[str] = deque(maxlen=FAILOVER_REPORT_CAP)
        self.integrity_log_dropped = 0
        #: Snapshot of the episode shape at the moment of the last
        #: failover (read by the hierarchical segment machinery, which
        #: must not split an episode that already delivered results).
        self.last_partial_delivery = False
        self.last_parked = False
        #: Cluster-retry state: a watchdog or integrity retry restarts
        #: the whole wire protocol, and on a ``hold_result`` network the
        #: re-run reduction parks *again* -- these track whether the
        #: partial already went upstream (never re-report it) and
        #: whether the upper level already handed the global result back
        #: (redo only the local broadcast leg).
        self._partial_reported = False
        self._open_value: int | None = None
        #: The open episode's completed result, latched at the first
        #: delivery (all deliveries of an episode broadcast one value).
        #: A failover taken after partial delivery hands this to the
        #: still-waiting cores instead of FAILOVER: the software cohort
        #: can never form once some cores already committed a hardware
        #: result (the one-cohort guarantee), and the value is known.
        self._episode_value: int | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_glines(self) -> int:
        return len(self.fabric.lines)

    @property
    def lines(self) -> list[GLine]:
        return self.fabric.lines

    # ------------------------------------------------------------------ #
    # Arrival interface (called by the core / collective library)
    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, kind: str, value: int, resume) -> None:
        """Core *core_id* writes (kind, value) to its col_reg; *resume*
        runs with the collective's result (or ``FAILOVER``)."""
        self.schedule(self.gl_config.barreg_write_cycles,
                      self._set_colreg, core_id, kind, value, resume)

    def _set_colreg(self, core_id: int, kind: str, value: int,
                    resume) -> None:
        if self.quarantined:
            if resume is not None:
                self.schedule(0, resume, FAILOVER)
            return
        local = self._local_of[core_id]
        if local in self._resumes:
            raise CapacityError(
                f"core {core_id} re-arrived at collective {self.name} "
                f"before completion (one outstanding op per context)")
        if self._kind is not None and local in self._delivered_locals:
            # This core finished the open episode early (its row's
            # broadcast completed first) and is starting the next one.
            self._pending.append((core_id, kind, value, resume))
            return
        if self._kind is None:
            self._kind = kind
            bw = None
            if self.bcast_width_fn is not None:
                bw = self.bcast_width_fn(kind)
            self.fabric.begin(kind, bcast_width=bw)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_START,
                                 op=kind,
                                 width=self.coll_config.value_width)
        elif kind != self._kind:
            raise GLineError(
                f"collective {self.name}: core {core_id} arrived with "
                f"kind {kind!r} during an open {self._kind!r} episode")
        self.fabric.arrive_local(local, value)
        self._resumes[local] = resume
        if self._first_arrival is None:
            self._first_arrival = self.now
        self._last_arrival = self.now
        arrived = len(self._resumes)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_ARRIVE,
                             core=core_id, op=kind, value=value,
                             arrived=arrived, of=self.num_cores)
        if self.flight is not None:
            self.flight.record(core_id, self.now, self.name,
                               obs_ev.GL_REDUCE_ARRIVE, op=kind,
                               arrived=arrived, of=self.num_cores)
        # Deliveries can precede the last arrival (a faulted bcast gather
        # can release early arrivals first), so count delivered locals
        # toward episode-complete: once every core has either arrived or
        # been released, completion is bounded and the watchdog arms.
        if self.hardened and arrived + len(self._delivered_locals) \
                == self.num_cores:
            self._arm_watchdog()
        if not self.active:
            self.active = True
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    # ------------------------------------------------------------------ #
    # Clocking
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        self.active_cycles += 1
        if self.injector is not None and self.fabric.perturb_hook is None:
            self.fabric.perturb_hook = self._perturb
        deliveries = self.fabric.tick()
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_ROUND,
                             op=self._kind, tick=self.active_cycles)

        # Integrity escalation runs before delivery processing so an
        # exhausted (suspect) result can never reach a core.
        if self._int_on and self._integrity_scan():
            return

        if deliveries:
            self._complete(deliveries)

        fault = self.hardened and self.fabric.collect_fault()
        if fault and self._resumes:
            self._handle_fault()
            return

        # Integrity-hardened contexts free-run while an episode is open:
        # the verification logic is clocked even between arrivals, which
        # also keeps model-checker replays cycle-aligned.
        if self.fabric.will_act() or (self._int_on
                                      and self._kind is not None):
            self.schedule(self.gl_config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
        else:
            self.active = False

    def _perturb(self, lines: list[GLine]) -> None:
        self.injector.perturb_glines(lines, now=self.now)

    def _wire_probe(self, lines: list[GLine]) -> None:
        tracing = self.tracer.enabled
        for line in lines:
            if tracing:
                self.tracer.emit(self.now, line.name, obs_ev.GL_WIRE,
                                 level=int(line.sampled_on()),
                                 count=line.sample_count())
            self.stats.gline_toggles += len(line._asserting)

    def _complete(self, deliveries: list[tuple[int, int]]) -> None:
        release_time = self.now + 1
        if self._episode_value is None and deliveries:
            self._episode_value = deliveries[0][1]
        for local, value in deliveries:
            self._delivered_locals.add(local)
            resume = self._resumes.pop(local, None)
            if resume is not None:
                self.engine.schedule_at(release_time, resume, value)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_REDUCE_RESULT,
                                 core=self.core_ids[local], value=value,
                                 op=self._kind)
            if self.flight is not None:
                self.flight.record(self.core_ids[local], self.now,
                                   self.name, obs_ev.GL_REDUCE_RESULT,
                                   value=value, op=self._kind)
        if not self._resumes and self.fabric.done:
            self._finish_episode(release_time)

    def _finish_episode(self, release_time: int) -> None:
        self.collectives_completed += 1
        self._episode_retries = 0
        self.stats.bump("collectives.completed")
        if self.metrics is not None:
            self.metrics.counter("collectives.episodes").inc()
            if self._last_arrival is not None:
                self.metrics.histogram(
                    "collectives.episode_latency").record(
                        release_time - self._last_arrival)
            if self._first_arrival is not None:
                self.metrics.histogram("collectives.episode_span").record(
                    release_time - self._first_arrival)
        self._kind = None
        self._first_arrival = None
        self._last_arrival = None
        self._delivered_locals.clear()
        self._partial_reported = False
        self._open_value = None
        self._episode_value = None
        self.fabric.close_episode()
        if self._pending:
            pending, self._pending = self._pending, []
            for core_id, kind, value, resume in pending:
                self._set_colreg(core_id, kind, value, resume)

    # ------------------------------------------------------------------ #
    # Hierarchical cluster hooks
    # ------------------------------------------------------------------ #
    def _on_partial(self, result: int) -> None:
        """The held fabric parked its local partial; report upward
        exactly once per episode.

        A watchdog or integrity retry restarts the wire protocol with
        the operands still latched, so the reduction re-runs and parks
        again.  If the upper level already resumed us with the global
        result (the retry hit mid-broadcast), the re-parked partial is
        stale *and* already consumed: redo the local broadcast leg
        instead.  If it was reported but not yet resumed, stay parked --
        the upper level holds the partial and will call
        :meth:`open_result` when its own episode completes."""
        if self._open_value is not None:
            self.fabric.open_with(self._open_value)
            return
        if self._partial_reported:
            return
        self._partial_reported = True
        if self.on_reduced is not None:
            self.on_reduced(result)

    def open_result(self, value: int) -> None:
        """Hierarchical hand-off: broadcast the chip-global *value*
        locally and resume the cluster root directly (the upper level
        computed its result)."""
        self._open_value = value
        self._episode_value = value
        root_resume = self._resumes.pop(0, None)
        self._delivered_locals.add(0)
        if root_resume is not None:
            self.engine.schedule_at(self.now + 1, root_resume, value)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_RESULT,
                             core=self.core_ids[0], value=value,
                             op=self._kind)
        self.fabric.open_with(value)
        if self.hardened:
            self._arm_watchdog()
        if not self.active and self.fabric.will_act():
            self.active = True
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    def abort_episode(self) -> None:
        """Upper level failed over: this cluster's episode completes in
        software too (one cohort, like the barrier's segment abort)."""
        if self._resumes or self._kind is not None:
            self.failover(reason="upper-level failover")

    @property
    def parked(self) -> bool:
        """Holding a reduced partial, waiting for the upper level."""
        return (self.fabric.hold_result and self.fabric._global_ready
                and not self.fabric._bc_started)

    # ------------------------------------------------------------------ #
    # Watchdog, retry and failover
    # ------------------------------------------------------------------ #
    def _arm_watchdog(self) -> None:
        token = (self.collectives_completed, self.failovers,
                 self._episode_retries)
        self.schedule(self.coll_config.watchdog_budget,
                      self._watchdog_check, token)

    def _watchdog_check(self, token) -> None:
        if token != (self.collectives_completed, self.failovers,
                     self._episode_retries):
            return
        if not self._resumes or self.quarantined:
            return
        if self.parked:
            # The wait belongs to the upper hierarchy level;
            # ``open_result`` re-arms us for the broadcast leg.
            return
        self._handle_fault()

    def _handle_fault(self) -> None:
        self.detections += 1
        self.fault_stats.bump("faults.collective.detections")
        if self._episode_retries < self.coll_config.watchdog_retries:
            self._episode_retries += 1
            self.retries += 1
            self.fault_stats.bump("faults.collective.retries")
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_WATCHDOG_RETRY,
                                 attempt=self._episode_retries,
                                 arrived=len(self._resumes))
            # Operands are still latched in the col_regs: restart the
            # wire protocol; transients heal, permanent damage re-trips.
            self.fabric.reset_episode(keep_operands=True)
            self.active = True
            self.schedule(self.gl_config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
            # Re-arm while ANY core is still waiting: a retry taken
            # mid-broadcast (partial deliveries done) must stay guarded
            # or a re-wedged episode starves the remaining cores.
            if self.hardened and self._resumes:
                self._arm_watchdog()
        else:
            self.failover()

    # ------------------------------------------------------------------ #
    # Integrity recovery ladder (round retries live in the controllers;
    # this is the whole-operation rung and the hand-off to failover).
    # ------------------------------------------------------------------ #
    def _integrity_scan(self) -> bool:
        """Collect this tick's integrity activity; True if the episode
        escalated (the caller's tick must stop)."""
        d_det, d_retry, d_corr, exhausted = self.fabric.collect_integrity()
        if d_det:
            self.int_detections += d_det
            self.fault_stats.bump("faults.integrity.detections", d_det)
            if self.metrics is not None:
                self.metrics.counter(
                    "collectives.integrity.detections").inc(d_det)
            if self.tracer.enabled:
                # corrected rides along so trace audits can tell
                # self-healing detections (vote) from ones that need a
                # retry/escalation to follow.
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_INTEGRITY_FAIL,
                                 op=self._kind, count=d_det,
                                 corrected=d_corr)
            self._log_integrity(
                f"{self.name}: {d_det} corrupted round(s) detected at "
                f"cycle {self.now} ({self._kind})")
        if d_retry:
            self.int_round_retries += d_retry
            self.fault_stats.bump("faults.integrity.round_retries", d_retry)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_INTEGRITY_RETRY,
                                 op=self._kind, count=d_retry)
        if d_corr:
            self.int_corrections += d_corr
            self.fault_stats.bump("faults.integrity.corrections", d_corr)
        if exhausted and (self._resumes or self._pending):
            self._integrity_escalate()
            return True
        return False

    def _integrity_escalate(self) -> None:
        """Round retries are spent: retry the whole operation (with
        deterministic full-jitter backoff), then fail the episode over."""
        self.fault_stats.bump("faults.integrity.exhausted")
        if self._episode_retries < self.coll_config.watchdog_retries:
            self._episode_retries += 1
            self.retries += 1
            self.int_op_retries += 1
            self.fault_stats.bump("faults.integrity.op_retries")
            delay = self.gl_config.line_latency + full_jitter(
                self.name, self.collectives_completed,
                self._episode_retries)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_INTEGRITY_ESCALATE,
                                 attempt=self._episode_retries,
                                 delay=delay, op=self._kind)
            self._log_integrity(
                f"{self.name}: integrity budget exhausted at cycle "
                f"{self.now}; whole-op retry {self._episode_retries} "
                f"after {delay} cycle backoff")
            self.fabric.reset_episode(keep_operands=True)
            self.active = True
            self.schedule(delay, self._tick, priority=TICK_PRIORITY)
            if self.hardened and self._resumes:
                self._arm_watchdog()
        else:
            self.int_failovers += 1
            self.fault_stats.bump("faults.integrity.failovers")
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_INTEGRITY_FAILOVER,
                                 retries=self._episode_retries,
                                 op=self._kind)
            self._log_integrity(
                f"{self.name}: integrity failover at cycle {self.now} "
                f"after {self._episode_retries} whole-op retries")
            self.failover(reason="integrity")

    def _log_failover(self, report: str) -> None:
        if len(self.failover_reports) == self.failover_reports.maxlen:
            self.failover_reports_dropped += 1
            self.fault_stats.bump("faults.collective.reports_dropped")
            if self.metrics is not None:
                self.metrics.counter(
                    "collectives.failover.reports_dropped").inc()
        self.failover_reports.append(report)

    def _log_integrity(self, message: str) -> None:
        if len(self.integrity_log) == self.integrity_log.maxlen:
            self.integrity_log_dropped += 1
            self.fault_stats.bump("faults.integrity.log_dropped")
            if self.metrics is not None:
                self.metrics.counter(
                    "collectives.integrity.log_dropped").inc()
        self.integrity_log.append(message)

    def failover(self, reason: str = "watchdog") -> None:
        """Quarantine this context and bounce every waiting core with the
        FAILOVER outcome; the library completes the operation over the
        software NoC all-reduce (same-cohort guarantee as the barrier)."""
        self.last_partial_delivery = bool(self._delivered_locals)
        self.last_parked = self.parked
        self.quarantined = True
        self.failovers += 1
        self.fault_stats.bump("faults.collective.failovers")
        waiting = [self.core_ids[local] for local in sorted(self._resumes)]
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_FAILOVER,
                             waiting=list(waiting), retries=self.retries,
                             op=self._kind)
        if self.flight is not None:
            for cid in waiting:
                self.flight.record(cid, self.now, self.name,
                                   obs_ev.GL_REDUCE_FAILOVER,
                                   retries=self.retries)
        report = (f"{self.name}: {reason} FAILOVER at cycle {self.now} "
                  f"after {self._episode_retries} retries; waiting cores "
                  f"{waiting} bounced to software all-reduce")
        if self.flight is not None:
            tail = self.flight.format_tail(waiting)
            if tail:
                report += "\n" + tail
        self._log_failover(report)
        release_time = self.now + 1
        # Cores already committed a hardware result for this episode?
        # Then its final value exists (deliveries broadcast one value)
        # and the software cohort can never reach full strength: finish
        # the stragglers with that value.  FAILOVER only when the whole
        # episode moves to software together.
        outcome = self._episode_value \
            if self._delivered_locals and self._episode_value is not None \
            else FAILOVER
        for local in sorted(self._resumes):
            resume = self._resumes[local]
            if resume is not None:
                self.engine.schedule_at(release_time, resume, outcome)
        # Next-episode arrivals always bounce: nothing of *their* episode
        # ran in hardware, and the quarantined network routes the rest of
        # their cohort to software on arrival.
        for _core_id, _kind, _value, resume in self._pending:
            if resume is not None:
                self.engine.schedule_at(release_time, resume, FAILOVER)
        self._pending.clear()
        self._resumes.clear()
        self._delivered_locals.clear()
        self._kind = None
        self._first_arrival = None
        self._last_arrival = None
        self._episode_retries = 0
        self._partial_reported = False
        self._open_value = None
        self._episode_value = None
        self.fabric.close_episode()
        self.active = False
        if self.on_failover is not None:
            self.on_failover()

    # ------------------------------------------------------------------ #
    def set_injector(self, injector) -> None:
        self.injector = injector
        self.fabric.perturb_hook = (self._perturb if injector is not None
                                    else None)

    def set_stats(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self.fault_stats = stats

    def set_obs(self, obs) -> None:
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self.flight = obs.flight

    def fully_idle(self) -> bool:
        return not self._resumes and self.fabric.idle
