"""Engine-backed collective network: one operation context on a chip.

Wraps one :class:`~repro.collectives.fabric.CollectiveFabric` with the
same lifecycle the barrier network gives its controllers: arrivals go
through a modelled ``col_reg`` write latency, the fabric is clocked at
``line_latency`` only while an episode is in flight (power gating), the
fault injector perturbs the wires between the assert and sample
sub-phases, and a hardened network (``CollectiveConfig.watchdog_budget``
> 0) guards its release lines, watches episode progress and -- after
bounded retries -- quarantines itself, bouncing every waiting core back
with the ``FAILOVER`` outcome so the library completes the operation
over the software NoC all-reduce.

``hold_result=True`` builds a *cluster* network for the hierarchical
variant: the locally reduced partial is reported through ``on_reduced``
instead of broadcast, and :meth:`open_result` later injects the
chip-global value.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..common.errors import CapacityError, GLineError
from ..common.params import GLineConfig
from ..common.stats import StatsRegistry
from ..faults import FAILOVER
from ..gline.gline import GLine
from ..gline.network import FAILOVER_REPORT_CAP, TICK_PRIORITY
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .config import CollectiveConfig
from .fabric import CollectiveFabric


class CollectiveNetwork(Component):
    """One collective operation context over a dedicated G-line fabric."""

    def __init__(self, engine: Engine, stats: StatsRegistry, rows: int,
                 cols: int, gl_config: GLineConfig | None = None,
                 coll_config: CollectiveConfig | None = None,
                 name: str = "collnet",
                 core_ids: list[int] | None = None,
                 hold_result: bool = False,
                 mutation: str | None = None):
        super().__init__(engine, stats, name)
        self.gl_config = gl_config or GLineConfig()
        self.coll_config = coll_config or CollectiveConfig()
        max_dim = self.gl_config.max_transmitters + 1
        if rows > max_dim or cols > max_dim:
            raise CapacityError(
                f"a single collective network supports at most "
                f"{max_dim}x{max_dim} cores (S-CSMA limit of "
                f"{self.gl_config.max_transmitters} transmitters per "
                f"line); use repro.collectives.hierarchical for "
                f"{rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.core_ids = core_ids or list(range(rows * cols))
        if len(self.core_ids) != rows * cols:
            raise CapacityError("core_ids must cover the full mesh")
        self.num_cores = rows * cols
        self._local_of = {cid: i for i, cid in enumerate(self.core_ids)}

        self.fabric = CollectiveFabric(
            rows, cols, self.coll_config.value_width,
            self.gl_config.max_transmitters, name=name,
            hold_result=hold_result, mutation=mutation)
        self.hardened = self.coll_config.watchdog_budget > 0
        self.fabric.guard = self.hardened
        self.fabric.wire_probe = self._wire_probe
        if hold_result:
            self.fabric.on_reduced = self._on_partial

        self.active = False
        self.active_cycles = 0
        self.collectives_completed = 0
        #: Per-episode bookkeeping.
        self._resumes: dict[int, Callable | None] = {}
        #: Locals already delivered in the open episode (deliveries
        #: stagger: row 0 finishes its broadcast before the column
        #: result has reached the other rows).
        self._delivered_locals: set[int] = set()
        #: Next-episode arrivals from already-delivered cores, drained
        #: when the open episode closes.
        self._pending: list[tuple[int, str, int, Callable | None]] = []
        self._kind: str | None = None
        self._first_arrival: int | None = None
        self._last_arrival: int | None = None
        #: Per-episode broadcast-width override (hierarchical clusters
        #: frame the chip-global width, not their own).
        self.bcast_width_fn: Callable[[str], int | None] | None = None
        #: Hierarchical hooks: partial ready / network gave up.
        self.on_reduced: Callable[[int], None] | None = None
        self.on_failover: Callable[[], None] | None = None

        # ---- fault handling (mirrors the barrier network) ------------ #
        self.injector = None
        self.fault_stats = stats
        self.quarantined = False
        self.detections = 0
        self.retries = 0
        self.failovers = 0
        self._episode_retries = 0
        self.flight = None
        self.failover_reports: deque[str] = deque(maxlen=FAILOVER_REPORT_CAP)
        self.failover_reports_dropped = 0

    # ------------------------------------------------------------------ #
    @property
    def num_glines(self) -> int:
        return len(self.fabric.lines)

    @property
    def lines(self) -> list[GLine]:
        return self.fabric.lines

    # ------------------------------------------------------------------ #
    # Arrival interface (called by the core / collective library)
    # ------------------------------------------------------------------ #
    def arrive(self, core_id: int, kind: str, value: int, resume) -> None:
        """Core *core_id* writes (kind, value) to its col_reg; *resume*
        runs with the collective's result (or ``FAILOVER``)."""
        self.schedule(self.gl_config.barreg_write_cycles,
                      self._set_colreg, core_id, kind, value, resume)

    def _set_colreg(self, core_id: int, kind: str, value: int,
                    resume) -> None:
        if self.quarantined:
            if resume is not None:
                self.schedule(0, resume, FAILOVER)
            return
        local = self._local_of[core_id]
        if local in self._resumes:
            raise CapacityError(
                f"core {core_id} re-arrived at collective {self.name} "
                f"before completion (one outstanding op per context)")
        if self._kind is not None and local in self._delivered_locals:
            # This core finished the open episode early (its row's
            # broadcast completed first) and is starting the next one.
            self._pending.append((core_id, kind, value, resume))
            return
        if self._kind is None:
            self._kind = kind
            bw = None
            if self.bcast_width_fn is not None:
                bw = self.bcast_width_fn(kind)
            self.fabric.begin(kind, bcast_width=bw)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_START,
                                 op=kind,
                                 width=self.coll_config.value_width)
        elif kind != self._kind:
            raise GLineError(
                f"collective {self.name}: core {core_id} arrived with "
                f"kind {kind!r} during an open {self._kind!r} episode")
        self.fabric.arrive_local(local, value)
        self._resumes[local] = resume
        if self._first_arrival is None:
            self._first_arrival = self.now
        self._last_arrival = self.now
        arrived = len(self._resumes)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_ARRIVE,
                             core=core_id, op=kind, value=value,
                             arrived=arrived, of=self.num_cores)
        if self.flight is not None:
            self.flight.record(core_id, self.now, self.name,
                               obs_ev.GL_REDUCE_ARRIVE, op=kind,
                               arrived=arrived, of=self.num_cores)
        if self.hardened and arrived == self.num_cores:
            self._arm_watchdog()
        if not self.active:
            self.active = True
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    # ------------------------------------------------------------------ #
    # Clocking
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        self.active_cycles += 1
        if self.injector is not None and self.fabric.perturb_hook is None:
            self.fabric.perturb_hook = self._perturb
        deliveries = self.fabric.tick()
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_ROUND,
                             op=self._kind, tick=self.active_cycles)

        if deliveries:
            self._complete(deliveries)

        fault = self.hardened and self.fabric.collect_fault()
        if fault and self._resumes:
            self._handle_fault()
            return

        if self.fabric.will_act():
            self.schedule(self.gl_config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
        else:
            self.active = False

    def _perturb(self, lines: list[GLine]) -> None:
        self.injector.perturb_glines(lines, now=self.now)

    def _wire_probe(self, lines: list[GLine]) -> None:
        tracing = self.tracer.enabled
        for line in lines:
            if tracing:
                self.tracer.emit(self.now, line.name, obs_ev.GL_WIRE,
                                 level=int(line.sampled_on()),
                                 count=line.sample_count())
            self.stats.gline_toggles += len(line._asserting)

    def _complete(self, deliveries: list[tuple[int, int]]) -> None:
        release_time = self.now + 1
        for local, value in deliveries:
            self._delivered_locals.add(local)
            resume = self._resumes.pop(local, None)
            if resume is not None:
                self.engine.schedule_at(release_time, resume, value)
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_REDUCE_RESULT,
                                 core=self.core_ids[local], value=value,
                                 op=self._kind)
            if self.flight is not None:
                self.flight.record(self.core_ids[local], self.now,
                                   self.name, obs_ev.GL_REDUCE_RESULT,
                                   value=value, op=self._kind)
        if not self._resumes and self.fabric.done:
            self._finish_episode(release_time)

    def _finish_episode(self, release_time: int) -> None:
        self.collectives_completed += 1
        self._episode_retries = 0
        self.stats.bump("collectives.completed")
        if self.metrics is not None:
            self.metrics.counter("collectives.episodes").inc()
            if self._last_arrival is not None:
                self.metrics.histogram(
                    "collectives.episode_latency").record(
                        release_time - self._last_arrival)
            if self._first_arrival is not None:
                self.metrics.histogram("collectives.episode_span").record(
                    release_time - self._first_arrival)
        self._kind = None
        self._first_arrival = None
        self._last_arrival = None
        self._delivered_locals.clear()
        self.fabric.close_episode()
        if self._pending:
            pending, self._pending = self._pending, []
            for core_id, kind, value, resume in pending:
                self._set_colreg(core_id, kind, value, resume)

    # ------------------------------------------------------------------ #
    # Hierarchical cluster hooks
    # ------------------------------------------------------------------ #
    def _on_partial(self, result: int) -> None:
        """The held fabric parked its local partial; report upward."""
        if self.on_reduced is not None:
            self.on_reduced(result)

    def open_result(self, value: int) -> None:
        """Hierarchical hand-off: broadcast the chip-global *value*
        locally and resume the cluster root directly (the upper level
        computed its result)."""
        root_resume = self._resumes.pop(0, None)
        self._delivered_locals.add(0)
        if root_resume is not None:
            self.engine.schedule_at(self.now + 1, root_resume, value)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_RESULT,
                             core=self.core_ids[0], value=value,
                             op=self._kind)
        self.fabric.open_with(value)
        if self.hardened:
            self._arm_watchdog()
        if not self.active and self.fabric.will_act():
            self.active = True
            self.schedule(0, self._tick, priority=TICK_PRIORITY)

    def abort_episode(self) -> None:
        """Upper level failed over: this cluster's episode completes in
        software too (one cohort, like the barrier's segment abort)."""
        if self._resumes or self._kind is not None:
            self.failover(reason="upper-level failover")

    @property
    def parked(self) -> bool:
        """Holding a reduced partial, waiting for the upper level."""
        return (self.fabric.hold_result and self.fabric._global_ready
                and not self.fabric._bc_started)

    # ------------------------------------------------------------------ #
    # Watchdog, retry and failover
    # ------------------------------------------------------------------ #
    def _arm_watchdog(self) -> None:
        token = (self.collectives_completed, self.failovers,
                 self._episode_retries)
        self.schedule(self.coll_config.watchdog_budget,
                      self._watchdog_check, token)

    def _watchdog_check(self, token) -> None:
        if token != (self.collectives_completed, self.failovers,
                     self._episode_retries):
            return
        if not self._resumes or self.quarantined:
            return
        if self.parked:
            # The wait belongs to the upper hierarchy level;
            # ``open_result`` re-arms us for the broadcast leg.
            return
        self._handle_fault()

    def _handle_fault(self) -> None:
        self.detections += 1
        self.fault_stats.bump("faults.collective.detections")
        if self._episode_retries < self.coll_config.watchdog_retries:
            self._episode_retries += 1
            self.retries += 1
            self.fault_stats.bump("faults.collective.retries")
            if self.tracer.enabled:
                self.tracer.emit(self.now, self.name,
                                 obs_ev.GL_WATCHDOG_RETRY,
                                 attempt=self._episode_retries,
                                 arrived=len(self._resumes))
            # Operands are still latched in the col_regs: restart the
            # wire protocol; transients heal, permanent damage re-trips.
            self.fabric.reset_episode(keep_operands=True)
            self.active = True
            self.schedule(self.gl_config.line_latency, self._tick,
                          priority=TICK_PRIORITY)
            if self.hardened and len(self._resumes) == self.num_cores:
                self._arm_watchdog()
        else:
            self.failover()

    def failover(self, reason: str = "watchdog") -> None:
        """Quarantine this context and bounce every waiting core with the
        FAILOVER outcome; the library completes the operation over the
        software NoC all-reduce (same-cohort guarantee as the barrier)."""
        self.quarantined = True
        self.failovers += 1
        self.fault_stats.bump("faults.collective.failovers")
        waiting = [self.core_ids[local] for local in sorted(self._resumes)]
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.GL_REDUCE_FAILOVER,
                             waiting=list(waiting), retries=self.retries,
                             op=self._kind)
        if self.flight is not None:
            for cid in waiting:
                self.flight.record(cid, self.now, self.name,
                                   obs_ev.GL_REDUCE_FAILOVER,
                                   retries=self.retries)
        report = (f"{self.name}: {reason} FAILOVER at cycle {self.now} "
                  f"after {self._episode_retries} retries; waiting cores "
                  f"{waiting} bounced to software all-reduce")
        if self.flight is not None:
            tail = self.flight.format_tail(waiting)
            if tail:
                report += "\n" + tail
        if len(self.failover_reports) == self.failover_reports.maxlen:
            self.failover_reports_dropped += 1
            self.fault_stats.bump("faults.collective.reports_dropped")
        self.failover_reports.append(report)
        release_time = self.now + 1
        for local in sorted(self._resumes):
            resume = self._resumes[local]
            if resume is not None:
                self.engine.schedule_at(release_time, resume, FAILOVER)
        for _core_id, _kind, _value, resume in self._pending:
            if resume is not None:
                self.engine.schedule_at(release_time, resume, FAILOVER)
        self._pending.clear()
        self._resumes.clear()
        self._delivered_locals.clear()
        self._kind = None
        self._first_arrival = None
        self._last_arrival = None
        self._episode_retries = 0
        self.fabric.close_episode()
        self.active = False
        if self.on_failover is not None:
            self.on_failover()

    # ------------------------------------------------------------------ #
    def set_injector(self, injector) -> None:
        self.injector = injector
        self.fabric.perturb_hook = (self._perturb if injector is not None
                                    else None)

    def set_stats(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self.fault_stats = stats

    def set_obs(self, obs) -> None:
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self.flight = obs.flight

    def fully_idle(self) -> bool:
        return not self._resumes and self.fabric.idle
