"""Configuration of the G-line collective engine.

Lives beside the fabric (not in ``repro.common.params``) because
``CMPConfig`` embeds it -- importing the other way round would cycle.
The serialization contract matches the other leaf configs: flat JSON
primitives, lossless ``to_dict``/``from_dict`` round trip, eager
validation.

``enabled`` defaults to ``False`` and gates *all* construction: a chip
with collectives off builds no wires, allocates no fallback memory and
schedules no events, so every pre-existing run (and its exec-cache
entry and golden result) is byte-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from ..common.errors import ConfigError


@dataclass(frozen=True)
class CollectiveConfig:
    """Parameters of the collective fabric bound to a chip."""

    #: Master switch; everything below is inert while False.
    enabled: bool = False
    #: "gl" = G-line bit-serial fabric (with optional software failover);
    #: "sw" = pure software all-reduce over the NoC (the shootout
    #: baseline).
    backend: str = "gl"
    #: Operand width in bits; inputs are masked to this width.
    value_width: int = 8
    #: Independent in-flight operation contexts (``CollectiveOp.ident``
    #: selects one), multiplexed like the multibarrier extension.
    num_contexts: int = 1
    #: Time multiplexing: >1 shares one physical wire budget between
    #: this many contexts by slot-interleaving their clocks.  1 (or 0)
    #: replicates the wires per context (space multiplexing).
    time_slots: int = 1
    #: Hardening: once every core has arrived, the reduction must finish
    #: within this many cycles or the watchdog retries / fails over to
    #: the software NoC all-reduce.  0 disables hardening.
    watchdog_budget: int = 0
    #: Episode restarts (values are still latched in the col_regs) before
    #: the watchdog gives up and fails the episode over.
    watchdog_retries: int = 2
    #: Counting-line integrity mode ("off" | "echo" | "residue" |
    #: "vote"); see :mod:`repro.gline.integrity`.  "off" keeps the
    #: legacy round protocol bit-identical.
    integrity: str = "off"
    #: Per-stage round retries before a detected corruption escalates to
    #: the whole-operation rung of the recovery ladder.
    integrity_retry_budget: int = 3

    def __post_init__(self) -> None:
        if self.backend not in ("gl", "sw"):
            raise ConfigError(
                f"collectives backend must be 'gl' or 'sw', "
                f"got {self.backend!r}")
        if not (1 <= self.value_width <= 64):
            raise ConfigError("value_width must be in 1..64")
        if self.num_contexts < 1:
            raise ConfigError("num_contexts must be >= 1")
        if self.time_slots < 0:
            raise ConfigError("time_slots must be >= 0")
        if self.watchdog_budget < 0:
            raise ConfigError("watchdog_budget must be >= 0")
        if self.watchdog_retries < 0:
            raise ConfigError("watchdog_retries must be >= 0")
        from ..gline.integrity import INTEGRITY_MODES
        if self.integrity not in INTEGRITY_MODES:
            raise ConfigError(
                f"integrity must be one of {INTEGRITY_MODES}, "
                f"got {self.integrity!r}")
        if self.integrity_retry_budget < 0:
            raise ConfigError("integrity_retry_budget must be >= 0")

    def to_dict(self) -> dict[str, object]:
        # New fields are omitted at their defaults so legacy configs --
        # and every exec-cache fingerprint derived from them -- stay
        # byte-identical.
        data = asdict(self)
        if data["integrity"] == "off":
            del data["integrity"]
        if data["integrity_retry_budget"] == 3:
            del data["integrity_retry_budget"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CollectiveConfig":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ConfigError(
                f"CollectiveConfig.from_dict: unknown fields "
                f"{sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]
