"""Kind semantics shared by every collective layer.

One module is the single source of truth for what each collective *means*:
the hardware fabric, the software NoC fallback, the verify-layer model and
the workload self-check all call the same functions, so a divergence
between "what the wires computed" and "what the spec says" can never hide
in two copies of the arithmetic.

The G-line fabric reduces in two composable 1-D stages (rows, then the
first column), and the hierarchical variant adds a third level on top.
Each level reduces *partials* produced by the level below, which is why a
kind maps to a ``COMBINE_KIND`` for its upper levels: a ``vote`` row
produces a count, and counts are combined by *summing*, not by counting
non-zero counts.
"""

from __future__ import annotations

from typing import Sequence

from ..common.errors import ConfigError

#: Every collective kind accepted by :class:`repro.cpu.isa.CollectiveOp`.
KINDS = ("sum", "min", "max", "any", "all", "vote", "bcast")

#: Kind used to combine a level's partials at the level above.
COMBINE_KIND = {
    "sum": "sum",
    "vote": "sum",   # votes are counts; counts add
    "any": "any",    # 1-bit partials OR together
    "all": "all",    # 1-bit partials AND together
    "min": "min",
    "max": "max",
    "bcast": "bcast",
}

#: Wire mechanism per kind: bit-serial transmitter counting, MSB-first
#: elimination, or pure broadcast.
MECHANISM = {
    "sum": "count",
    "vote": "count",
    "any": "count",
    "all": "count",
    "min": "elim",
    "max": "elim",
    "bcast": "bcast",
}


def check_kind(kind: str) -> None:
    if kind not in KINDS:
        raise ConfigError(
            f"unknown collective kind {kind!r}; expected one of {KINDS}")


def mask(width: int) -> int:
    """All-ones mask for *width*-bit values."""
    return (1 << width) - 1


def stage_in_width(kind: str, width: int) -> int:
    """Bits each participant serializes onto the wire in one stage.

    Predicate kinds collapse a *width*-bit input to its non-zero bit, so
    a whole row votes in a single counting round.
    """
    if kind in ("vote", "any", "all"):
        return 1
    return width


def stage_contrib(kind: str, value: int, width: int) -> int:
    """A participant's contribution in the stage's wire domain."""
    v = value & mask(width)
    if kind in ("vote", "any", "all"):
        return 1 if v else 0
    return v


def stage_result_width(kind: str, width: int, n: int) -> int:
    """Width of one stage's (finalized) result over *n* participants.

    Every controller computes this statically from (kind, width, n), so
    round counts never need negotiating on the wires.
    """
    if kind == "sum":
        return max(1, (n * mask(width)).bit_length())
    if kind == "vote":
        return max(1, n.bit_length())
    if kind in ("any", "all"):
        return 1
    # min / max / bcast keep the input width.
    return max(1, width)


def stage_finalize(kind: str, acc: int, n: int) -> int:
    """Turn a stage's raw accumulator into its result.

    Counting stages accumulate the number (or bit-weighted sum) of
    contributors; predicates threshold that count against *n*.
    """
    if kind == "any":
        return 1 if acc > 0 else 0
    if kind == "all":
        return 1 if acc == n else 0
    return acc


def reference_reduce(kind: str, values: Sequence[int], width: int) -> int:
    """The specification: what a collective over *values* must deliver.

    Independent of the wire protocol -- direct arithmetic over the masked
    inputs.  ``bcast`` delivers participant 0's value (the root).
    """
    check_kind(kind)
    m = mask(width)
    vs = [v & m for v in values]
    if not vs:
        raise ConfigError("reference_reduce needs at least one value")
    if kind == "sum":
        return sum(vs)
    if kind == "min":
        return min(vs)
    if kind == "max":
        return max(vs)
    if kind == "any":
        return 1 if any(vs) else 0
    if kind == "all":
        return 1 if all(vs) else 0
    if kind == "vote":
        return sum(1 for v in vs if v)
    return vs[0]  # bcast


def result_width(kind: str, width: int, rows: int, cols: int) -> int:
    """Broadcast width of the flat fabric's final result on R x C.

    Composition of the row stage (kind over *cols* inputs of ``width``
    bits) and the column stage (``COMBINE_KIND[kind]`` over *rows* row
    results).  Slightly conservative for ``sum`` (the column stage sizes
    for ``rows`` maximal row partials), which costs at most one spare
    broadcast round -- every participant derives the same number, which
    is all the framing needs.
    """
    check_kind(kind)
    wr = stage_result_width(kind, stage_in_width(kind, width), cols)
    if rows == 1:
        return wr
    k2 = COMBINE_KIND[kind]
    return stage_result_width(k2, stage_in_width(k2, wr), rows)


def sw_fold(kind: str, acc: int, value: int, width: int) -> int:
    """Fold one contribution into the software accumulator.

    The encoding is chosen so that **0 is the identity for every kind**
    -- the shared accumulator line can then be reset to 0 between
    episodes without knowing the next episode's kind, and no seeding
    store can race a concurrent fold: ``min`` folds as a complement-max,
    ``all`` counts zero-votes (decoded by :func:`sw_final`).
    """
    m = mask(width)
    v = value & m
    if kind == "sum":
        return acc + v
    if kind == "vote":
        return acc + (1 if v else 0)
    if kind == "min":
        return max(acc, m ^ v)
    if kind == "max":
        return max(acc, v)
    if kind == "any":
        return acc | (1 if v else 0)
    if kind == "all":
        return acc + (1 if v == 0 else 0)
    return acc  # bcast: the root stores directly


def sw_final(kind: str, acc: int, width: int) -> int:
    """Decode the software accumulator into the collective's result."""
    if kind == "min":
        return mask(width) ^ acc
    if kind == "all":
        return 1 if acc == 0 else 0
    return acc
