"""Collective libraries: the op sequences behind ``CollectiveOp``.

Two implementations share the interface:

* :class:`GLCollective` -- the hardware path: library entry overhead,
  then a col_reg write that engages a
  :class:`~repro.collectives.network.CollectiveNetwork`; the core
  sleeps until the fabric delivers the result.  When the watchdog
  quarantines a network the episode completes over the software
  fallback instead, with the same one-cohort guarantee as the barrier
  (a collective episode is never split between hardware and software).
* :class:`SoftwareAllReduce` -- the NoC baseline and failover target: a
  centralized sense-reversing all-reduce where every core folds its
  operand into a shared accumulator with one atomic, the last arriver
  finalizes and publishes the result, and everyone else spins on the
  release flag.  O(N) coherent traffic per episode, exactly the CSW
  cost model the paper's Figure 5 charts for barriers.
"""

from __future__ import annotations

from typing import Generator

from ..common.errors import ConfigError, GLineError
from ..cpu import isa
from ..cpu.core import HWCollectiveArrive
from ..faults import FAILOVER
from ..mem.address import Allocator
from . import ops


class CollectiveImpl:
    """Abstract collective bound to a chip (mirrors BarrierImpl)."""

    name: str = "abstract"

    def sequence(self, core, op: isa.CollectiveOp) -> Generator:
        """Op-generator executing one collective episode for *core*;
        its return value is the collective's result on this core."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SoftwareAllReduce(CollectiveImpl):
    """Centralized sense-reversing all-reduce over coherent memory."""

    name = "SW-coll"

    def __init__(self, allocator: Allocator, num_cores: int,
                 num_contexts: int = 1, value_width: int = 8,
                 root: int = 0):
        self.num_cores = num_cores
        self.value_width = value_width
        self.root = root
        self.contexts = []
        for _ in range(max(1, num_contexts)):
            self.contexts.append({
                "acc": allocator.alloc_line(home=0),
                "counter": allocator.alloc_line(home=0),
                "flag": allocator.alloc_line(home=0),
                "result": allocator.alloc_line(home=0),
            })

    def sequence(self, core, op: isa.CollectiveOp) -> Generator:
        if not (0 <= op.ident < len(self.contexts)):
            raise ConfigError(
                f"collective context {op.ident} not provisioned "
                f"(have {len(self.contexts)})")
        ops.check_kind(op.kind)
        ctx = self.contexts[op.ident]
        kind, w = op.kind, self.value_width
        key = ("coll_sense", op.ident)
        sense = 1 - core.local.get(key, 0)
        core.local[key] = sense

        # Fold the operand in, then announce arrival.  The fold strictly
        # precedes the counter increment, so the last arriver's read of
        # the accumulator observes every contribution; the next episode
        # cannot start folding before this one's release flag flips.
        # ``sw_fold``'s encoding makes 0 the identity for every kind,
        # so the zeroed (or episode-reset) accumulator needs no seeding.
        if kind == "bcast":
            if core.cid == self.root:
                yield isa.Store(ctx["acc"], op.value & ops.mask(w))
        else:
            yield isa.AtomicRMW(
                ctx["acc"],
                lambda old, k=kind, v=op.value, _w=w:
                    ops.sw_fold(k, old, v, _w))
        count = (yield isa.FetchAdd(ctx["counter"], 1)) + 1
        if count == self.num_cores:
            acc = yield isa.Load(ctx["acc"])
            result = ops.sw_final(kind, acc, w)
            yield isa.Store(ctx["result"], result)
            # Reset for the next episode *before* the release: a released
            # core may immediately re-enter, and its fold must land on a
            # fresh identity accumulator.
            yield isa.Store(ctx["acc"], 0)
            yield isa.Store(ctx["counter"], 0)
            yield isa.Store(ctx["flag"], sense)
            return result
        yield isa.SpinUntil(ctx["flag"], lambda v, s=sense: v == s)
        return (yield isa.Load(ctx["result"]))

    def describe(self) -> str:
        return (f"centralized sense-reversing software all-reduce "
                f"({self.num_cores} cores, "
                f"{len(self.contexts)} context(s))")


class GLCollective(CollectiveImpl):
    """Hardware G-line collective bound to one or more network contexts."""

    name = "GL-coll"

    def __init__(self, networks, entry_overhead: int = 0,
                 fallback: SoftwareAllReduce | None = None):
        if not networks:
            raise ConfigError(
                "GLCollective needs at least one network context")
        self.networks = list(networks)
        self.entry_overhead = entry_overhead
        self.fallback = fallback
        #: Cores of the current episode already committed to software,
        #: per context (same cohort-alignment argument as GLBarrier).
        self._sw_cohort: dict[int, int] = {}

    def sequence(self, core, op: isa.CollectiveOp) -> Generator:
        if not (0 <= op.ident < len(self.networks)):
            raise ConfigError(
                f"collective context {op.ident} not provisioned "
                f"(have {len(self.networks)})")
        if self.entry_overhead:
            yield isa.Compute(self.entry_overhead)
        net = self.networks[op.ident]
        if self.fallback is not None \
                and (self._sw_cohort.get(op.ident, 0)
                     or getattr(net, "quarantined", False)):
            return (yield from self._join_software(core, op, net))
        outcome = yield HWCollectiveArrive(net, op.kind, op.value)
        if outcome == FAILOVER:
            if self.fallback is None:
                raise GLineError(
                    f"collective context {op.ident} failed over but no "
                    f"software fallback is configured")
            outcome = yield from self._join_software(core, op, net)
        return outcome

    def _join_software(self, core, op: isa.CollectiveOp, net) -> Generator:
        core.stats.bump("faults.failover.sw_collectives")
        joined = self._sw_cohort.get(op.ident, 0) + 1
        self._sw_cohort[op.ident] = \
            0 if joined >= getattr(net, "num_cores", 0) else joined
        return (yield from self.fallback.sequence(core, op))

    def describe(self) -> str:
        net = self.networks[0]
        wires = getattr(net, "num_glines", "?")
        desc = (f"G-line collective engine ({len(self.networks)} "
                f"context(s), {wires} G-lines per context, entry "
                f"overhead {self.entry_overhead} cycles)")
        if self.fallback is not None:
            desc += f" with {self.fallback.name} watchdog failover"
        return desc
