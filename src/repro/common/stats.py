"""Statistics collection.

A single :class:`StatsRegistry` is threaded through every component of the
simulated chip.  It provides flat named counters (cheap ``+=`` on dict
entries), per-core cycle attribution by category (the paper's Figure 6
breakdown), network message accounting by category (Figure 7), and barrier
latency samples (Figure 5 / the synthetic benchmark).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum


class CycleCat(str, Enum):
    """Execution-time categories used by Figure 6 of the paper."""

    BUSY = "busy"        # computational work
    READ = "read"        # load latency outside synchronization
    WRITE = "write"      # store/atomic latency outside synchronization
    LOCK = "lock"        # lock acquire/release (all stages)
    BARRIER = "barrier"  # barrier S1+S2+S3 (all operations inside a barrier)


class MsgCat(str, Enum):
    """Network-traffic categories used by Figure 7 of the paper."""

    REQUEST = "request"      # load/store miss requests to the home tile
    REPLY = "reply"          # data (or grant) replies carrying the line
    COHERENCE = "coherence"  # invalidations, acks, forwards, write-backs


@dataclass
class BarrierSample:
    """One completed barrier episode."""

    barrier_id: int
    #: Cycle at which the first core arrived.
    first_arrival: int
    #: Cycle at which the last core arrived.
    last_arrival: int
    #: Cycle at which the last core resumed execution.
    release: int

    @property
    def latency_after_last_arrival(self) -> int:
        """Cycles from last arrival to full release -- the paper's headline
        "4 cycles once all cores have arrived" metric."""
        return self.release - self.last_arrival

    @property
    def span(self) -> int:
        """Cycles from first arrival to full release."""
        return self.release - self.first_arrival

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-dict form (cache / worker-IPC format)."""
        return {"barrier_id": self.barrier_id,
                "first_arrival": self.first_arrival,
                "last_arrival": self.last_arrival,
                "release": self.release}

    @classmethod
    def from_dict(cls, data: dict) -> "BarrierSample":
        return cls(barrier_id=data["barrier_id"],
                   first_arrival=data["first_arrival"],
                   last_arrival=data["last_arrival"],
                   release=data["release"])


class StatsRegistry:
    """Central statistics sink for one simulation run."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        #: Flat named counters, e.g. ``l1.hits``, ``dir.gets``.
        self.counters: defaultdict[str, int] = defaultdict(int)
        #: cycles[core][category] -> cycles attributed.
        self.cycles: list[defaultdict[CycleCat, int]] = [
            defaultdict(int) for _ in range(num_cores)]
        #: messages[category] -> count.
        self.messages: defaultdict[MsgCat, int] = defaultdict(int)
        #: flits[category] -> flit count (serialization units).
        self.flits: defaultdict[MsgCat, int] = defaultdict(int)
        #: hop_flits[category] -> sum over messages of hops * flits
        #: (an energy/bandwidth proxy).
        self.hop_flits: defaultdict[MsgCat, int] = defaultdict(int)
        #: Completed barrier episodes, in completion order.
        self.barriers: list[BarrierSample] = []
        #: G-line toggle count (energy proxy for the dedicated network).
        self.gline_toggles: int = 0

    # ------------------------------------------------------------------ #
    # Recording helpers
    # ------------------------------------------------------------------ #
    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def add_cycles(self, core: int, cat: CycleCat, cycles: int) -> None:
        if cycles:
            self.cycles[core][cat] += cycles

    def add_message(self, cat: MsgCat, flits: int, hops: int) -> None:
        self.messages[cat] += 1
        self.flits[cat] += flits
        self.hop_flits[cat] += flits * hops

    def add_barrier(self, sample: BarrierSample) -> None:
        self.barriers.append(sample)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def message_breakdown(self) -> dict[MsgCat, int]:
        return {cat: self.messages.get(cat, 0) for cat in MsgCat}

    def cycle_breakdown(self) -> dict[CycleCat, int]:
        """Sum of per-core attributed cycles for each category."""
        out: dict[CycleCat, int] = {cat: 0 for cat in CycleCat}
        for per_core in self.cycles:
            for cat, n in per_core.items():
                out[cat] += n
        return out

    def core_cycle_breakdown(self, core: int) -> dict[CycleCat, int]:
        return {cat: self.cycles[core].get(cat, 0) for cat in CycleCat}

    def avg_barrier_latency(self) -> float:
        """Mean cycles from last arrival to release over all barriers."""
        if not self.barriers:
            return 0.0
        return sum(b.latency_after_last_arrival for b in self.barriers) / \
            len(self.barriers)

    def avg_barrier_span(self) -> float:
        if not self.barriers:
            return 0.0
        return sum(b.span for b in self.barriers) / len(self.barriers)

    def num_barriers(self) -> int:
        return len(self.barriers)

    # ------------------------------------------------------------------ #
    # Serialization (cache / worker-IPC format)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Lossless plain-dict form: ``from_dict(to_dict())`` rebuilds an
        equivalent registry, and ``to_dict`` is a fixed point of the round
        trip (the property the result cache depends on).  Enum keys are
        stored by their string values."""
        return {
            "num_cores": self.num_cores,
            "counters": dict(self.counters),
            "cycles": [{cat.value: n for cat, n in per_core.items()}
                       for per_core in self.cycles],
            "messages": {cat.value: n for cat, n in self.messages.items()},
            "flits": {cat.value: n for cat, n in self.flits.items()},
            "hop_flits": {cat.value: n
                          for cat, n in self.hop_flits.items()},
            "barriers": [b.to_dict() for b in self.barriers],
            "gline_toggles": self.gline_toggles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsRegistry":
        reg = cls(data["num_cores"])
        reg.counters.update(data["counters"])
        for per_core, stored in zip(reg.cycles, data["cycles"]):
            per_core.update({CycleCat(k): n for k, n in stored.items()})
        reg.messages.update({MsgCat(k): n
                             for k, n in data["messages"].items()})
        reg.flits.update({MsgCat(k): n for k, n in data["flits"].items()})
        reg.hop_flits.update({MsgCat(k): n
                              for k, n in data["hop_flits"].items()})
        reg.barriers = [BarrierSample.from_dict(b)
                        for b in data["barriers"]]
        reg.gline_toggles = data["gline_toggles"]
        return reg

    def snapshot(self) -> dict:
        """A plain-dict summary suitable for printing or JSON dumping."""
        return {
            "counters": dict(self.counters),
            "cycle_breakdown": {c.value: n for c, n
                                in self.cycle_breakdown().items()},
            "messages": {c.value: n for c, n
                         in self.message_breakdown().items()},
            "total_messages": self.total_messages(),
            "num_barriers": self.num_barriers(),
            "avg_barrier_latency": self.avg_barrier_latency(),
            "gline_toggles": self.gline_toggles,
        }
