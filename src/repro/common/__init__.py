"""Shared configuration, statistics and error types."""

from .errors import (
    CapacityError,
    ConfigError,
    DeadlockError,
    GLineError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .params import (
    CacheConfig,
    CMPConfig,
    CoreConfig,
    GLineConfig,
    NocConfig,
    mesh_dims,
)
from .stats import BarrierSample, CycleCat, MsgCat, StatsRegistry

__all__ = [
    "CapacityError",
    "ConfigError",
    "DeadlockError",
    "GLineError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "CacheConfig",
    "CMPConfig",
    "CoreConfig",
    "GLineConfig",
    "NocConfig",
    "mesh_dims",
    "BarrierSample",
    "CycleCat",
    "MsgCat",
    "StatsRegistry",
]
