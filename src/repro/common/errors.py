"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can catch simulator problems without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internal inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while cores were still blocked.

    This is the simulator's deadlock detector: if no event is pending but at
    least one thread program has not finished, no future event can ever wake
    it up, which means the modelled system deadlocked (e.g. a barrier that
    some core never reaches).
    """

    def __init__(self, message: str, blocked_cores: tuple[int, ...] = ()):
        super().__init__(message)
        #: Identifiers of the cores that were still blocked at detection time.
        self.blocked_cores = blocked_cores


class ProtocolError(SimulationError):
    """The coherence protocol observed an impossible transition."""


class GLineError(ReproError):
    """A G-line network constraint was violated (e.g. >6 transmitters)."""


class CapacityError(GLineError):
    """The requested mesh cannot be served by a single G-line network.

    The paper assumes every G-line supports up to six transmitters and one
    receiver, limiting a single network to a 7x7 mesh; larger meshes must use
    the hierarchical extension (``repro.gline.hierarchical``).
    """


class WorkloadError(ReproError):
    """A workload was constructed with unusable parameters."""
