"""Configuration dataclasses for the simulated CMP.

The defaults reproduce Table 1 of the paper ("CMP baseline configuration"):

=====================  =============================
Number of cores        32
Core                   3 GHz, in-order 2-way model
Cache line size        64 bytes
L1 I/D-cache           32 KB, 4-way, 1 cycle
L2 cache (per core)    256 KB, 4-way, 6+2 cycles
Memory access time     400 cycles
Network configuration  2D-mesh
Network bandwidth      75 GB/s
Link width             75 bytes
=====================  =============================

All latencies are in core clock cycles.  Every config object validates its
fields eagerly so that a bad experiment setup fails at construction time,
not hours into a simulation run.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING

from .errors import ConfigError
from ..faults.plan import FaultPlan

if TYPE_CHECKING:
    from ..collectives.config import CollectiveConfig


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


def _default_collectives() -> "CollectiveConfig":
    # Deferred import: repro.collectives pulls in the gline package,
    # which imports this module back for GLineConfig.
    from ..collectives.config import CollectiveConfig
    return CollectiveConfig()


def mesh_dims(num_cores: int) -> tuple[int, int]:
    """Return (rows, cols) of the most-square 2D mesh holding *num_cores*.

    Prefers the factorization closest to a square, with ``cols >= rows``
    (the paper's meshes are 4x4, 4x8 etc.).  Raises :class:`ConfigError`
    for non-positive sizes.
    """
    _require(num_cores >= 1, f"num_cores must be >= 1, got {num_cores}")
    best: tuple[int, int] | None = None
    for r in range(1, int(math.isqrt(num_cores)) + 1):
        if num_cores % r == 0:
            best = (r, num_cores // r)
    if best is None:  # prime > isqrt loop can't happen; appease type checker
        best = (1, num_cores)
    return best


class _SerializableConfig:
    """Flat-field dict serialization shared by the leaf config classes.

    ``to_dict``/``from_dict`` are the cache-key and IPC format of
    :mod:`repro.exec`: the round trip must be lossless and ``to_dict``
    a fixed point, which holds because every field is a JSON primitive.
    """

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict):
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ConfigError(
                f"{cls.__name__}.from_dict: unknown fields {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class CacheConfig(_SerializableConfig):
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    #: Access latency in cycles (hit latency).
    latency: int = 1
    #: Extra cycles added on top of ``latency`` (the paper's L2 is "6+2":
    #: 6-cycle access plus 2 cycles of tag/interconnect overhead).
    extra_latency: int = 0

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.assoc >= 1, "associativity must be >= 1")
        _require(self.line_bytes > 0 and (self.line_bytes & (self.line_bytes - 1)) == 0,
                 "line size must be a positive power of two")
        _require(self.size_bytes % (self.assoc * self.line_bytes) == 0,
                 "cache size must be a multiple of assoc * line size")
        _require(self.latency >= 0 and self.extra_latency >= 0,
                 "latencies must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def total_latency(self) -> int:
        return self.latency + self.extra_latency


@dataclass(frozen=True)
class NocConfig(_SerializableConfig):
    """2D-mesh network-on-chip parameters.

    The timing model is per-hop: a message pays ``router_latency`` +
    ``link_latency`` per hop, plus serialization (``ceil(size/link width)``
    cycles) on each traversed link, with links modelled as serially-occupied
    resources (contention shows up as waiting for the link to free).
    """

    rows: int
    cols: int
    #: Router pipeline depth per hop, cycles.
    router_latency: int = 3
    #: Wire propagation per hop, cycles.
    link_latency: int = 1
    #: Link width in bytes (Table 1: 75 bytes -- a full cache line + header
    #: fits in a single flit).
    link_width_bytes: int = 75
    #: Control-message size in bytes (requests, invalidations, acks).
    ctrl_msg_bytes: int = 8
    #: Data-message size in bytes (cache line + header).
    data_msg_bytes: int = 72
    #: Whether link contention is modelled (serialization queueing).
    model_contention: bool = True
    #: Timing model: "hop" (per-hop latency + link serialization, the
    #: default) or "vct" (flit-accurate virtual cut-through with finite
    #: buffers and backpressure -- see repro.noc.vct).
    model: str = "hop"
    #: Input-buffer depth in flits for the "vct" model.
    vct_buffer_flits: int = 4

    def __post_init__(self) -> None:
        _require(self.rows >= 1 and self.cols >= 1, "mesh dims must be >= 1")
        _require(self.router_latency >= 0, "router_latency must be >= 0")
        _require(self.link_latency >= 1, "link_latency must be >= 1")
        _require(self.link_width_bytes >= 1, "link width must be >= 1")
        _require(self.ctrl_msg_bytes >= 1 and self.data_msg_bytes >= 1,
                 "message sizes must be >= 1")
        _require(self.model in ("hop", "vct"),
                 f"unknown NoC model {self.model!r}")
        _require(self.vct_buffer_flits >= 1, "vct_buffer_flits must be >= 1")

    @property
    def num_tiles(self) -> int:
        return self.rows * self.cols

    def flits(self, size_bytes: int) -> int:
        """Number of link-width flits needed to carry *size_bytes*."""
        return max(1, -(-size_bytes // self.link_width_bytes))


@dataclass(frozen=True)
class GLineConfig(_SerializableConfig):
    """Parameters of the dedicated G-line barrier network.

    ``max_transmitters`` reflects the electrical constraint reported in the
    paper (each G-line supports up to six transmitters and one receiver,
    hence a maximum 7x7 mesh per network).  ``entry_overhead`` models the
    software cost of invoking the barrier through a library call: the paper
    measures 13 cycles end-to-end instead of the theoretical 4 and
    attributes the difference to the simulator's application library, so the
    default of 9 reproduces that observation.
    """

    #: 1-bit transmission latency across one dimension, cycles.
    line_latency: int = 1
    #: Maximum simultaneous transmitters distinguishable by S-CSMA.
    max_transmitters: int = 6
    #: Cycles to write bar_reg (the mov instruction).
    barreg_write_cycles: int = 1
    #: Library-call overhead added around the hardware operation.  The
    #: default (8) plus the bar_reg write (1) plus the 4-cycle network
    #: reproduces the 13-cycle end-to-end barrier the paper measures for
    #: GL on the synthetic benchmark.
    entry_overhead: int = 8
    #: Number of independent barrier contexts (space multiplexing
    #: extension; the paper's base design provides 1).
    num_barriers: int = 1
    #: Watchdog budget in cycles: once every core has arrived, the
    #: gather+release must finish within this many cycles or the watchdog
    #: intervenes (retry, then failover).  0 disables all hardening --
    #: the default, so the paper-faithful network is untouched.
    watchdog_budget: int = 0
    #: Bounded retries before the watchdog fails the episode over to the
    #: software fallback barrier.
    watchdog_retries: int = 2
    #: Optional second budget measured from the *first* arrival of an
    #: episode; catches episodes that can never complete because cores
    #: are missing (fail-stop).  0 disables it.
    watchdog_episode_budget: int = 0
    #: Software barrier the chip falls back to when a G-line network is
    #: quarantined: "csw" (centralized) or "dsw" (combining tree).
    failover_barrier: str = "csw"
    #: Self-healing recovery (repro.gline.recovery): when True, a watchdog
    #: FAILOVER degrades the network instead of quarantining it forever --
    #: idle-cycle probes with exponential backoff re-admit the wires
    #: through a probation period with a software shadow cross-check.
    #: Off by default, so failover stays terminal exactly as before.
    recovery_enabled: bool = False
    #: Cycles of backoff before the first probe after a degrade.
    recovery_probe_interval: int = 64
    #: Multiplier applied to the backoff after every failed probe or
    #: flapped re-admission.
    recovery_backoff_factor: int = 2
    #: Upper bound on the probe backoff, cycles.
    recovery_max_backoff: int = 4096
    #: Probe attempts per degraded episode before escalating to
    #: permanent quarantine.
    recovery_max_probes: int = 6
    #: Barriers run under the software shadow cross-check after a
    #: re-admission before the network is declared HEALTHY again.
    recovery_probation_barriers: int = 4
    #: Failed re-admissions (probation trips) before the network is
    #: permanently quarantined (flap damping).
    recovery_max_flaps: int = 3
    #: Hierarchical meshes only: degrade *per segment* -- a quarantined
    #: cluster completes over a software segment cohort that still joins
    #: the chip-wide G-line barrier, so healthy clusters stay on
    #: hardware.  Off by default (any quarantined level degrades the
    #: whole chip, the pre-recovery behaviour).
    segment_failover: bool = False

    def __post_init__(self) -> None:
        _require(self.line_latency >= 1, "line_latency must be >= 1")
        _require(self.max_transmitters >= 1, "max_transmitters must be >= 1")
        _require(self.barreg_write_cycles >= 0, "barreg_write_cycles >= 0")
        _require(self.entry_overhead >= 0, "entry_overhead must be >= 0")
        _require(self.num_barriers >= 1, "num_barriers must be >= 1")
        _require(self.watchdog_budget >= 0, "watchdog_budget must be >= 0")
        _require(self.watchdog_retries >= 0, "watchdog_retries must be >= 0")
        _require(self.watchdog_episode_budget >= 0,
                 "watchdog_episode_budget must be >= 0")
        _require(self.failover_barrier in ("csw", "dsw"),
                 f"failover_barrier must be 'csw' or 'dsw', "
                 f"got {self.failover_barrier!r}")
        _require(not self.recovery_enabled or self.watchdog_budget > 0,
                 "recovery_enabled requires a hardened network "
                 "(watchdog_budget > 0)")
        _require(self.recovery_probe_interval >= 1,
                 "recovery_probe_interval must be >= 1")
        _require(self.recovery_backoff_factor >= 1,
                 "recovery_backoff_factor must be >= 1")
        _require(self.recovery_max_backoff >= self.recovery_probe_interval,
                 "recovery_max_backoff must be >= recovery_probe_interval")
        _require(self.recovery_max_probes >= 1,
                 "recovery_max_probes must be >= 1")
        _require(self.recovery_probation_barriers >= 1,
                 "recovery_probation_barriers must be >= 1")
        _require(self.recovery_max_flaps >= 1,
                 "recovery_max_flaps must be >= 1")

    def lines_required(self, rows: int, cols: int) -> int:
        """Total G-lines for one barrier on an ``rows x cols`` mesh.

        Two per row (transmit + release) plus two for the first column --
        the paper's ``2 * (sqrt(NumCores) + 1)`` for square meshes,
        generalized to ``2 * (rows + 1)`` (with no vertical pair needed when
        there is a single row).
        """
        _require(rows >= 1 and cols >= 1, "mesh dims must be >= 1")
        vertical = 2 if rows > 1 else 0
        horizontal = 2 * rows if cols > 1 else 0
        return (horizontal + vertical) * self.num_barriers


@dataclass(frozen=True)
class CoreConfig(_SerializableConfig):
    """In-order core model parameters."""

    #: Clock frequency, used only for reporting (all timing is in cycles).
    freq_ghz: float = 3.0
    #: Issue width (the paper models 2-way in-order; our operation streams
    #: are sequential, so width only scales modelled compute throughput).
    issue_width: int = 2
    #: Cycles for a register-file write such as ``mov 1, bar_reg``.
    reg_write_cycles: int = 1

    def __post_init__(self) -> None:
        _require(self.freq_ghz > 0, "freq_ghz must be positive")
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.reg_write_cycles >= 0, "reg_write_cycles >= 0")


@dataclass(frozen=True)
class CMPConfig:
    """Full chip configuration (Table 1 defaults)."""

    num_cores: int = 32
    core: CoreConfig = field(default_factory=CoreConfig)
    line_bytes: int = 64
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=4, line_bytes=64, latency=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=256 * 1024, assoc=4, line_bytes=64, latency=6,
        extra_latency=2))
    memory_latency: int = 400
    noc: NocConfig = field(default_factory=lambda: NocConfig(rows=4, cols=8))
    gline: GLineConfig = field(default_factory=GLineConfig)
    #: G-line collective engine (repro.collectives); disabled by default,
    #: so barrier-only chips build byte-identical to pre-collective runs.
    collectives: "CollectiveConfig" = field(
        default_factory=_default_collectives)
    #: Fault-injection schedule (repro.faults); all-zero = disabled.
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Event-engine backend: "heap" (reference) or "batched" (the
    #: bucket-calendar kernel, bit-identical results).  The default reads
    #: ``REPRO_SIM_BACKEND`` so the CLI / CI can flip every run without
    #: touching call sites; it does NOT key the exec cache (see
    #: RunSpec.fingerprint) precisely because results are identical.
    sim_backend: str = field(default_factory=lambda: os.environ.get(
        "REPRO_SIM_BACKEND", "heap"))

    def __post_init__(self) -> None:
        _require(self.sim_backend in ("heap", "batched"),
                 f"sim_backend must be 'heap' or 'batched', "
                 f"got {self.sim_backend!r}")
        _require(self.num_cores >= 1, "num_cores must be >= 1")
        _require(self.memory_latency >= 1, "memory_latency must be >= 1")
        _require(self.l1.line_bytes == self.line_bytes,
                 "L1 line size must match chip line size")
        _require(self.l2.line_bytes == self.line_bytes,
                 "L2 line size must match chip line size")
        _require(self.noc.num_tiles == self.num_cores,
                 f"mesh {self.noc.rows}x{self.noc.cols} does not hold "
                 f"{self.num_cores} cores")

    @classmethod
    def for_cores(cls, num_cores: int, **overrides) -> "CMPConfig":
        """Build a Table-1 config resized to *num_cores* (auto mesh)."""
        rows, cols = mesh_dims(num_cores)
        noc = overrides.pop("noc", None) or NocConfig(rows=rows, cols=cols)
        return cls(num_cores=num_cores, noc=noc, **overrides)

    def with_(self, **overrides) -> "CMPConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """Nested plain-dict form (cache-key / worker-IPC format)."""
        return {
            "num_cores": self.num_cores,
            "core": self.core.to_dict(),
            "line_bytes": self.line_bytes,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "memory_latency": self.memory_latency,
            "noc": self.noc.to_dict(),
            "gline": self.gline.to_dict(),
            "collectives": self.collectives.to_dict(),
            "faults": self.faults.to_dict(),
            "sim_backend": self.sim_backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CMPConfig":
        from ..collectives.config import CollectiveConfig
        faults = data.get("faults")
        coll = data.get("collectives")
        return cls(num_cores=data["num_cores"],
                   sim_backend=data.get("sim_backend", "heap"),
                   core=CoreConfig.from_dict(data["core"]),
                   line_bytes=data["line_bytes"],
                   l1=CacheConfig.from_dict(data["l1"]),
                   l2=CacheConfig.from_dict(data["l2"]),
                   memory_latency=data["memory_latency"],
                   noc=NocConfig.from_dict(data["noc"]),
                   gline=GLineConfig.from_dict(data["gline"]),
                   collectives=CollectiveConfig.from_dict(coll)
                   if coll is not None else CollectiveConfig(),
                   faults=FaultPlan.from_dict(faults) if faults is not None
                   else FaultPlan())

    def table1(self) -> list[tuple[str, str]]:
        """Render the configuration as (parameter, value) rows, Table-1 style."""
        l1kb = self.l1.size_bytes // 1024
        l2kb = self.l2.size_bytes // 1024
        return [
            ("Number of cores", str(self.num_cores)),
            ("Core", f"{self.core.freq_ghz:g}GHz, in-order "
                     f"{self.core.issue_width}-way model"),
            ("Cache line size", f"{self.line_bytes} Bytes"),
            ("L1 I/D-Cache", f"{l1kb}KB, {self.l1.assoc}-way, "
                             f"{self.l1.latency} cycle"),
            ("L2 Cache (per core)", f"{l2kb}KB, {self.l2.assoc}-way, "
                                    f"{self.l2.latency}+{self.l2.extra_latency} cycles"),
            ("Memory access time", f"{self.memory_latency} cycles"),
            ("Network configuration", "2D-mesh "
                                      f"({self.noc.rows}x{self.noc.cols})"),
            ("Link width", f"{self.noc.link_width_bytes} bytes"),
        ]
