"""The fault plan: a serializable description of what may break.

A :class:`FaultPlan` is a frozen dataclass of per-cycle (or per-event)
fault probabilities plus a seed.  It lives inside
:class:`~repro.common.params.CMPConfig`, so it flows into
``CMPConfig.to_dict()`` and therefore into the :mod:`repro.exec` cache
key: two runs with the same plan take the same faults at the same times,
and a cached faulty result is as trustworthy as a recomputed one.

All rates default to ``0.0`` -- the default plan is *disabled* and a chip
built with it behaves (and schedules events) exactly as one built before
this module existed, which is what keeps the golden results byte-stable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields


def _require(cond: bool, msg: str) -> None:
    if not cond:
        # Imported lazily: common.params imports this module, so a
        # module-level import of common.errors would be circular.
        from ..common.errors import ConfigError
        raise ConfigError(msg)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault-injection schedule (all rates are probabilities)."""

    #: RNG seed; every fault domain derives its own stream from it.
    seed: int = 0
    #: Per-line, per-active-cycle probability that a G-line becomes
    #: permanently stuck (polarity chosen 50/50 at onset).
    gline_stuck_rate: float = 0.0
    #: Per-line, per-active-cycle probability of a one-cycle glitch that
    #: inverts the line's apparent level.
    gline_glitch_rate: float = 0.0
    #: Per-line, per-active-cycle probability that the S-CSMA read-out is
    #: off by one (+1 or -1, clamped to the physical range).
    scsma_miscount_rate: float = 0.0
    #: Bias of the miscount's sign in [-1, 1]: the delta is +1 with
    #: probability ``(1 + bias) / 2``.  ``0.0`` is the legacy unbiased
    #: coin (byte-identical schedules); ``-1.0`` models a read-out that
    #: only ever under-counts (the failure mode of a weak pull-up),
    #: ``+1.0`` one that only over-counts (crosstalk).  A nonzero bias
    #: draws the sign from its own ``scsmabias:<line>`` RNG stream, so
    #: *which cycles* miscount never shifts as the bias is swept.
    scsma_miscount_bias: float = 0.0
    #: Per-line, per-active-cycle probability that an *intermittent* fault
    #: burst begins: the line misbehaves (forced level, polarity chosen
    #: 50/50 at onset) for a bounded duration and then heals -- the fault
    #: class between a one-cycle glitch and a permanent stuck-at.
    gline_intermittent_rate: float = 0.0
    #: Burst duration is drawn uniformly from this closed range, cycles.
    gline_intermittent_min_cycles: int = 20
    gline_intermittent_max_cycles: int = 200
    #: Fraction of burst cycles on which the fault actually asserts
    #: (1.0 = solid burst; lower values model a flaky contact that only
    #: intermittently corrupts the wire inside its burst window).
    gline_intermittent_duty: float = 1.0
    #: Burst polarity: ``None`` draws 0/1 per burst (50/50).  Pin to 0
    #: (forced low) for sweeps that must stay *containable*: a suppressed
    #: line can only stall -- detectable by the watchdog -- whereas a
    #: forced-high gather line can land the S-CSMA count exactly on
    #: target with cores missing and release early (the silent-corruption
    #: class only the recovery probation shadow check catches).
    gline_intermittent_polarity: int | None = None
    #: Per-message probability that a NoC packet is dropped in flight.
    noc_drop_rate: float = 0.0
    #: Per-message probability that a NoC packet arrives corrupted (the
    #: CRC catches it; the sender retransmits).
    noc_corrupt_rate: float = 0.0
    #: Detect-and-retransmit penalty for a lost/corrupt packet, cycles.
    noc_retry_cycles: int = 20
    #: Per-barrier-entry probability that a core straggles (stalls for up
    #: to ``straggler_max_cycles`` before announcing arrival).
    core_straggler_rate: float = 0.0
    #: Upper bound of the straggler stall, cycles.
    straggler_max_cycles: int = 200
    #: Per-barrier-entry probability that a core fail-stops (halts and
    #: never arrives -- unrecoverable; the run ends in DeadlockError).
    core_failstop_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("gline_stuck_rate", "gline_glitch_rate",
                     "scsma_miscount_rate", "gline_intermittent_rate",
                     "noc_drop_rate", "noc_corrupt_rate",
                     "core_straggler_rate", "core_failstop_rate"):
            rate = getattr(self, name)
            _require(0.0 <= rate < 1.0,
                     f"{name} must be in [0, 1), got {rate}")
        _require(-1.0 <= self.scsma_miscount_bias <= 1.0,
                 f"scsma_miscount_bias must be in [-1, 1], got "
                 f"{self.scsma_miscount_bias}")
        _require(self.gline_intermittent_min_cycles >= 1,
                 "gline_intermittent_min_cycles must be >= 1")
        _require(self.gline_intermittent_max_cycles
                 >= self.gline_intermittent_min_cycles,
                 "gline_intermittent_max_cycles must be >= the minimum")
        _require(0.0 < self.gline_intermittent_duty <= 1.0,
                 "gline_intermittent_duty must be in (0, 1]")
        _require(self.gline_intermittent_polarity in (None, 0, 1),
                 "gline_intermittent_polarity must be None, 0 or 1")
        _require(self.noc_drop_rate + self.noc_corrupt_rate < 1.0,
                 "noc_drop_rate + noc_corrupt_rate must be < 1")
        _require(self.noc_retry_cycles >= 1, "noc_retry_cycles must be >= 1")
        _require(self.straggler_max_cycles >= 1,
                 "straggler_max_cycles must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """True if any fault category has a nonzero rate."""
        return any((self.gline_stuck_rate, self.gline_glitch_rate,
                    self.scsma_miscount_rate, self.gline_intermittent_rate,
                    self.noc_drop_rate, self.noc_corrupt_rate,
                    self.core_straggler_rate, self.core_failstop_rate))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Flat plain-dict form (cache-key / worker-IPC format).

        ``scsma_miscount_bias`` is omitted at its default so plans
        predating the field keep byte-identical cache keys.
        """
        data = asdict(self)
        if self.scsma_miscount_bias == 0.0:
            del data["scsma_miscount_bias"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        _require(not unknown,
                 f"FaultPlan.from_dict: unknown fields {sorted(unknown)}")
        return cls(**data)
