"""Deterministic fault injection for the simulated CMP.

:class:`FaultPlan` describes *what* can break and how often (all-zero by
default, i.e. faults off); :class:`FaultInjector` is the seeded runtime
that rolls the dice.  The plan is part of :class:`~repro.common.params.
CMPConfig`, so it serializes into the exec-layer cache key and a faulty
run is exactly as reproducible -- and cacheable -- as a clean one.
"""

from .chaos import CHAOS_ENV, ChaosPlan
from .injector import FaultInjector
from .plan import FaultPlan

#: Resume-callback outcome passed to a core when its barrier episode was
#: abandoned by the watchdog and must be completed in software.
FAILOVER = "failover"

__all__ = ["CHAOS_ENV", "ChaosPlan", "FAILOVER", "FaultInjector",
           "FaultPlan"]
