"""Chaos plan: seeded *process-level* failures for the executor.

Where :class:`~repro.faults.plan.FaultPlan` breaks the simulated hardware
(wires, packets, cores), :class:`ChaosPlan` breaks the machinery that
*runs* the simulations: it tells a supervised worker process to die, hang
or get "OOM-killed" before executing its spec, so the supervision layer in
:mod:`repro.exec.supervisor` -- deadlines, retries, quarantine, resume --
is itself testable end to end.

Determinism mirrors the fault injector: every roll is a pure function of
``(seed, token, attempt)`` hashed through SHA-256 (never the salted
built-in ``hash()``), where *token* is the supervisor's stable per-spec
dispatch ordinal.  The same seed therefore strikes the same runs on every
machine and every commit, which is what lets CI pin "worker N dies, the
retry succeeds, the figure still matches the golden numbers".

Chaos is opt-in twice over: the plan defaults to all-zero rates, and the
executor only consults it in supervised mode.  The ``REPRO_CHAOS``
environment variable (``"seed=3,kill=0.25,hang=0.1,oom=0.05"``) is the
CLI/CI entry point.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, fields

#: Environment variable holding a chaos spec, e.g. ``seed=3,kill=0.25``.
CHAOS_ENV = "REPRO_CHAOS"

#: Chaos actions a worker can be told to take, in roll order.
KILL, HANG, OOM = "kill", "hang", "oom"


def _require(cond: bool, msg: str) -> None:
    if not cond:
        from ..common.errors import ConfigError
        raise ConfigError(msg)


def _fraction(seed: int, token: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one (spec, attempt) pair."""
    digest = hashlib.sha256(f"{seed}:{token}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded worker-failure schedule (all rates are probabilities)."""

    #: RNG seed; every (token, attempt) pair derives its own draw from it.
    seed: int = 0
    #: Probability a worker exits with a nonzero status before running.
    kill_rate: float = 0.0
    #: Probability a worker hangs (sleeps past any reasonable deadline).
    hang_rate: float = 0.0
    #: Probability a worker is SIGKILLed, mimicking the kernel OOM killer
    #: (negative exitcode, no exception, no goodbye).
    oom_rate: float = 0.0
    #: How long a hung worker sleeps; only a supervision deadline ends it.
    hang_seconds: float = 300.0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "oom_rate"):
            rate = getattr(self, name)
            _require(0.0 <= rate <= 1.0,
                     f"{name} must be in [0, 1], got {rate}")
        _require(self.kill_rate + self.hang_rate + self.oom_rate <= 1.0,
                 "kill_rate + hang_rate + oom_rate must be <= 1")
        _require(self.hang_seconds > 0, "hang_seconds must be > 0")

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """True if any strike category has a nonzero rate."""
        return any((self.kill_rate, self.hang_rate, self.oom_rate))

    def roll(self, token: str, attempt: int) -> str | None:
        """``"kill"``, ``"hang"``, ``"oom"`` or ``None`` for this attempt.

        *token* identifies the unit of work (the supervisor uses its
        stable dispatch ordinal); *attempt* is the 0-based retry number,
        so a struck run gets an independent draw on each retry.
        """
        if not self.enabled:
            return None
        r = _fraction(self.seed, token, attempt)
        if r < self.kill_rate:
            return KILL
        if r < self.kill_rate + self.hang_rate:
            return HANG
        if r < self.kill_rate + self.hang_rate + self.oom_rate:
            return OOM
        return None

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Flat plain-dict form (worker-IPC format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        _require(not unknown,
                 f"ChaosPlan.from_dict: unknown fields {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_env(cls, environ=None) -> "ChaosPlan | None":
        """Parse ``$REPRO_CHAOS`` (``None`` when unset or empty).

        Format: comma-separated ``key=value`` pairs with keys ``seed``,
        ``kill``, ``hang``, ``oom``, ``hang_seconds``; e.g.
        ``REPRO_CHAOS="seed=3,kill=0.25,hang=0.1"``.
        """
        raw = (environ if environ is not None else os.environ).get(
            CHAOS_ENV, "").strip()
        if not raw:
            return None
        aliases = {"kill": "kill_rate", "hang": "hang_rate",
                   "oom": "oom_rate"}
        kwargs: dict = {}
        for item in raw.split(","):
            name, sep, value = item.partition("=")
            name = name.strip()
            _require(bool(sep),
                     f"{CHAOS_ENV}: expected key=value, got {item!r}")
            name = aliases.get(name, name)
            _require(name in {f.name for f in fields(cls)},
                     f"{CHAOS_ENV}: unknown key {name!r}")
            try:
                kwargs[name] = int(value) if name == "seed" \
                    else float(value)
            except ValueError:
                _require(False,
                         f"{CHAOS_ENV}: bad value for {name}: {value!r}")
        return cls(**kwargs)
