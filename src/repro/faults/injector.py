"""The seeded runtime that turns a :class:`FaultPlan` into faults.

Determinism is the whole design: every fault *domain* (one G-line, the
NoC, one core's straggler stream, ...) gets its own ``random.Random``
whose seed is a SHA-256 digest of ``(plan seed, domain name)``.  Built-in
``hash()`` is deliberately avoided -- it is salted per process, which
would make a cached result disagree with a recomputed one across the
multiprocessing workers of :mod:`repro.exec`.

Per-domain streams also keep fault schedules *independent*: enabling NoC
drops does not shift which cycle a G-line gets stuck at, so ablating one
fault category never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .plan import FaultPlan

if TYPE_CHECKING:
    from repro.common.stats import StatsRegistry
    from repro.gline.gline import GLine


def _derive_seed(seed: int, domain: str) -> int:
    digest = hashlib.sha256(f"{seed}:{domain}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class _Burst:
    """An in-flight intermittent fault: ends at cycle *end* (exclusive)."""

    end: int
    polarity: int


class FaultInjector:
    """Rolls the dice described by a :class:`FaultPlan`.

    One injector is shared by the whole chip (cores, NoC, every G-line
    network); *stats* is the chip's StatsRegistry, where every injected
    fault is counted under a ``faults.*`` key.
    """

    def __init__(self, plan: FaultPlan, stats: StatsRegistry) -> None:
        self.plan = plan
        self.stats = stats
        self._rngs: dict[str, random.Random] = {}
        #: Active intermittent bursts, keyed by line name.
        self._bursts: dict[str, _Burst] = {}

    def _rng(self, domain: str) -> random.Random:
        rng = self._rngs.get(domain)
        if rng is None:
            rng = random.Random(_derive_seed(self.plan.seed, domain))
            self._rngs[domain] = rng
        return rng

    # ------------------------------------------------------------------ #
    # G-line faults (called by the barrier network once per active cycle)
    # ------------------------------------------------------------------ #
    def perturb_glines(self, lines: Iterable[GLine],
                       now: int | None = None) -> None:
        """Apply this cycle's wire faults to *lines* (an ordered list).

        Mutates the per-cycle override fields of :class:`~repro.gline.
        gline.GLine`: ``stuck`` persists once set; ``glitch_force`` and
        ``count_delta`` last for the current cycle only.

        *now* is the current engine cycle; it is required only for the
        intermittent fault class (burst windows are wall-clock bounded,
        so a burst also heals while a quarantined network is not being
        clocked).  Passing ``None`` disables intermittent faults for the
        call, which keeps legacy call sites byte-identical.
        """
        plan = self.plan
        for line in lines:
            if line.stuck is not None:
                continue      # a stuck wire can't also glitch
            if plan.gline_intermittent_rate and now is not None \
                    and self._intermittent(line, now):
                continue      # burst asserts this cycle; wins over the rest
            rng = self._rng(f"gline:{line.name}")
            if plan.gline_stuck_rate and rng.random() < plan.gline_stuck_rate:
                line.stuck = 1 if rng.random() < 0.5 else 0
                self.stats.bump("faults.gline.stuck")
                continue
            if plan.gline_glitch_rate \
                    and rng.random() < plan.gline_glitch_rate:
                # A glitch inverts the apparent level for one cycle.
                line.glitch_force = 0 if line.sampled_on() else 1
                self.stats.bump("faults.gline.glitches")
                continue
            if plan.scsma_miscount_rate \
                    and rng.random() < plan.scsma_miscount_rate:
                # The unbiased coin is always consumed from the line's
                # main stream (like the intermittent polarity draw) so
                # sweeping the bias never shifts which cycles miscount.
                delta = rng.choice((-1, 1))
                if plan.scsma_miscount_bias:
                    brng = self._rng(f"scsmabias:{line.name}")
                    p_plus = (1.0 + plan.scsma_miscount_bias) / 2.0
                    delta = 1 if brng.random() < p_plus else -1
                line.count_delta = delta
                self.stats.bump("faults.gline.miscounts")

    def _intermittent(self, line: GLine, now: int) -> bool:
        """Advance *line*'s burst state; True if the fault asserts now.

        Uses a dedicated per-line RNG stream (``glineint:<name>``) so
        enabling intermittent faults never shifts the stuck/glitch/
        miscount schedules of the other domains.
        """
        plan = self.plan
        rng = self._rng(f"glineint:{line.name}")
        burst = self._bursts.get(line.name)
        if burst is not None and now >= burst.end:
            del self._bursts[line.name]
            self.stats.bump("faults.gline.intermittent_heals")
            burst = None
        if burst is None:
            if rng.random() >= plan.gline_intermittent_rate:
                return False
            duration = rng.randint(plan.gline_intermittent_min_cycles,
                                   plan.gline_intermittent_max_cycles)
            # The polarity draw happens even when pinned, so pinning does
            # not shift the stream's later onset/duration draws.
            coin = 1 if rng.random() < 0.5 else 0
            polarity = coin if plan.gline_intermittent_polarity is None \
                else plan.gline_intermittent_polarity
            burst = _Burst(end=now + duration, polarity=polarity)
            self._bursts[line.name] = burst
            self.stats.bump("faults.gline.intermittent_onsets")
        if plan.gline_intermittent_duty >= 1.0 \
                or rng.random() < plan.gline_intermittent_duty:
            line.glitch_force = burst.polarity
            self.stats.bump("faults.gline.intermittent_cycles")
            return True
        return False

    # ------------------------------------------------------------------ #
    # NoC faults (called by Network.send per injected message)
    # ------------------------------------------------------------------ #
    def noc_outcome(self) -> str | None:
        """``"dropped"``, ``"corrupted"`` or ``None`` for this message."""
        plan = self.plan
        if not (plan.noc_drop_rate or plan.noc_corrupt_rate):
            return None
        r = self._rng("noc").random()
        if r < plan.noc_drop_rate:
            return "dropped"
        if r < plan.noc_drop_rate + plan.noc_corrupt_rate:
            return "corrupted"
        return None

    # ------------------------------------------------------------------ #
    # Core faults (called at each barrier entry)
    # ------------------------------------------------------------------ #
    def core_failstop(self, cid: int) -> bool:
        plan = self.plan
        if not plan.core_failstop_rate:
            return False
        return self._rng(f"failstop:{cid}").random() < plan.core_failstop_rate

    def core_straggler_delay(self, cid: int) -> int:
        """Extra cycles this core stalls before this barrier (0 = none)."""
        plan = self.plan
        if not plan.core_straggler_rate:
            return 0
        rng = self._rng(f"straggler:{cid}")
        if rng.random() < plan.core_straggler_rate:
            return rng.randint(1, plan.straggler_max_cycles)
        return 0
