"""The seeded runtime that turns a :class:`FaultPlan` into faults.

Determinism is the whole design: every fault *domain* (one G-line, the
NoC, one core's straggler stream, ...) gets its own ``random.Random``
whose seed is a SHA-256 digest of ``(plan seed, domain name)``.  Built-in
``hash()`` is deliberately avoided -- it is salted per process, which
would make a cached result disagree with a recomputed one across the
multiprocessing workers of :mod:`repro.exec`.

Per-domain streams also keep fault schedules *independent*: enabling NoC
drops does not shift which cycle a G-line gets stuck at, so ablating one
fault category never perturbs another.
"""

from __future__ import annotations

import hashlib
import random

from .plan import FaultPlan


def _derive_seed(seed: int, domain: str) -> int:
    digest = hashlib.sha256(f"{seed}:{domain}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class FaultInjector:
    """Rolls the dice described by a :class:`FaultPlan`.

    One injector is shared by the whole chip (cores, NoC, every G-line
    network); *stats* is the chip's StatsRegistry, where every injected
    fault is counted under a ``faults.*`` key.
    """

    def __init__(self, plan: FaultPlan, stats):
        self.plan = plan
        self.stats = stats
        self._rngs: dict[str, random.Random] = {}

    def _rng(self, domain: str) -> random.Random:
        rng = self._rngs.get(domain)
        if rng is None:
            rng = random.Random(_derive_seed(self.plan.seed, domain))
            self._rngs[domain] = rng
        return rng

    # ------------------------------------------------------------------ #
    # G-line faults (called by the barrier network once per active cycle)
    # ------------------------------------------------------------------ #
    def perturb_glines(self, lines) -> None:
        """Apply this cycle's wire faults to *lines* (an ordered list).

        Mutates the per-cycle override fields of :class:`~repro.gline.
        gline.GLine`: ``stuck`` persists once set; ``glitch_force`` and
        ``count_delta`` last for the current cycle only.
        """
        plan = self.plan
        for line in lines:
            if line.stuck is not None:
                continue      # a stuck wire can't also glitch
            rng = self._rng(f"gline:{line.name}")
            if plan.gline_stuck_rate and rng.random() < plan.gline_stuck_rate:
                line.stuck = 1 if rng.random() < 0.5 else 0
                self.stats.bump("faults.gline.stuck")
                continue
            if plan.gline_glitch_rate \
                    and rng.random() < plan.gline_glitch_rate:
                # A glitch inverts the apparent level for one cycle.
                line.glitch_force = 0 if line.sampled_on() else 1
                self.stats.bump("faults.gline.glitches")
                continue
            if plan.scsma_miscount_rate \
                    and rng.random() < plan.scsma_miscount_rate:
                line.count_delta = rng.choice((-1, 1))
                self.stats.bump("faults.gline.miscounts")

    # ------------------------------------------------------------------ #
    # NoC faults (called by Network.send per injected message)
    # ------------------------------------------------------------------ #
    def noc_outcome(self) -> str | None:
        """``"dropped"``, ``"corrupted"`` or ``None`` for this message."""
        plan = self.plan
        if not (plan.noc_drop_rate or plan.noc_corrupt_rate):
            return None
        r = self._rng("noc").random()
        if r < plan.noc_drop_rate:
            return "dropped"
        if r < plan.noc_drop_rate + plan.noc_corrupt_rate:
            return "corrupted"
        return None

    # ------------------------------------------------------------------ #
    # Core faults (called at each barrier entry)
    # ------------------------------------------------------------------ #
    def core_failstop(self, cid: int) -> bool:
        plan = self.plan
        if not plan.core_failstop_rate:
            return False
        return self._rng(f"failstop:{cid}").random() < plan.core_failstop_rate

    def core_straggler_delay(self, cid: int) -> int:
        """Extra cycles this core stalls before this barrier (0 = none)."""
        plan = self.plan
        if not plan.core_straggler_rate:
            return 0
        rng = self._rng(f"straggler:{cid}")
        if rng.random() < plan.core_straggler_rate:
            return rng.randint(1, plan.straggler_max_cycles)
        return 0
