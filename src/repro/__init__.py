"""repro -- reproduction of "A G-line-based Network for Fast and Efficient
Barrier Synchronization in Many-Core CMPs" (Abellán, Fernández, Acacio;
ICPP 2010).

Public API highlights:

* :class:`repro.CMP` / :class:`repro.CMPConfig` -- build the simulated chip
  (Table-1 defaults) with a chosen barrier implementation ("gl", "dsw",
  "csw", "csw-fa").
* :mod:`repro.workloads` -- the paper's benchmarks (synthetic, Livermore
  kernels 2/3/6, OCEAN, UNSTRUCTURED, EM3D).
* :mod:`repro.experiments` -- drivers regenerating every table and figure.
* :mod:`repro.exec` -- parallel executor + content-addressed result cache
  (see docs/parallel-execution.md).
* :mod:`repro.gline` -- the G-line barrier network itself (wires, S-CSMA,
  Figure-4 controllers, hierarchical and multi-context extensions).
* :mod:`repro.faults` -- seeded fault injection, barrier watchdog and
  GL -> software failover (see docs/fault-injection.md).
* :mod:`repro.obs` -- observability: structured tracing, Perfetto/VCD
  export, metric streams and the barrier flight recorder (see
  docs/observability.md).
* :mod:`repro.verify` -- explicit-state model checker for the barrier
  FSMs: proves safety, deadlock freedom, exactly-once release and the
  paper's 4-cycle completion theorem for every mesh up to 4x4, and
  replays counterexamples on the real simulator (see
  docs/verification.md).
"""

from .chip import BARRIER_KINDS, CMP, RunResult
from .common import (
    CMPConfig,
    CacheConfig,
    CoreConfig,
    CycleCat,
    GLineConfig,
    MsgCat,
    NocConfig,
    ReproError,
    StatsRegistry,
    mesh_dims,
)
from .faults import FaultPlan
from .obs import MetricsRegistry, Observability, RingTracer

__version__ = "1.0.0"

__all__ = [
    "BARRIER_KINDS", "CMP", "RunResult",
    "CMPConfig", "CacheConfig", "CoreConfig", "CycleCat", "FaultPlan",
    "GLineConfig", "MsgCat", "NocConfig", "ReproError", "StatsRegistry",
    "MetricsRegistry", "Observability", "RingTracer",
    "mesh_dims",
    "__version__",
]
