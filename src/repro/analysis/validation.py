"""Automated reproduction-shape validation.

Encodes every qualitative claim the reproduction must satisfy -- the
orderings, crossovers and rough factors of the paper's evaluation -- as
named checks over experiment results.  The benchmark harness asserts them;
``scripts/generate_experiments.py`` prints the checklist.

A check returns ``(name, passed, detail)``; `validate_all` aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..experiments.fig5 import Fig5Result
from ..experiments.fig6 import Fig6Result
from ..experiments.fig7 import Fig7Result
from ..experiments.table2 import Table2Result


@dataclass(frozen=True)
class Check:
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


# ---------------------------------------------------------------------- #
def check_fig5(result: Fig5Result) -> list[Check]:
    checks = []
    checks.append(Check(
        "fig5.ordering", result.is_ordered(),
        "CSW > DSW > GL at every core count"))
    gl = result.cycles_per_barrier.get("gl", {})
    flat = len({round(v) for v in gl.values()}) == 1 if gl else False
    checks.append(Check(
        "fig5.gl_flat", flat,
        f"GL constant across core counts: {sorted(gl.values())}"))
    checks.append(Check(
        "fig5.gl_13_cycles",
        all(abs(v - 13) <= 1 for v in gl.values()) if gl else False,
        "GL ~13 cycles (4-cycle network + library overhead)"))
    csw = result.cycles_per_barrier.get("csw", {})
    if csw and len(csw) >= 2:
        xs = sorted(csw)
        growth = csw[xs[-1]] / csw[xs[0]]
        checks.append(Check(
            "fig5.csw_superlinear", growth > (xs[-1] / xs[0]),
            f"CSW grows {growth:.1f}x from {xs[0]} to {xs[-1]} cores"))
    return checks


def check_fig6(result: Fig6Result) -> list[Check]:
    t = {n: c.normalized_treated_total
         for n, c in result.comparisons.items()}
    checks = [
        Check("fig6.kernels_improve_a_lot", result.avg_k < 0.55,
              f"AVG_K = {result.avg_k:.2f} (paper 0.32)"),
        Check("fig6.apps_improve_a_little", 0.6 < result.avg_a < 1.0,
              f"AVG_A = {result.avg_a:.2f} (paper 0.79)"),
        Check("fig6.kernel_ordering",
              t["KERN3"] < t["KERN2"] < t["KERN6"],
              f"K3 {t['KERN3']:.2f} < K2 {t['KERN2']:.2f} "
              f"< K6 {t['KERN6']:.2f}"),
        Check("fig6.em3d_best_app",
              t["EM3D"] < min(t["UNSTR"], t["OCEAN"]),
              f"EM3D {t['EM3D']:.2f} vs UNSTR {t['UNSTR']:.2f} / "
              f"OCEAN {t['OCEAN']:.2f}"),
        Check("fig6.imbalanced_apps_static",
              t["UNSTR"] > 0.85 and t["OCEAN"] > 0.85,
              "UNSTR/OCEAN improve only a few percent"),
    ]
    return checks


def check_fig7(result: Fig7Result) -> list[Check]:
    m = {n: c.normalized_treated_total
         for n, c in result.comparisons.items()}
    return [
        Check("fig7.kern3_traffic_vanishes", m["KERN3"] < 0.1,
              f"KERN3 GL/DSW = {m['KERN3']:.3f} (paper 0.0018)"),
        Check("fig7.kernel_ordering",
              m["KERN3"] < m["KERN2"] < m["KERN6"],
              f"K3 {m['KERN3']:.2f} < K2 {m['KERN2']:.2f} "
              f"< K6 {m['KERN6']:.2f}"),
        Check("fig7.em3d_halves",
              0.3 < m["EM3D"] < 0.75,
              f"EM3D GL/DSW = {m['EM3D']:.2f} (paper 0.49)"),
        Check("fig7.apps_static",
              m["UNSTR"] > 0.8 and m["OCEAN"] > 0.8,
              "UNSTR/OCEAN traffic barely moves"),
        Check("fig7.kernel_avg", result.avg_k < 0.5,
              f"AVG_K = {result.avg_k:.2f} (paper 0.26)"),
    ]


def check_table2(result: Table2Result) -> list[Check]:
    order = result.period_ordering()
    fine = {"Synthetic", "KERN2", "KERN3", "EM3D", "KERN6"}
    coarse_last = set(order[-2:]) == {"UNSTR", "OCEAN"}
    counts_ok = all(r.measured_barriers == r.info.num_barriers
                    for r in result.rows)
    return [
        Check("table2.apps_coarsest", coarse_last,
              f"period ordering: {' < '.join(order)}"),
        Check("table2.synthetic_finest", order[0] == "Synthetic",
              "the empty-loop benchmark has the shortest period"),
        Check("table2.barrier_counts", counts_ok,
              "measured barrier counts equal declared structure"),
        Check("table2.fine_before_coarse",
              all(o in fine for o in order[:-2]),
              "kernels + EM3D all finer-grain than the applications"),
    ]


def validate_all(fig5: Fig5Result | None = None,
                 fig6: Fig6Result | None = None,
                 fig7: Fig7Result | None = None,
                 table2: Table2Result | None = None) -> list[Check]:
    checks: list[Check] = []
    if fig5 is not None:
        checks += check_fig5(fig5)
    if fig6 is not None:
        checks += check_fig6(fig6)
    if fig7 is not None:
        checks += check_fig7(fig7)
    if table2 is not None:
        checks += check_table2(table2)
    return checks


def render_checklist(checks: list[Check]) -> str:
    lines = [str(c) for c in checks]
    passed = sum(c.passed for c in checks)
    lines.append(f"-- {passed}/{len(checks)} shape checks passed")
    return "\n".join(lines)


def all_passed(checks: list[Check]) -> bool:
    return all(c.passed for c in checks)
