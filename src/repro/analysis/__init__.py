"""Result analysis: breakdowns, traffic, energy, reports, paper data."""

from . import paper_data
from .breakdown import (
    Breakdown,
    BreakdownComparison,
    FIG6_ORDER,
    average_normalized as average_normalized_time,
)
from .energy import EnergyEstimate, estimate, reduction
from .figures import (fig5_chart, fig6_chart, fig7_chart, log_chart,
                      stacked_bar, stacked_bar_chart)
from .netreport import (hotspot_table, link_stats, tile_heatmap,
                        total_flit_hops)
from .report import pct, render_bar, render_table
from .traffic import (
    FIG7_ORDER,
    Traffic,
    TrafficComparison,
    average_normalized as average_normalized_traffic,
)

__all__ = [
    "paper_data",
    "Breakdown", "BreakdownComparison", "FIG6_ORDER",
    "average_normalized_time",
    "EnergyEstimate", "estimate", "reduction",
    "fig5_chart", "fig6_chart", "fig7_chart", "log_chart",
    "stacked_bar", "stacked_bar_chart",
    "hotspot_table", "link_stats", "tile_heatmap", "total_flit_hops",
    "pct", "render_bar", "render_table",
    "FIG7_ORDER", "Traffic", "TrafficComparison",
    "average_normalized_traffic",
]
