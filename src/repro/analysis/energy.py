"""First-order network-energy proxy.

The paper argues (without quantifying -- it is left to future work) that
removing all barrier traffic and coherence activity from the main data
network "will also lead to significant improvements in power consumption",
noting interconnect power approaches 40% of total chip power (Raw).

This module provides the proxy the paper's argument implies: energy scales
with link traversals (flit-hops) and router traversals on the data network,
plus the (tiny) G-line toggle count on the dedicated network.  Relative
per-event weights follow the common rule of thumb that a router traversal
costs a few times a link traversal, and a bare-wire G-line toggle costs
about one link traversal; absolute calibration is irrelevant because every
result is reported as a GL/DSW ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chip.results import RunResult

#: Relative energy weights (arbitrary units per event).
LINK_ENERGY = 1.0
ROUTER_ENERGY = 3.0
GLINE_TOGGLE_ENERGY = 1.0


@dataclass
class EnergyEstimate:
    label: str
    link_energy: float
    router_energy: float
    gline_energy: float

    @property
    def data_network(self) -> float:
        return self.link_energy + self.router_energy

    @property
    def total(self) -> float:
        return self.data_network + self.gline_energy


def estimate(label: str, result: RunResult,
             router_traversals: int | None = None) -> EnergyEstimate:
    """Estimate network energy from a run's statistics.

    ``router_traversals`` may be supplied from the Network's routers; if
    omitted it is approximated as flit-hops (each hop enters one router).
    """
    stats = result.stats
    flit_hops = sum(stats.hop_flits.values())
    routers = router_traversals if router_traversals is not None \
        else flit_hops
    return EnergyEstimate(
        label=label,
        link_energy=LINK_ENERGY * flit_hops,
        router_energy=ROUTER_ENERGY * routers,
        gline_energy=GLINE_TOGGLE_ENERGY * stats.gline_toggles,
    )


def reduction(baseline: EnergyEstimate, treated: EnergyEstimate) -> float:
    """Fractional total-network-energy reduction of *treated* vs
    *baseline* (positive = treated uses less)."""
    if baseline.total == 0:
        return 0.0
    return 1.0 - treated.total / baseline.total
