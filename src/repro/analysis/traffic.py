"""Network-traffic analysis (Figure 7)."""

from __future__ import annotations

from dataclasses import dataclass

from ..chip.results import RunResult
from ..common.stats import MsgCat

#: Category display order used by the paper's Figure 7 legend.
FIG7_ORDER = (MsgCat.COHERENCE, MsgCat.REPLY, MsgCat.REQUEST)


@dataclass
class Traffic:
    """Per-category message counts of one run."""

    label: str
    messages: dict[MsgCat, int]
    flits: dict[MsgCat, int]
    hop_flits: dict[MsgCat, int]

    @property
    def total(self) -> int:
        return sum(self.messages.values())

    def normalized_to(self, baseline_total: int) -> dict[MsgCat, float]:
        denom = baseline_total or 1
        return {cat: self.messages.get(cat, 0) / denom
                for cat in FIG7_ORDER}

    @classmethod
    def from_result(cls, label: str, result: RunResult) -> "Traffic":
        stats = result.stats
        return cls(label=label,
                   messages=dict(result.messages()),
                   flits={c: stats.flits.get(c, 0) for c in MsgCat},
                   hop_flits={c: stats.hop_flits.get(c, 0) for c in MsgCat})


@dataclass
class TrafficComparison:
    """DSW-vs-GL traffic pair for one benchmark."""

    benchmark: str
    baseline: Traffic   # DSW
    treated: Traffic    # GL

    @property
    def normalized_treated_total(self) -> float:
        return self.treated.total / (self.baseline.total or 1)

    @property
    def traffic_reduction(self) -> float:
        return 1.0 - self.normalized_treated_total

    def rows(self) -> list[tuple[str, float, float]]:
        base = self.baseline.normalized_to(self.baseline.total)
        treat = self.treated.normalized_to(self.baseline.total)
        return [(cat.value, base[cat], treat[cat]) for cat in FIG7_ORDER]


def average_normalized(comparisons: list[TrafficComparison]) -> float:
    if not comparisons:
        return 0.0
    return sum(c.normalized_treated_total for c in comparisons) / \
        len(comparisons)
