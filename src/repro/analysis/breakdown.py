"""Execution-time breakdown analysis (Figure 6)."""

from __future__ import annotations

from dataclasses import dataclass

from ..chip.results import RunResult
from ..common.stats import CycleCat

#: Category display order used by the paper's Figure 6 legend.
FIG6_ORDER = (CycleCat.BARRIER, CycleCat.WRITE, CycleCat.READ,
              CycleCat.LOCK, CycleCat.BUSY)


@dataclass
class Breakdown:
    """Per-category attributed cycles of one run, with normalization."""

    label: str
    cycles: dict[CycleCat, int]

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def normalized_to(self, baseline_total: int) -> dict[CycleCat, float]:
        """Each category as a fraction of *baseline_total* (the paper
        normalizes every bar to the DSW run's total)."""
        denom = baseline_total or 1
        return {cat: self.cycles.get(cat, 0) / denom for cat in FIG6_ORDER}

    @classmethod
    def from_result(cls, label: str, result: RunResult) -> "Breakdown":
        return cls(label=label, cycles=result.cycle_breakdown())


@dataclass
class BreakdownComparison:
    """DSW-vs-GL breakdown pair for one benchmark."""

    benchmark: str
    baseline: Breakdown   # DSW
    treated: Breakdown    # GL

    @property
    def normalized_treated_total(self) -> float:
        """GL total execution normalized to DSW (the Figure-6 bar height)."""
        return self.treated.total / (self.baseline.total or 1)

    @property
    def time_reduction(self) -> float:
        """1 - normalized total (the paper quotes these as percentages)."""
        return 1.0 - self.normalized_treated_total

    def rows(self) -> list[tuple[str, float, float]]:
        """(category, baseline fraction, treated fraction) rows."""
        base = self.baseline.normalized_to(self.baseline.total)
        treat = self.treated.normalized_to(self.baseline.total)
        return [(cat.value, base[cat], treat[cat]) for cat in FIG6_ORDER]


def average_normalized(comparisons: list[BreakdownComparison]) -> float:
    """Arithmetic mean of normalized GL totals (the paper's AVG_K/AVG_A)."""
    if not comparisons:
        return 0.0
    return sum(c.normalized_treated_total for c in comparisons) / \
        len(comparisons)
