"""ASCII table rendering for experiment reports.

Everything the benchmark harness prints goes through these helpers so the
regenerated "tables and figures" have one consistent, diff-friendly look.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A one-line horizontal bar for 'figure' output (0.0 .. ~1.2)."""
    n = max(0, round(fraction * width))
    return fill * min(n, width + 8)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.01:
            return f"{cell:.4f}"
        if abs(cell) < 10:
            return f"{cell:.2f}"
        return f"{cell:,.0f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def pct(x: float) -> str:
    """Format a fraction as a signed percent string."""
    return f"{x * 100:.1f}%"
