"""Network utilization reporting: per-link statistics and ASCII heatmaps.

Useful for seeing *where* the software barriers hammer the mesh (the
hot-spot links around the centralized counter's home tile for CSW; the
tree-node homes for DSW) and that GL leaves the mesh untouched.
"""

from __future__ import annotations

from ..noc.network import Network
from .report import render_table

#: Shading ramp for the heatmap (low -> high utilization).
RAMP = " .:-=+*#%@"


def link_stats(network: Network) -> list[tuple[str, int, float]]:
    """Per-link (name, flits carried, busy fraction), busiest first."""
    now = max(network.now, 1)
    rows = []
    for (src, dst), link in network.links.items():
        rows.append((f"{src}->{dst}", link.flits_carried,
                     link.busy_cycles / now))
    rows.sort(key=lambda r: r[1], reverse=True)
    return rows


def hotspot_table(network: Network, top: int = 10) -> str:
    rows = [[name, flits, f"{util:.1%}"]
            for name, flits, util in link_stats(network)[:top]]
    return render_table(["Link", "Flits", "Utilization"], rows,
                        title=f"Top {top} busiest links")


def tile_heatmap(network: Network) -> str:
    """ASCII heatmap of per-tile router traffic (inject+eject+forward)."""
    mesh = network.mesh
    traversals = [router.traversals for router in network.routers]
    peak = max(max(traversals), 1)
    lines = ["Router-traffic heatmap (tile-by-tile, @ = hottest):"]
    for r in range(mesh.rows):
        row_chars = []
        for c in range(mesh.cols):
            level = traversals[mesh.tile_at(r, c)] / peak
            row_chars.append(RAMP[min(len(RAMP) - 1,
                                      int(level * (len(RAMP) - 1)))])
        lines.append("  " + " ".join(row_chars))
    lines.append(f"  peak: {peak} traversals")
    return "\n".join(lines)


def total_flit_hops(network: Network) -> int:
    return sum(link.flits_carried for link in network.links.values())
