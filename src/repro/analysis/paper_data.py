"""Reference numbers reported by the paper, for side-by-side comparison.

Values come from the paper's text and tables; Figure-read values (marked
``approx=True`` in comments) are visual estimates from the bar charts and
only used for shape checks, never for strict assertions.
"""

from __future__ import annotations

KERNELS = ("KERN2", "KERN3", "KERN6")
APPS = ("UNSTR", "OCEAN", "EM3D")
BENCHMARKS = KERNELS + APPS

#: Table 2 -- (#barriers, barrier period in cycles) at full scale.
TABLE2 = {
    "Synthetic": (400_000, 2_568),
    "KERN2": (10_000, 3_103),
    "KERN3": (1_000, 2_862),
    "KERN6": (1_022_000, 4_908),
    "OCEAN": (364, 205_206),
    "UNSTR": (80, 67_361),
    "EM3D": (198, 3_673),
}

#: Figure 6 -- GL execution time normalized to DSW (=1.0).
#: KERN2/KERN3/KERN6/EM3D from the text (70%/88%/47%/54% reductions);
#: UNSTR/OCEAN from the text (3%/5% reductions).
FIG6_GL_NORM_TIME = {
    "KERN2": 0.30,
    "KERN3": 0.12,
    "KERN6": 0.53,
    "UNSTR": 0.97,
    "OCEAN": 0.95,
    "EM3D": 0.46,
}
#: Averages quoted in the text: kernels -68%, applications -21%.
FIG6_AVG_K = 0.32
FIG6_AVG_A = 0.79

#: Figure 7 -- GL network messages normalized to DSW (=1.0).
#: KERN2 (-68%), KERN3 (-99.82%) and EM3D (-51%) from the text; KERN6
#: derived from the quoted kernel average (-74%); UNSTR/OCEAN are quoted
#: as ~1% reductions.
FIG7_GL_NORM_TRAFFIC = {
    "KERN2": 0.32,
    "KERN3": 0.0018,
    "KERN6": 0.46,   # derived: 3*0.26 - 0.32 - 0.0018 (approx)
    "UNSTR": 0.99,
    "OCEAN": 0.99,
    "EM3D": 0.49,
}
FIG7_AVG_K = 0.26
FIG7_AVG_A = 0.82

#: Figure 5 -- the only value quoted numerically: GL takes 13 cycles per
#: barrier (4 theoretical + library overhead).
FIG5_GL_CYCLES = 13
FIG5_GL_THEORETICAL = 4

#: Qualitative Figure-5 shape: at every core count CSW > DSW > GL, and
#: CSW/DSW grow with core count while GL stays flat.
FIG5_CORE_COUNTS = (4, 8, 16, 32)

#: G-line budget: 2*(sqrt(N)+1) wires per barrier (10 for 16 cores).
GLINES_16_CORES = 10
