"""ASCII figure rendering.

The benchmark harness regenerates the paper's figures as *data* tables;
this module additionally renders them as terminal graphics so the shape is
visible at a glance: a log-scale line chart for Figure 5 and horizontal
stacked bars for Figures 6/7.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Fill characters for stacked-bar categories, in order.
STACK_CHARS = "#=+:.~"


def log_chart(series: Mapping[str, Mapping[int, float]],
              title: str = "", height: int = 12,
              width_per_point: int = 10) -> str:
    """Render ``label -> {x: y}`` series as a log10-scale ASCII chart.

    X positions are the union of all series' keys, sorted; each series is
    drawn with its own marker letter (first letter of its label).
    """
    xs = sorted({x for ys in series.values() for x in ys})
    if not xs:
        return title
    values = [y for ys in series.values() for y in ys.values() if y > 0]
    lo = math.floor(math.log10(min(values)))
    hi = math.ceil(math.log10(max(values)))
    hi = max(hi, lo + 1)

    def row_of(y: float) -> int:
        """Map a value to a chart row (0 = top)."""
        frac = (math.log10(max(y, 10 ** lo)) - lo) / (hi - lo)
        return (height - 1) - min(height - 1, round(frac * (height - 1)))

    grid = [[" "] * (len(xs) * width_per_point) for _ in range(height)]
    for label, ys in series.items():
        marker = label[0].upper()
        for i, x in enumerate(xs):
            if x in ys and ys[x] > 0:
                col = i * width_per_point + width_per_point // 2
                grid[row_of(ys[x])][col] = marker

    lines = [title, "=" * max(len(title), 1)] if title else []
    for r, row in enumerate(grid):
        # Left axis: the decade label at rows that land on a decade.
        frac = 1 - r / (height - 1)
        decade = lo + frac * (hi - lo)
        near = round(decade)
        is_decade = abs(decade - near) < 0.5 / (height - 1)
        axis = f"1e{near:<3}" if is_decade else "     "
        lines.append(f"{axis}|" + "".join(row))
    lines.append("     +" + "-" * (len(xs) * width_per_point))
    ticks = "      "
    for x in xs:
        ticks += str(x).center(width_per_point)
    lines.append(ticks)
    legend = "      " + "   ".join(f"{label[0].upper()}={label}"
                                   for label in series)
    lines.append(legend)
    return "\n".join(lines)


def stacked_bar(fractions: Sequence[float], width: int = 50) -> str:
    """One horizontal stacked bar; ``fractions`` are absolute widths
    relative to the full bar (their sum may be < or > 1)."""
    out = []
    for i, frac in enumerate(fractions):
        out.append(STACK_CHARS[i % len(STACK_CHARS)]
                   * max(0, round(frac * width)))
    return "".join(out)


def stacked_bar_chart(rows: Sequence[tuple[str, Sequence[float]]],
                      categories: Sequence[str], title: str = "",
                      width: int = 50) -> str:
    """Render labelled stacked bars (Figure 6/7 style).

    ``rows`` are ``(label, fractions)`` with fractions normalized to the
    chart's reference total (1.0 = full width).
    """
    label_w = max((len(label) for label, _ in rows), default=0)
    lines = [title, "=" * max(len(title), 1)] if title else []
    for label, fractions in rows:
        bar = stacked_bar(fractions, width)
        total = sum(fractions)
        lines.append(f"{label.rjust(label_w)} |{bar.ljust(width)}| "
                     f"{total:.2f}")
    legend = "  ".join(f"{STACK_CHARS[i % len(STACK_CHARS)]}={cat}"
                       for i, cat in enumerate(categories))
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def fig5_chart(cycles_per_barrier: Mapping[str, Mapping[int, float]]
               ) -> str:
    """Figure 5 as an ASCII log-scale chart."""
    return log_chart(
        {impl.upper(): dict(series)
         for impl, series in cycles_per_barrier.items()},
        title="Figure 5 (log scale): avg cycles per barrier vs cores")


def fig6_chart(comparisons) -> str:
    """Figure 6 as stacked bars (one DSW + one GL bar per benchmark)."""
    from .breakdown import FIG6_ORDER
    rows = []
    for name, comp in comparisons.items():
        base_total = comp.baseline.total
        for label, bd in (("DSW", comp.baseline), ("GL", comp.treated)):
            fracs = bd.normalized_to(base_total)
            rows.append((f"{name}/{label}",
                         [fracs[cat] for cat in FIG6_ORDER]))
    return stacked_bar_chart(
        rows, [c.value for c in FIG6_ORDER],
        title="Figure 6: normalized execution time (DSW total = 1.0)")


def fig7_chart(comparisons) -> str:
    """Figure 7 as stacked bars."""
    from .traffic import FIG7_ORDER
    rows = []
    for name, comp in comparisons.items():
        base_total = comp.baseline.total
        for label, tr in (("DSW", comp.baseline), ("GL", comp.treated)):
            fracs = tr.normalized_to(base_total)
            rows.append((f"{name}/{label}",
                         [fracs[cat] for cat in FIG7_ORDER]))
    return stacked_bar_chart(
        rows, [c.value for c in FIG7_ORDER],
        title="Figure 7: normalized network messages (DSW total = 1.0)")
