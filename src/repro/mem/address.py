"""Address arithmetic, home mapping and a simple data-segment allocator.

Addresses are plain byte addresses.  Words are 8 bytes; cache lines are
``line_bytes`` (64 by default).  A line's *home tile* -- the tile whose L2
bank and directory slice own it -- is determined by line-interleaving across
tiles, which is what tiled CMPs with shared distributed L2 (including the
paper's Sim-PowerCMP model) commonly do.
"""

from __future__ import annotations

from ..common.errors import ConfigError

WORD_BYTES = 8


class AddressMap:
    """Line/word/home arithmetic for a chip with *num_tiles* tiles."""

    def __init__(self, num_tiles: int, line_bytes: int = 64):
        if num_tiles < 1:
            raise ConfigError("num_tiles must be >= 1")
        if line_bytes < WORD_BYTES or line_bytes % WORD_BYTES:
            raise ConfigError("line size must be a multiple of 8 bytes")
        self.num_tiles = num_tiles
        self.line_bytes = line_bytes

    def line_of(self, addr: int) -> int:
        """Line base address containing byte *addr*."""
        return addr - (addr % self.line_bytes)

    def line_index(self, addr: int) -> int:
        return addr // self.line_bytes

    def word_of(self, addr: int) -> int:
        """Word base address containing byte *addr*."""
        return addr - (addr % WORD_BYTES)

    def home_of(self, addr: int) -> int:
        """Home tile of the line containing *addr* (line-interleaved)."""
        return self.line_index(addr) % self.num_tiles


class Allocator:
    """Bump allocator for workload/synchronization data.

    Supports line-aligned allocation and *homed* allocation (placing a line
    so that its home directory is a chosen tile), which software barriers use
    to distribute their tree nodes, and workloads use to model
    first-touch-style placement of per-core partitions.
    """

    def __init__(self, amap: AddressMap, base: int = 0x1000_0000):
        self.amap = amap
        self._next = amap.line_of(base)

    def alloc(self, nbytes: int, *, line_aligned: bool = True,
              home: int | None = None) -> int:
        """Allocate *nbytes* and return the base address."""
        if nbytes <= 0:
            raise ConfigError("allocation size must be positive")
        if line_aligned or home is not None:
            self._align_to_line()
        if home is not None:
            if not (0 <= home < self.amap.num_tiles):
                raise ConfigError(f"home tile {home} out of range")
            # Advance to the next line whose interleaved home is `home`.
            idx = self.amap.line_index(self._next)
            delta = (home - idx) % self.amap.num_tiles
            self._next += delta * self.amap.line_bytes
        addr = self._next
        self._next += nbytes
        return addr

    def alloc_words(self, nwords: int, **kw) -> int:
        return self.alloc(nwords * WORD_BYTES, **kw)

    def alloc_line(self, home: int | None = None) -> int:
        """Allocate one full, exclusive cache line (padding idiom used for
        synchronization variables to avoid false sharing)."""
        return self.alloc(self.amap.line_bytes, line_aligned=True, home=home)

    def alloc_array(self, nwords: int, *, home: int | None = None) -> int:
        """Allocate a word array starting on a line boundary."""
        return self.alloc(nwords * WORD_BYTES, line_aligned=True, home=home)

    def _align_to_line(self) -> None:
        rem = self._next % self.amap.line_bytes
        if rem:
            self._next += self.amap.line_bytes - rem
