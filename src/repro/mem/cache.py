"""Set-associative cache array with MESI line states and LRU replacement.

This is the *tag/state* array only: data values live in the functional
memory image, so the array tracks presence, coherence state and recency.
Used for both private L1s and the shared L2 banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..common.errors import SimulationError
from ..common.params import CacheConfig


class MESI(str, Enum):
    """Coherence states of a cached line."""

    I = "I"   # invalid / not present
    S = "S"   # shared, clean
    E = "E"   # exclusive, clean
    M = "M"   # modified (dirty, exclusive)

    @property
    def exclusive(self) -> bool:
        return self in (MESI.E, MESI.M)

    @property
    def valid(self) -> bool:
        return self is not MESI.I


@dataclass
class CacheLineEntry:
    line_addr: int
    state: MESI
    lru: int = 0


@dataclass(frozen=True)
class Victim:
    """An evicted line returned by :meth:`CacheArray.insert`."""

    line_addr: int
    state: MESI

    @property
    def dirty(self) -> bool:
        return self.state is MESI.M


class CacheArray:
    """Tag/state array: ``num_sets`` sets of ``assoc`` ways, true LRU."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.line_bytes = config.line_bytes
        self._sets: list[dict[int, CacheLineEntry]] = [
            {} for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def _set_of(self, line_addr: int) -> dict[int, CacheLineEntry]:
        return self._sets[(line_addr // self.line_bytes) % self.num_sets]

    def lookup(self, line_addr: int, *, touch: bool = True
               ) -> CacheLineEntry | None:
        """Return the entry for *line_addr* if valid, else None."""
        entry = self._set_of(line_addr).get(line_addr)
        if entry is None or entry.state is MESI.I:
            return None
        if touch:
            self._tick += 1
            entry.lru = self._tick
        return entry

    def probe(self, line_addr: int) -> MESI:
        """State of *line_addr* without touching LRU (I if absent)."""
        entry = self._set_of(line_addr).get(line_addr)
        return MESI.I if entry is None else entry.state

    # ------------------------------------------------------------------ #
    def insert(self, line_addr: int, state: MESI) -> Victim | None:
        """Install *line_addr* in *state*; return the victim if one was
        evicted.  Installing over an existing entry just updates it."""
        if state is MESI.I:
            raise SimulationError("cannot insert a line in state I")
        cset = self._set_of(line_addr)
        self._tick += 1
        existing = cset.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.lru = self._tick
            return None
        victim = None
        if len(cset) >= self.assoc:
            vaddr = min(cset, key=lambda a: cset[a].lru)
            ventry = cset.pop(vaddr)
            victim = Victim(vaddr, ventry.state)
            self.evictions += 1
        cset[line_addr] = CacheLineEntry(line_addr, state, self._tick)
        return victim

    def set_state(self, line_addr: int, state: MESI) -> None:
        """Change the state of a resident line (or drop it for I)."""
        cset = self._set_of(line_addr)
        if state is MESI.I:
            cset.pop(line_addr, None)
            return
        entry = cset.get(line_addr)
        if entry is None:
            raise SimulationError(
                f"set_state({state}) on absent line {line_addr:#x}")
        entry.state = state

    def invalidate(self, line_addr: int) -> MESI:
        """Drop *line_addr*; returns its prior state (I if absent)."""
        entry = self._set_of(line_addr).pop(line_addr, None)
        return MESI.I if entry is None else entry.state

    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> list[int]:
        return sorted(a for s in self._sets for a in s)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1
