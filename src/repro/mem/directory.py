"""Home-side controller: one L2 bank slice + directory slice per tile.

The protocol is home-serialized: every transition for a line is processed at
its home tile, one transaction at a time (a per-line ``busy`` flag with a
FIFO of pending requests).  Owners and sharers respond *to the home*, and
the home responds to the requester.  This costs an extra hop on
cache-to-cache transfers relative to forwarding protocols, but it is
race-free by construction, and the message mix it generates (request + data
reply + invalidations/acks/write-backs) is exactly what Figure 7 counts.

Directory state is full-map (a dict keyed by line) and persists across L2
array evictions -- i.e. the directory is conceptually backed by memory,
while the L2 tag array models on-chip residency for *timing* (an array miss
adds the 400-cycle memory fetch).  See DESIGN.md §2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from ..common.errors import ProtocolError
from ..common.params import CacheConfig, NocConfig
from ..common.stats import StatsRegistry
from ..noc.network import Network
from ..noc.packet import Message
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .address import AddressMap
from .cache import CacheArray, MESI
from .memory import MemoryController
from .protocol import category_of, size_of


class DirState(str, Enum):
    I = "I"    # no L1 holds the line
    S = "S"    # one or more read-only sharers
    EM = "EM"  # a single exclusive owner (E or M in its L1)


@dataclass
class DirEntry:
    state: DirState = DirState.I
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None
    busy: bool = False
    #: Requests waiting for the current transaction to finish.
    pending: deque = field(default_factory=deque)
    #: Continuation state of the in-flight transaction.
    trans: dict | None = None


class HomeController(Component):
    """Directory + L2 bank controller for one tile."""

    def __init__(self, engine: Engine, stats: StatsRegistry, tile: int,
                 l2cfg: CacheConfig, noc_cfg: NocConfig, network: Network,
                 memctrl: MemoryController, amap: AddressMap):
        super().__init__(engine, stats, f"dir{tile}")
        self.tile = tile
        self.l2cfg = l2cfg
        self.noc_cfg = noc_cfg
        self.network = network
        self.memctrl = memctrl
        self.amap = amap
        self.l2 = CacheArray(l2cfg)
        self.entries: dict[int, DirEntry] = {}
        #: Filled by the chip assembly: tile -> L1 controller.
        self.l1_resolver = None

    # ------------------------------------------------------------------ #
    def _entry(self, line: int) -> DirEntry:
        entry = self.entries.get(line)
        if entry is None:
            entry = self.entries[line] = DirEntry()
        return entry

    def _send(self, dst_tile: int, kind: str, line: int,
              payload_extra: dict | None = None) -> None:
        payload = {"line": line}
        if payload_extra:
            payload.update(payload_extra)
        target = self.l1_resolver(dst_tile)
        msg = Message(src=self.tile, dst=dst_tile, kind=kind,
                      category=category_of(kind),
                      size_bytes=size_of(kind, self.noc_cfg),
                      payload=payload,
                      on_delivery=target.receive)
        self.network.send(msg)

    # ------------------------------------------------------------------ #
    # Inbound dispatch
    # ------------------------------------------------------------------ #
    def receive(self, msg: Message) -> None:
        line = msg.payload["line"]
        entry = self._entry(line)
        kind = msg.kind
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.DIR_MSG,
                             msg_kind=kind, src=msg.src, line=line,
                             queued=len(entry.pending))
        if kind in ("GetS", "GetM", "PutM"):
            if self.metrics is not None:
                # Depth the request sees on arrival (0 = served directly).
                self.metrics.histogram("dir.queue_depth").record(
                    len(entry.pending))
            if entry.busy or entry.pending:
                # Queue behind the in-flight transaction (and behind any
                # already-queued requests, preserving FIFO order even across
                # the one-cycle drain turnaround).
                entry.pending.append(msg)
                self.stats.bump("dir.queued")
            else:
                self._begin(entry, msg)
        elif kind == "InvAck":
            self._on_inv_ack(entry, msg)
        elif kind == "WbData":
            self._on_wb_data(entry, msg)
        else:
            raise ProtocolError(f"home {self.tile} got unexpected {kind}")

    # ------------------------------------------------------------------ #
    # Transaction start: pay L2 access (plus memory on an array miss)
    # ------------------------------------------------------------------ #
    def _begin(self, entry: DirEntry, msg: Message) -> None:
        entry.busy = True
        line = msg.payload["line"]
        self.stats.bump(f"dir.{msg.kind.lower()}")
        hit = self.l2.lookup(line) is not None
        if hit or msg.kind == "PutM":
            # Write-backs allocate directly into the bank (full-line data).
            self.l2.record_hit()
            self.stats.bump("l2.hits")
            if msg.kind == "PutM":
                self.l2.insert(line, MESI.M)
            self.schedule(self.l2cfg.total_latency, self._act, entry, msg)
        else:
            self.l2.record_miss()
            self.stats.bump("l2.misses")
            self.schedule(self.l2cfg.total_latency, self._fetch, entry, msg)

    def _fetch(self, entry: DirEntry, msg: Message) -> None:
        line = msg.payload["line"]
        self.memctrl.access(line, lambda: self._fill_l2(entry, msg))

    def _fill_l2(self, entry: DirEntry, msg: Message) -> None:
        # Silent array eviction: directory state for the victim is retained
        # (memory-backed full-map directory).
        self.l2.insert(msg.payload["line"], MESI.E)
        self._act(entry, msg)

    # ------------------------------------------------------------------ #
    # Directory actions
    # ------------------------------------------------------------------ #
    def _act(self, entry: DirEntry, msg: Message) -> None:
        if msg.kind == "GetS":
            self._act_gets(entry, msg)
        elif msg.kind == "GetM":
            self._act_getm(entry, msg)
        else:
            self._act_putm(entry, msg)

    def _act_gets(self, entry: DirEntry, msg: Message) -> None:
        line, req = msg.payload["line"], msg.src
        if entry.state is DirState.I:
            entry.state = DirState.EM
            entry.owner = req
            self._send(req, "DataE", line)
            self._finish(entry)
        elif entry.state is DirState.S:
            entry.sharers.add(req)
            self._send(req, "DataS", line)
            self._finish(entry)
        else:  # EM
            owner = entry.owner
            if owner == req:
                # Lost-copy refetch (crossing with a write-back): regrant.
                self.stats.bump("dir.refetch")
                self._send(req, "DataE", line)
                self._finish(entry)
            else:
                entry.trans = {"op": "GetS", "req": req, "prev_owner": owner}
                self._send(owner, "FwdGetS", line)

    def _act_getm(self, entry: DirEntry, msg: Message) -> None:
        line, req = msg.payload["line"], msg.src
        if entry.state is DirState.I:
            entry.state = DirState.EM
            entry.owner = req
            self._send(req, "DataE", line)
            self._finish(entry)
        elif entry.state is DirState.EM:
            owner = entry.owner
            if owner == req:
                # Upgrade race remnant: requester already owns it.
                self._send(req, "GrantM", line)
                self._finish(entry)
            else:
                entry.trans = {"op": "GetM", "req": req, "prev_owner": owner}
                self._send(owner, "FwdInv", line)
        else:  # S
            targets = entry.sharers - {req}
            was_sharer = req in entry.sharers
            if not targets:
                entry.state = DirState.EM
                entry.owner = req
                entry.sharers.clear()
                self._send(req, "GrantM" if was_sharer else "DataE", line)
                self._finish(entry)
            else:
                entry.trans = {"op": "GetM", "req": req,
                               "acks": len(targets),
                               "was_sharer": was_sharer}
                for t in sorted(targets):
                    self._send(t, "Inv", line)

    def _act_putm(self, entry: DirEntry, msg: Message) -> None:
        line, src = msg.payload["line"], msg.src
        if entry.state is DirState.EM and entry.owner == src:
            entry.state = DirState.I
            entry.owner = None
            self.stats.bump("dir.putm_fresh")
        else:
            # Stale write-back from a previous owner that crossed with a
            # forward; the forward response already carried the data.
            self.stats.bump("dir.putm_stale")
        self._send(src, "PutAck", line)
        self._finish(entry)

    # ------------------------------------------------------------------ #
    # Transaction continuations
    # ------------------------------------------------------------------ #
    def _on_inv_ack(self, entry: DirEntry, msg: Message) -> None:
        t = entry.trans
        if not (entry.busy and t and t["op"] == "GetM" and "acks" in t):
            raise ProtocolError(
                f"home {self.tile}: unexpected InvAck for "
                f"{msg.payload['line']:#x}")
        t["acks"] -= 1
        if t["acks"] == 0:
            line, req = msg.payload["line"], t["req"]
            entry.state = DirState.EM
            entry.owner = req
            entry.sharers.clear()
            self._send(req, "GrantM" if t["was_sharer"] else "DataE", line)
            self._finish(entry)

    def _on_wb_data(self, entry: DirEntry, msg: Message) -> None:
        t = entry.trans
        if not (entry.busy and t and t["op"] in ("GetS", "GetM")):
            raise ProtocolError(
                f"home {self.tile}: unexpected WbData for "
                f"{msg.payload['line']:#x}")
        line, req = msg.payload["line"], t["req"]
        self.l2.insert(line, MESI.M)
        if t["op"] == "GetS":
            entry.state = DirState.S
            entry.sharers = {t["prev_owner"], req}
            entry.owner = None
            self._send(req, "DataS", line)
        else:  # GetM
            entry.state = DirState.EM
            entry.owner = req
            self._send(req, "DataE", line)
        self._finish(entry)

    # ------------------------------------------------------------------ #
    def _finish(self, entry: DirEntry) -> None:
        entry.busy = False
        entry.trans = None
        if entry.pending:
            # One-cycle turnaround before the next queued transaction.
            self.schedule(1, self._drain, entry)

    def _drain(self, entry: DirEntry) -> None:
        if not entry.busy and entry.pending:
            self._begin(entry, entry.pending.popleft())

    # ------------------------------------------------------------------ #
    # Introspection (tests)
    # ------------------------------------------------------------------ #
    def dir_state(self, line: int) -> tuple[DirState, frozenset[int],
                                            int | None]:
        entry = self.entries.get(line)
        if entry is None:
            return DirState.I, frozenset(), None
        return entry.state, frozenset(entry.sharers), entry.owner
