"""Functional memory image (timing-first simulation split).

All architectural *values* live here, updated at operation commit time; the
timing model (caches, directory, NoC) decides *when* operations commit and
how much traffic they generate, but can never corrupt values.  This is the
standard "timing-first" organization used by multiprocessor simulators, and
it guarantees the synchronization algorithms under study are value-correct
by construction (see DESIGN.md section 5).
"""

from __future__ import annotations

from .address import WORD_BYTES, AddressMap


class FunctionalMemory:
    """Sparse word-granular memory; uninitialized words read as zero."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load(self, addr: int) -> int:
        """Read the word containing byte *addr*."""
        return self._words.get(addr - addr % WORD_BYTES, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the word containing byte *addr*."""
        self._words[addr - addr % WORD_BYTES] = value

    def rmw(self, addr: int, fn) -> tuple[int, int]:
        """Atomically apply ``fn(old) -> new``; returns ``(old, new)``.

        Atomicity is trivial because the simulation engine is
        single-threaded; the coherence protocol provides the ordering.
        """
        key = addr - addr % WORD_BYTES
        old = self._words.get(key, 0)
        new = fn(old)
        self._words[key] = new
        return old, new

    def load_array(self, base: int, nwords: int) -> list[int]:
        return [self.load(base + i * WORD_BYTES) for i in range(nwords)]

    def store_array(self, base: int, values) -> None:
        for i, v in enumerate(values):
            self.store(base + i * WORD_BYTES, v)

    def words_in_line(self, amap: AddressMap, line_addr: int) -> list[int]:
        """Values of all words in one cache line (debug/inspection)."""
        n = amap.line_bytes // WORD_BYTES
        return self.load_array(amap.line_of(line_addr), n)
