"""Private L1 cache controller.

Serves the core's loads, stores and atomics; talks to the home directory
over the NoC; supports *line watches* -- callbacks fired whenever the line
is invalidated, downgraded away, or evicted -- which the core uses to
implement event-driven busy-wait spinning (a spinning core costs zero
simulator events and zero network traffic while its copy stays valid,
exactly like real test&test&set spinning, and is woken by the invalidation
the releasing store causes).

Write-backs keep the evicted line's data in a write-back buffer until the
home acknowledges (``PutAck``); a forward that crosses with the write-back
is answered from that buffer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from ..common.errors import ProtocolError
from ..common.params import CacheConfig, NocConfig
from ..common.stats import StatsRegistry
from ..noc.network import Network
from ..noc.packet import Message
from ..obs import events as obs_ev
from ..sim.component import Component
from ..sim.engine import Engine
from .address import AddressMap
from .cache import CacheArray, MESI, Victim
from .funcmem import FunctionalMemory
from .mshr import MshrTable, Waiter
from .protocol import category_of, size_of


class L1Cache(Component):
    """Private L1 data cache for one core."""

    def __init__(self, engine: Engine, stats: StatsRegistry, tile: int,
                 l1cfg: CacheConfig, noc_cfg: NocConfig, network: Network,
                 funcmem: FunctionalMemory, amap: AddressMap):
        super().__init__(engine, stats, f"l1_{tile}")
        self.tile = tile
        self.cfg = l1cfg
        self.noc_cfg = noc_cfg
        self.network = network
        self.funcmem = funcmem
        self.amap = amap
        self.array = CacheArray(l1cfg)
        self.mshr = MshrTable()
        #: line -> list of pending write-back records.
        self._wb_buffer: defaultdict[int, list[dict]] = defaultdict(list)
        #: line -> callbacks fired on invalidate/evict.
        self._watchers: defaultdict[int, list[Callable[[], None]]] = \
            defaultdict(list)
        #: Filled by the chip assembly: tile -> HomeController.
        self.home_resolver = None

    # ------------------------------------------------------------------ #
    # Core-facing API.  Callbacks run when the access commits.
    # ------------------------------------------------------------------ #
    def load(self, addr: int, callback: Callable[[int], None]) -> None:
        """Read the word at *addr*; ``callback(value)`` on completion."""
        self.schedule(self.cfg.total_latency, self._do_load, addr, callback)

    def store(self, addr: int, value: int,
              callback: Callable[[], None]) -> None:
        """Write *value* to *addr*; ``callback()`` on commit."""
        self.schedule(self.cfg.total_latency, self._do_store, addr, value,
                      callback)

    def atomic(self, addr: int, fn: Callable[[int], int],
               callback: Callable[[int], None]) -> None:
        """Atomic read-modify-write; ``callback(old_value)`` on commit."""
        self.schedule(self.cfg.total_latency, self._do_atomic, addr, fn,
                      callback)

    def watch(self, addr: int, callback: Callable[[], None]) -> None:
        """Fire *callback* once, the next time the line holding *addr* is
        invalidated, downgraded from exclusive, or evicted."""
        self._watchers[self.amap.line_of(addr)].append(callback)

    # ------------------------------------------------------------------ #
    def _do_load(self, addr: int, callback) -> None:
        line = self.amap.line_of(addr)
        entry = self.array.lookup(line)
        if entry is not None:
            self.array.record_hit()
            self.stats.bump("l1.load_hits")
            callback(self.funcmem.load(addr))
        else:
            self.array.record_miss()
            self.stats.bump("l1.load_misses")
            self._miss(line, "S",
                       lambda: self._do_load_retry(addr, callback))

    def _do_load_retry(self, addr: int, callback) -> None:
        # After a fill, the line is normally resident; a capacity conflict
        # in between simply re-runs the access path.
        self._do_load(addr, callback)

    def _do_store(self, addr: int, value: int, callback) -> None:
        line = self.amap.line_of(addr)
        entry = self.array.lookup(line)
        if entry is not None and entry.state.exclusive:
            entry.state = MESI.M
            self.array.record_hit()
            self.stats.bump("l1.store_hits")
            self.funcmem.store(addr, value)
            self._fire_watchers(line)
            callback()
        else:
            self.array.record_miss()
            self.stats.bump("l1.store_misses"
                            if entry is None else "l1.store_upgrades")
            self._miss(line, "M",
                       lambda: self._do_store(addr, value, callback))

    def _do_atomic(self, addr: int, fn, callback) -> None:
        line = self.amap.line_of(addr)
        entry = self.array.lookup(line)
        if entry is not None and entry.state.exclusive:
            entry.state = MESI.M
            self.stats.bump("l1.atomic_hits")
            old, _new = self.funcmem.rmw(addr, fn)
            self._fire_watchers(line)
            callback(old)
        else:
            self.stats.bump("l1.atomic_misses")
            self._miss(line, "M",
                       lambda: self._do_atomic(addr, fn, callback))

    # ------------------------------------------------------------------ #
    def _miss(self, line: int, need: str, retry: Callable[[], None]) -> None:
        pending = self.mshr.get(line)
        if pending is not None:
            self.mshr.merge(line, Waiter(need, retry))
            return
        entry = self.mshr.allocate(line, need, self.now)
        entry.waiters.append(Waiter(need, retry))
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.L1_MISS,
                             line=line, need=need,
                             outstanding=self.mshr.pending())
        if self.metrics is not None:
            self.metrics.histogram("l1.mshr_occupancy").record(
                self.mshr.pending())
        self._send_home(line, "GetS" if need == "S" else "GetM")

    def _send_home(self, line: int, kind: str,
                   payload_extra: dict | None = None) -> None:
        home_tile = self.amap.home_of(line)
        target = self.home_resolver(home_tile)
        payload = {"line": line}
        if payload_extra:
            payload.update(payload_extra)
        msg = Message(src=self.tile, dst=home_tile, kind=kind,
                      category=category_of(kind),
                      size_bytes=size_of(kind, self.noc_cfg),
                      payload=payload,
                      on_delivery=target.receive)
        self.network.send(msg)

    # ------------------------------------------------------------------ #
    # Inbound from the home
    # ------------------------------------------------------------------ #
    def receive(self, msg: Message) -> None:
        line = msg.payload["line"]
        kind = msg.kind
        if kind in ("DataS", "DataE", "GrantM"):
            self._on_fill(line, kind)
        elif kind == "Inv":
            self._on_inv(line)
        elif kind == "FwdGetS":
            self._on_fwd_gets(line)
        elif kind == "FwdInv":
            self._on_fwd_inv(line)
        elif kind == "PutAck":
            self._on_put_ack(line)
        else:
            raise ProtocolError(f"L1 {self.tile} got unexpected {kind}")

    def _on_fill(self, line: int, kind: str) -> None:
        entry = self.mshr.complete(line)
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.L1_FILL,
                             line=line, msg_kind=kind,
                             wait=self.now - entry.issue_time)
        if self.metrics is not None:
            self.metrics.histogram("l1.miss_latency").record(
                self.now - entry.issue_time)
        if entry.requested == "M" or kind == "GrantM":
            state = MESI.M
        elif kind == "DataE":
            state = MESI.E
        else:
            state = MESI.S
        victim = self.array.insert(line, state)
        if victim is not None:
            self._evict(victim)
        # All waiters (including the original requester) retry their access;
        # the common case hits immediately in the just-installed line.
        for waiter in entry.waiters:
            self.schedule(0, waiter.callback)

    def _on_inv(self, line: int) -> None:
        # A silent S-eviction may have already dropped the line; ack anyway.
        self.array.invalidate(line)
        self.stats.bump("l1.invalidations")
        self.schedule(self.cfg.latency, self._send_home, line, "InvAck")
        self._fire_watchers(line)

    def _on_fwd_gets(self, line: int) -> None:
        entry = self.array.lookup(line, touch=False)
        if entry is not None:
            entry.state = MESI.S
        else:
            self._mark_wb_supplied(line, "FwdGetS")
        self.schedule(self.cfg.latency, self._send_home, line, "WbData")

    def _on_fwd_inv(self, line: int) -> None:
        prior = self.array.invalidate(line)
        if prior is MESI.I:
            self._mark_wb_supplied(line, "FwdInv")
        self.stats.bump("l1.invalidations")
        self.schedule(self.cfg.latency, self._send_home, line, "WbData")
        self._fire_watchers(line)

    def _on_put_ack(self, line: int) -> None:
        records = self._wb_buffer.get(line)
        if not records:
            raise ProtocolError(
                f"L1 {self.tile}: PutAck with empty WB buffer "
                f"for {line:#x}")
        records.pop(0)
        if not records:
            del self._wb_buffer[line]

    def _mark_wb_supplied(self, line: int, cause: str) -> None:
        records = self._wb_buffer.get(line)
        if not records:
            raise ProtocolError(
                f"L1 {self.tile}: {cause} for absent line {line:#x} "
                f"with no write-back in flight")
        records[0]["supplied"] = True

    # ------------------------------------------------------------------ #
    def _evict(self, victim: Victim) -> None:
        self.stats.bump("l1.evictions")
        if self.tracer.enabled:
            self.tracer.emit(self.now, self.name, obs_ev.L1_EVICT,
                             line=victim.line_addr,
                             state=victim.state.name)
        # Wake watchers so a spinner never sleeps on a line the directory
        # no longer associates with us (lost-wakeup prevention).
        self._fire_watchers(victim.line_addr)
        if victim.state.exclusive:
            # E and M evictions both write back (E write-backs carry clean
            # data; this keeps the directory exact for exclusive lines).
            self._wb_buffer[victim.line_addr].append({"supplied": False})
            self._send_home(victim.line_addr, "PutM")
            self.stats.bump("l1.writebacks")
        # S evictions are silent.

    def _fire_watchers(self, line: int) -> None:
        watchers = self._watchers.pop(line, None)
        if watchers:
            for cb in watchers:
                self.schedule(0, cb)

    # ------------------------------------------------------------------ #
    # Introspection (tests)
    # ------------------------------------------------------------------ #
    def state_of(self, addr: int) -> MESI:
        return self.array.probe(self.amap.line_of(addr))
