"""Miss Status Holding Registers.

One outstanding transaction per line; later accesses to the same line merge
as waiters.  A waiter records the access level it needs ('S' for loads, 'M'
for stores/atomics); on fill, waiters whose need is satisfied by the granted
state complete, the rest trigger a follow-up upgrade request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Waiter:
    need: str                      # 'S' or 'M'
    callback: Callable[[], None]   # resume the stalled operation


@dataclass
class MshrEntry:
    line_addr: int
    requested: str                 # level requested from the home ('S'/'M')
    waiters: list[Waiter] = field(default_factory=list)
    issue_time: int = 0


class MshrTable:
    """MSHR file for one L1 (unbounded entries, realistic merge logic)."""

    def __init__(self) -> None:
        self._entries: dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0

    def get(self, line_addr: int) -> MshrEntry | None:
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, requested: str,
                 issue_time: int) -> MshrEntry:
        assert line_addr not in self._entries, "line already pending"
        entry = MshrEntry(line_addr, requested, issue_time=issue_time)
        self._entries[line_addr] = entry
        self.allocations += 1
        return entry

    def merge(self, line_addr: int, waiter: Waiter) -> None:
        self._entries[line_addr].waiters.append(waiter)
        self.merges += 1

    def complete(self, line_addr: int) -> MshrEntry:
        """Remove and return the entry (fill arrived)."""
        return self._entries.pop(line_addr)

    def pending(self) -> int:
        return len(self._entries)

    def outstanding_lines(self) -> list[int]:
        return sorted(self._entries)
