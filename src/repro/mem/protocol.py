"""Coherence protocol message vocabulary.

The protocol is a home-serialized MESI directory protocol (DESIGN.md §5.3):

* L1 -> home requests: ``GetS`` (read), ``GetM`` (write/upgrade),
  ``PutM`` (dirty/exclusive write-back).
* home -> L1 grants:  ``DataS`` (shared copy), ``DataE`` (exclusive copy),
  ``GrantM`` (ownership without data, for upgrades).
* home -> L1 probes:  ``Inv`` (invalidate a sharer), ``FwdGetS`` (downgrade
  the owner), ``FwdInv`` (invalidate the owner), ``PutAck`` (write-back
  acknowledged).
* L1 -> home responses: ``InvAck``, ``WbData`` (owner's data).

Figure-7 accounting: requests are *Request*; data/ownership grants are
*Reply*; everything else (probes, acks, write-backs) is *Coherence*.
"""

from __future__ import annotations

from ..common.errors import ProtocolError
from ..common.params import NocConfig
from ..common.stats import MsgCat

# kind -> (category, is_data_sized)
_KINDS: dict[str, tuple[MsgCat, bool]] = {
    "GetS": (MsgCat.REQUEST, False),
    "GetM": (MsgCat.REQUEST, False),
    "DataS": (MsgCat.REPLY, True),
    "DataE": (MsgCat.REPLY, True),
    "GrantM": (MsgCat.REPLY, False),
    "Inv": (MsgCat.COHERENCE, False),
    "InvAck": (MsgCat.COHERENCE, False),
    "FwdGetS": (MsgCat.COHERENCE, False),
    "FwdInv": (MsgCat.COHERENCE, False),
    "WbData": (MsgCat.COHERENCE, True),
    "PutM": (MsgCat.COHERENCE, True),
    "PutAck": (MsgCat.COHERENCE, False),
}


def category_of(kind: str) -> MsgCat:
    try:
        return _KINDS[kind][0]
    except KeyError:
        raise ProtocolError(f"unknown message kind {kind!r}") from None


def size_of(kind: str, noc: NocConfig) -> int:
    try:
        _cat, is_data = _KINDS[kind]
    except KeyError:
        raise ProtocolError(f"unknown message kind {kind!r}") from None
    return noc.data_msg_bytes if is_data else noc.ctrl_msg_bytes


ALL_KINDS = tuple(_KINDS)
