"""Off-chip memory controller.

Fixed-latency (Table 1: 400 cycles) with optional bank-level serialization:
each of ``num_banks`` banks services one access at a time, so bursts queue.
The paper's configuration does not specify banking, so the default keeps a
single unlimited-bandwidth port; ablations can enable banking.
"""

from __future__ import annotations

from typing import Callable

from ..common.stats import StatsRegistry
from ..sim.component import Component
from ..sim.engine import Engine


class MemoryController(Component):
    """DRAM access timing for one tile's memory port."""

    def __init__(self, engine: Engine, stats: StatsRegistry, tile: int,
                 latency: int, num_banks: int = 0):
        super().__init__(engine, stats, f"mem{tile}")
        self.tile = tile
        self.latency = latency
        #: 0 disables banking (unlimited bandwidth).
        self.num_banks = num_banks
        self._bank_free: list[int] = [0] * max(num_banks, 0)
        self.accesses = 0

    def access(self, line_addr: int, callback: Callable[[], None]) -> None:
        """Schedule *callback* after the memory access completes."""
        self.accesses += 1
        self.stats.bump("mem.accesses")
        if self.num_banks:
            bank = (line_addr // 64) % self.num_banks
            start = max(self.now, self._bank_free[bank])
            finish = start + self.latency
            self._bank_free[bank] = finish
            self.engine.schedule_at(finish, callback)
        else:
            self.schedule(self.latency, callback)
