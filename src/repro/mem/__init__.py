"""Memory hierarchy: functional memory, caches, directory coherence."""

from .address import WORD_BYTES, AddressMap, Allocator
from .cache import CacheArray, CacheLineEntry, MESI, Victim
from .directory import DirState, HomeController
from .funcmem import FunctionalMemory
from .l1 import L1Cache
from .memory import MemoryController
from .mshr import MshrEntry, MshrTable, Waiter
from .protocol import ALL_KINDS, category_of, size_of

__all__ = [
    "WORD_BYTES", "AddressMap", "Allocator",
    "CacheArray", "CacheLineEntry", "MESI", "Victim",
    "DirState", "HomeController",
    "FunctionalMemory",
    "L1Cache",
    "MemoryController",
    "MshrEntry", "MshrTable", "Waiter",
    "ALL_KINDS", "category_of", "size_of",
]
