"""Experiment drivers regenerating every table and figure of the paper."""

from .ablations import (
    ComputeBarrierWorkload,
    SweepResult,
    contention_ablation,
    csw_variant_ablation,
    dsw_arity_sweep,
    entry_overhead_sweep,
    hierarchical_latency,
    noc_model_ablation,
    period_sweep,
)
from .collectives_exp import CollectivesResult, run_collectives
from .dse_exp import (DseCrossoverResult, crossover_space,
                      run_dse_crossover)
from .energy_exp import EnergyResult, run_energy
from .integrity import (IntegrityResult, integrity_config,
                        run_integrity)
from .fig5 import DEFAULT_CORE_COUNTS, Fig5Result, run_fig5
from .fig6 import Fig6Result, default_fig6_workloads, run_fig6
from .fig7 import Fig7Result, run_fig6_and_fig7, run_fig7
from .resilience import (RecoveryResult, ResilienceResult,
                         recovery_config, resilience_config,
                         run_recovery, run_resilience)
from .runner import (Comparison, compare, compare_many, make_spec,
                     paper_config, run_benchmark, run_many)
from .sensitivity import (gl_is_platform_insensitive, l2_latency_sweep,
                          memory_latency_sweep, router_latency_sweep)
from .software_barriers import ShootoutResult, run_shootout
from .stages import StagesResult, decompose, run_stages
from .table1 import matches_paper, run_table1
from .table2 import Table2Result, default_table2_workloads, run_table2

__all__ = [
    "ComputeBarrierWorkload", "SweepResult", "contention_ablation",
    "csw_variant_ablation", "dsw_arity_sweep", "entry_overhead_sweep",
    "hierarchical_latency", "noc_model_ablation", "period_sweep",
    "DEFAULT_CORE_COUNTS", "Fig5Result", "run_fig5",
    "Fig6Result", "default_fig6_workloads", "run_fig6",
    "Fig7Result", "run_fig6_and_fig7", "run_fig7",
    "Comparison", "compare", "compare_many", "make_spec",
    "paper_config", "run_benchmark", "run_many",
    "matches_paper", "run_table1",
    "Table2Result", "default_table2_workloads", "run_table2",
    "CollectivesResult", "run_collectives",
    "DseCrossoverResult", "crossover_space", "run_dse_crossover",
    "EnergyResult", "run_energy",
    "StagesResult", "decompose", "run_stages",
    "gl_is_platform_insensitive", "l2_latency_sweep",
    "memory_latency_sweep", "router_latency_sweep",
    "ShootoutResult", "run_shootout",
    "ResilienceResult", "resilience_config", "run_resilience",
    "RecoveryResult", "recovery_config", "run_recovery",
    "IntegrityResult", "integrity_config", "run_integrity",
]
