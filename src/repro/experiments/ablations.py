"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures to probe *why* the results hold:

* **Barrier-period sweep** -- the paper's central explanation for the
  kernel/application split is barrier period: vary the compute between
  barriers and watch GL's benefit shrink as the period grows.
* **Entry-overhead sweep** -- the paper notes 13 observed vs 4 theoretical
  cycles; sweep the library overhead from 0 (pure hardware) upward.
* **Hierarchical vs flat** -- the future-work extension: barrier latency
  for meshes beyond 7x7 using clustered G-line networks.
* **DSW tree arity** -- is binary the right combining-tree fan-in?
* **NoC contention on/off** -- how much of the software barriers' cost is
  queueing rather than latency.
* **CSW variant** -- lock-protected counter vs single fetch&add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..analysis.report import render_table
from ..chip.cmp import CMP
from ..common.params import CMPConfig, GLineConfig
from ..cpu import isa
from ..sync.dsw import CombiningTreeBarrier
from ..workloads.base import Workload, WorkloadInfo
from ..workloads.synthetic import SyntheticBarrierWorkload
from .runner import make_spec, run_many


class ComputeBarrierWorkload(Workload):
    """Barriers separated by a fixed compute grain (period sweep)."""

    name = "PeriodSweep"

    def __init__(self, work_cycles: int, iterations: int = 50):
        self.work_cycles = work_cycles
        self.iterations = iterations

    def programs(self, chip) -> list[Generator]:
        def program() -> Generator:
            for _ in range(self.iterations):
                yield isa.Compute(self.work_cycles)
                yield isa.BarrierOp()

        return [program() for _ in range(chip.num_cores)]

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(self.name, f"work={self.work_cycles}",
                            self.iterations, 0, 0)


# ---------------------------------------------------------------------- #
@dataclass
class SweepResult:
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def table(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def period_sweep(work_grains=(0, 100, 1_000, 10_000, 100_000),
                 num_cores: int = 32, iterations: int = 20) -> SweepResult:
    """GL benefit vs barrier period (the Figure-6 kernel/app split's
    mechanism)."""
    out = SweepResult(
        title="Ablation: GL speedup vs barrier period",
        headers=["Work/barrier", "DSW cycles", "GL cycles", "GL/DSW",
                 "DSW period"])
    specs = [make_spec(ComputeBarrierWorkload(work, iterations), impl,
                       num_cores)
             for work in work_grains for impl in ("dsw", "gl")]
    runs = run_many(specs)
    for i, work in enumerate(work_grains):
        dsw, gl = runs[2 * i], runs[2 * i + 1]
        out.rows.append([work, dsw.total_cycles, gl.total_cycles,
                         gl.total_cycles / dsw.total_cycles,
                         dsw.barrier_period()])
    return out


def entry_overhead_sweep(overheads=(0, 4, 8, 16, 32),
                         num_cores: int = 32,
                         iterations: int = 100) -> SweepResult:
    """Barrier cost vs library entry overhead (13 observed vs 4 ideal)."""
    out = SweepResult(
        title="Ablation: GL cycles/barrier vs library entry overhead",
        headers=["Entry overhead", "Cycles/barrier"])
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       "gl", num_cores,
                       config=CMPConfig.for_cores(num_cores).with_(
                           gline=GLineConfig(entry_overhead=overhead)))
             for overhead in overheads]
    for overhead, run in zip(overheads, run_many(specs)):
        out.rows.append([overhead,
                         run.total_cycles / run.num_barriers()])
    return out


def hierarchical_latency(core_counts=(16, 36, 49, 64, 144, 256),
                         iterations: int = 50) -> SweepResult:
    """Hardware barrier latency for growing meshes; meshes beyond 7x7
    switch to the clustered (hierarchical) G-line organization."""
    from ..common.params import mesh_dims

    out = SweepResult(
        title="Ablation: GL barrier latency vs mesh size "
              "(hierarchical beyond 7x7)",
        headers=["Cores", "Mesh", "Organization", "Cycles/barrier",
                 "G-lines"])
    configs = {n: CMPConfig.for_cores(n).with_(
        gline=GLineConfig(entry_overhead=0)) for n in core_counts}
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       "gl", n, config=configs[n]) for n in core_counts]
    runs = dict(zip(core_counts, run_many(specs)))
    for n in core_counts:
        rows, cols = mesh_dims(n)
        cfg = configs[n]
        run = runs[n]
        # Re-derive organization/wire count from a fresh context.
        from ..gline.multibarrier import build_contexts
        from ..common.stats import StatsRegistry
        from ..sim.engine import Engine
        ctx = build_contexts(Engine(), StatsRegistry(n), rows, cols,
                             cfg.gline)[0]
        organization = type(ctx).__name__
        out.rows.append([n, f"{rows}x{cols}", organization,
                         run.total_cycles / run.num_barriers(),
                         ctx.num_glines])
    return out


def dsw_arity_sweep(arities=(2, 4, 8), num_cores: int = 32,
                    iterations: int = 50) -> SweepResult:
    """Combining-tree fan-in: wider trees mean fewer levels but more
    contention per node."""
    out = SweepResult(
        title="Ablation: DSW combining-tree arity",
        headers=["Arity", "Cycles/barrier", "Messages"])
    for arity in arities:
        cfg = CMPConfig.for_cores(num_cores)
        chip = CMP(cfg, barrier="dsw")
        chip.barrier_impl = CombiningTreeBarrier(
            chip.allocator, list(range(num_cores)), arity=arity)
        for tile in chip.tiles:
            tile.core.barrier_binding = chip.barrier_impl
        run = chip.run(SyntheticBarrierWorkload(iterations=iterations))
        out.rows.append([arity, run.total_cycles / run.num_barriers(),
                         run.total_messages()])
    return out


def contention_ablation(num_cores: int = 32,
                        iterations: int = 50) -> SweepResult:
    """Software-barrier cost with and without NoC link contention."""
    out = SweepResult(
        title="Ablation: NoC link contention contribution",
        headers=["Impl", "Contention", "Cycles/barrier"])
    points = [(impl, contention) for impl in ("csw", "dsw")
              for contention in (True, False)]
    specs = []
    for impl, contention in points:
        cfg = CMPConfig.for_cores(num_cores)
        cfg = cfg.with_(noc=cfg.noc.__class__(
            rows=cfg.noc.rows, cols=cfg.noc.cols,
            model_contention=contention))
        specs.append(make_spec(
            SyntheticBarrierWorkload(iterations=iterations), impl,
            num_cores, config=cfg))
    for (impl, contention), run in zip(points, run_many(specs)):
        out.rows.append([impl.upper(), "on" if contention else "off",
                         run.total_cycles / run.num_barriers()])
    return out


def noc_model_ablation(num_cores: int = 16,
                       iterations: int = 30) -> SweepResult:
    """Hop-latency vs flit-accurate virtual cut-through NoC model: the
    paper's conclusions must not depend on interconnect-model fidelity."""
    from dataclasses import replace

    out = SweepResult(
        title="Ablation: NoC timing model (hop-latency vs virtual "
              "cut-through)",
        headers=["Model", "Impl", "Cycles/barrier"])
    points = [(model, impl) for model in ("hop", "vct")
              for impl in ("dsw", "gl")]
    specs = []
    for model, impl in points:
        cfg = CMPConfig.for_cores(num_cores)
        cfg = cfg.with_(noc=replace(cfg.noc, model=model))
        specs.append(make_spec(
            SyntheticBarrierWorkload(iterations=iterations), impl,
            num_cores, config=cfg))
    for (model, impl), run in zip(points, run_many(specs)):
        out.rows.append([model, impl.upper(),
                         run.total_cycles / run.num_barriers()])
    return out


def csw_variant_ablation(num_cores: int = 32,
                         iterations: int = 50) -> SweepResult:
    """Lock-protected counter vs single fetch&add for the centralized
    barrier: how much of CSW's cost is the lock?"""
    out = SweepResult(
        title="Ablation: CSW variant (lock vs fetch&add)",
        headers=["Variant", "Cycles/barrier", "Messages"])
    impls = ("csw", "csw-fa")
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       impl, num_cores) for impl in impls]
    for impl, run in zip(impls, run_many(specs)):
        out.rows.append([impl.upper(),
                         run.total_cycles / run.num_barriers(),
                         run.total_messages()])
    return out
