"""Figure 7: normalized network messages, DSW vs GL, 32 cores.

Stacked bars of main-data-network messages (Coherence / Reply / Request)
normalized to the DSW run of each benchmark, plus AVG_K / AVG_A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import paper_data
from ..analysis.report import pct, render_table
from ..analysis.traffic import Traffic, TrafficComparison, average_normalized
from .fig6 import default_fig6_workloads
from .runner import compare_many


@dataclass
class Fig7Result:
    comparisons: dict[str, TrafficComparison] = field(default_factory=dict)

    @property
    def kernel_comparisons(self) -> list[TrafficComparison]:
        return [c for n, c in self.comparisons.items()
                if n in paper_data.KERNELS]

    @property
    def app_comparisons(self) -> list[TrafficComparison]:
        return [c for n, c in self.comparisons.items()
                if n in paper_data.APPS]

    @property
    def avg_k(self) -> float:
        return average_normalized(self.kernel_comparisons)

    @property
    def avg_a(self) -> float:
        return average_normalized(self.app_comparisons)

    def table(self) -> str:
        headers = ["Benchmark", "DSW msgs", "GL msgs", "GL/DSW",
                   "reduction", "paper GL/DSW"]
        rows = []
        for name, comp in self.comparisons.items():
            rows.append([
                name,
                comp.baseline.total,
                comp.treated.total,
                comp.normalized_treated_total,
                pct(comp.traffic_reduction),
                paper_data.FIG7_GL_NORM_TRAFFIC.get(name, float("nan")),
            ])
        rows.append(["AVG_K", "", "", self.avg_k, pct(1 - self.avg_k),
                     paper_data.FIG7_AVG_K])
        rows.append(["AVG_A", "", "", self.avg_a, pct(1 - self.avg_a),
                     paper_data.FIG7_AVG_A])
        return render_table(headers, rows,
                            title="Figure 7: normalized network messages "
                                  "(DSW = 1.0), 32 cores")

    def stacked_table(self) -> str:
        headers = ["Benchmark", "Impl", "coherence", "reply", "request",
                   "total"]
        rows = []
        for name, comp in self.comparisons.items():
            for label, tr in (("DSW", comp.baseline), ("GL", comp.treated)):
                fracs = tr.normalized_to(comp.baseline.total)
                row = [name, label]
                row += [fracs[cat] for cat in fracs]
                row.append(sum(fracs.values()))
                rows.append(row)
        return render_table(headers, rows,
                            title="Figure 7 stacked categories "
                                  "(normalized to DSW total)")


def run_fig7(num_cores: int = 32, scale: float = 1.0,
             workloads: dict | None = None) -> Fig7Result:
    """Regenerate Figure 7."""
    result = Fig7Result()
    comps = compare_many(workloads or default_fig6_workloads(scale),
                         num_cores=num_cores)
    for name, comp in comps.items():
        result.comparisons[name] = TrafficComparison(
            benchmark=name,
            baseline=Traffic.from_result("DSW", comp.baseline),
            treated=Traffic.from_result("GL", comp.treated))
    return result


def run_fig6_and_fig7(num_cores: int = 32, scale: float = 1.0):
    """Run each benchmark pair once and derive both figures (cheaper than
    calling run_fig6 and run_fig7 separately)."""
    from ..analysis.breakdown import Breakdown, BreakdownComparison
    from .fig6 import Fig6Result

    fig6, fig7 = Fig6Result(), Fig7Result()
    comps = compare_many(default_fig6_workloads(scale),
                         num_cores=num_cores)
    for name, comp in comps.items():
        fig6.comparisons[name] = BreakdownComparison(
            benchmark=name,
            baseline=Breakdown.from_result("DSW", comp.baseline),
            treated=Breakdown.from_result("GL", comp.treated))
        fig7.comparisons[name] = TrafficComparison(
            benchmark=name,
            baseline=Traffic.from_result("DSW", comp.baseline),
            treated=Traffic.from_result("GL", comp.treated))
    return fig6, fig7
