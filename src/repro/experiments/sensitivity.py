"""Sensitivity studies: how robust is the paper's conclusion to the
platform parameters of Table 1?

The software barriers' cost is built from memory-system latencies, so it
moves with them; the G-line barrier depends on none of them.  These sweeps
quantify that asymmetry:

* memory latency (400 cycles in Table 1),
* per-hop router latency,
* L2 hit latency.

Each sweep reports cycles/barrier for DSW and GL on the synthetic
benchmark; GL's column should be constant.
"""

from __future__ import annotations

from dataclasses import replace

from ..common.params import CacheConfig, CMPConfig
from ..workloads.synthetic import SyntheticBarrierWorkload
from .ablations import SweepResult
from .runner import make_spec, paper_config, run_many


def _run_pairs(configs: list[CMPConfig], num_cores: int,
               iterations: int) -> list[dict[str, float]]:
    """cycles/barrier for DSW and GL under each config, as one batch."""
    impls = ("dsw", "gl")
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       impl, num_cores, config=cfg)
             for cfg in configs for impl in impls]
    runs = run_many(specs)
    return [{impl: run.total_cycles / run.num_barriers()
             for impl, run in zip(impls, runs[2 * i:2 * i + 2])}
            for i in range(len(configs))]


def memory_latency_sweep(latencies=(100, 200, 400, 800),
                         num_cores: int = 16,
                         iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs memory latency",
        headers=["Memory latency", "DSW cyc/bar", "GL cyc/bar"])
    configs = [paper_config(num_cores).with_(memory_latency=latency)
               for latency in latencies]
    for latency, pair in zip(latencies,
                             _run_pairs(configs, num_cores, iterations)):
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def router_latency_sweep(latencies=(1, 3, 6, 12), num_cores: int = 16,
                         iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs per-hop router latency",
        headers=["Router latency", "DSW cyc/bar", "GL cyc/bar"])
    base = paper_config(num_cores)
    configs = [base.with_(noc=replace(base.noc, router_latency=latency))
               for latency in latencies]
    for latency, pair in zip(latencies,
                             _run_pairs(configs, num_cores, iterations)):
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def l2_latency_sweep(latencies=(2, 6, 12, 24), num_cores: int = 16,
                     iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs L2 hit latency",
        headers=["L2 latency", "DSW cyc/bar", "GL cyc/bar"])
    base = paper_config(num_cores)
    configs = [base.with_(l2=CacheConfig(
        size_bytes=base.l2.size_bytes, assoc=base.l2.assoc,
        line_bytes=base.l2.line_bytes, latency=latency,
        extra_latency=base.l2.extra_latency)) for latency in latencies]
    for latency, pair in zip(latencies,
                             _run_pairs(configs, num_cores, iterations)):
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def gl_is_platform_insensitive(sweep: SweepResult) -> bool:
    """True if the GL column of a sweep is constant."""
    gl_values = [row[2] for row in sweep.rows]
    return len(set(gl_values)) == 1
