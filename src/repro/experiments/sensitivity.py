"""Sensitivity studies: how robust is the paper's conclusion to the
platform parameters of Table 1?

The software barriers' cost is built from memory-system latencies, so it
moves with them; the G-line barrier depends on none of them.  These sweeps
quantify that asymmetry:

* memory latency (400 cycles in Table 1),
* per-hop router latency,
* L2 hit latency.

Each sweep reports cycles/barrier for DSW and GL on the synthetic
benchmark; GL's column should be constant.
"""

from __future__ import annotations

from dataclasses import replace

from ..common.params import CacheConfig, CMPConfig, NocConfig
from ..workloads.synthetic import SyntheticBarrierWorkload
from .ablations import SweepResult
from .runner import paper_config, run_benchmark


def _run_pair(cfg: CMPConfig, num_cores: int, iterations: int):
    out = {}
    for impl in ("dsw", "gl"):
        run = run_benchmark(SyntheticBarrierWorkload(iterations=iterations),
                            impl, num_cores, config=cfg)
        out[impl] = run.total_cycles / run.num_barriers()
    return out


def memory_latency_sweep(latencies=(100, 200, 400, 800),
                         num_cores: int = 16,
                         iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs memory latency",
        headers=["Memory latency", "DSW cyc/bar", "GL cyc/bar"])
    for latency in latencies:
        cfg = paper_config(num_cores).with_(memory_latency=latency)
        pair = _run_pair(cfg, num_cores, iterations)
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def router_latency_sweep(latencies=(1, 3, 6, 12), num_cores: int = 16,
                         iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs per-hop router latency",
        headers=["Router latency", "DSW cyc/bar", "GL cyc/bar"])
    for latency in latencies:
        base = paper_config(num_cores)
        noc = replace(base.noc, router_latency=latency)
        cfg = base.with_(noc=noc)
        pair = _run_pair(cfg, num_cores, iterations)
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def l2_latency_sweep(latencies=(2, 6, 12, 24), num_cores: int = 16,
                     iterations: int = 25) -> SweepResult:
    out = SweepResult(
        title="Sensitivity: barrier cost vs L2 hit latency",
        headers=["L2 latency", "DSW cyc/bar", "GL cyc/bar"])
    for latency in latencies:
        base = paper_config(num_cores)
        l2 = CacheConfig(size_bytes=base.l2.size_bytes,
                         assoc=base.l2.assoc,
                         line_bytes=base.l2.line_bytes,
                         latency=latency,
                         extra_latency=base.l2.extra_latency)
        cfg = base.with_(l2=l2)
        pair = _run_pair(cfg, num_cores, iterations)
        out.rows.append([latency, pair["dsw"], pair["gl"]])
    return out


def gl_is_platform_insensitive(sweep: SweepResult) -> bool:
    """True if the GL column of a sweep is constant."""
    gl_values = [row[2] for row in sweep.rows]
    return len(set(gl_values)) == 1
