"""Table 2: benchmark configuration -- #barriers and barrier period.

The paper computes the barrier period as total execution cycles divided by
total barriers, under the baseline (software-barrier) configuration.  We
run every benchmark under DSW at 32 cores and report measured counts and
periods next to the paper's full-scale values, plus the scale factor of
the shipped configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..workloads import (EM3DWorkload, Kernel2Workload, Kernel3Workload,
                         Kernel6Workload, OceanWorkload,
                         SyntheticBarrierWorkload, UnstructuredWorkload)
from ..workloads.base import Workload, WorkloadInfo
from .runner import run_benchmark


def default_table2_workloads(scale: float = 1.0) -> list[Workload]:
    def s(x: int) -> int:
        return max(1, round(x * scale))

    return [
        SyntheticBarrierWorkload(iterations=s(100)),
        Kernel2Workload(iterations=s(20)),
        Kernel3Workload(iterations=s(100)),
        Kernel6Workload(n=128, iterations=s(2)),
        OceanWorkload(phases=s(6)),
        UnstructuredWorkload(phases=s(6)),
        EM3DWorkload(steps=s(4)),
    ]


@dataclass
class Table2Row:
    info: WorkloadInfo
    measured_barriers: int
    measured_period: float

    @property
    def period_ratio(self) -> float:
        """Measured / paper period (1.0 = exact match; workload scaling
        shrinks long-period applications, see DESIGN.md §6)."""
        return self.measured_period / self.info.paper_period


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Benchmark", "Input size (scaled)", "#Barriers",
                   "Period (meas.)", "#Barriers (paper)", "Period (paper)"]
        out = []
        for row in self.rows:
            out.append([
                row.info.name,
                row.info.input_size,
                row.measured_barriers,
                row.measured_period,
                row.info.paper_barriers,
                row.info.paper_period,
            ])
        return render_table(headers, out,
                            title="Table 2: benchmark configuration "
                                  "(measured under DSW, 32 cores)")

    def period_ordering(self) -> list[str]:
        """Benchmarks sorted by measured period (the shape check: the
        kernels and EM3D are fine-grain; UNSTR and OCEAN are not)."""
        return [r.info.name
                for r in sorted(self.rows, key=lambda r: r.measured_period)]


def run_table2(num_cores: int = 32, scale: float = 1.0,
               workloads: list[Workload] | None = None) -> Table2Result:
    """Regenerate Table 2."""
    result = Table2Result()
    for wl in (workloads or default_table2_workloads(scale)):
        run = run_benchmark(wl, "dsw", num_cores=num_cores)
        result.rows.append(Table2Row(
            info=wl.info(),
            measured_barriers=run.num_barriers(),
            measured_period=run.barrier_period()))
    return result
