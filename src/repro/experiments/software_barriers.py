"""Software-barrier shoot-out (extending Figure 5's baseline set).

The paper compares GL against CSW and DSW, calling the combining tree "one
of the best software approaches".  This experiment adds the other two
classic contenders -- the dissemination barrier and the tournament barrier
-- so the claim is checked rather than assumed, and GL's margin is
measured against the *best* of the four.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..workloads.synthetic import SyntheticBarrierWorkload
from .runner import run_benchmark

DEFAULT_IMPLS = ("csw", "dsw", "diss", "tour", "gl")


@dataclass
class ShootoutResult:
    core_counts: tuple[int, ...]
    impls: tuple[str, ...]
    cycles_per_barrier: dict[str, dict[int, float]] = field(
        default_factory=dict)

    def table(self) -> str:
        headers = ["Cores"] + [i.upper() for i in self.impls]
        rows = [[n] + [self.cycles_per_barrier[i][n] for i in self.impls]
                for n in self.core_counts]
        return render_table(headers, rows,
                            title="Software-barrier shoot-out: avg cycles "
                                  "per barrier")

    def best_software(self, cores: int) -> tuple[str, float]:
        """(name, cycles) of the fastest non-GL implementation."""
        candidates = [(i, self.cycles_per_barrier[i][cores])
                      for i in self.impls if i != "gl"]
        return min(candidates, key=lambda kv: kv[1])

    def gl_margin(self, cores: int) -> float:
        """Best-software cycles divided by GL cycles."""
        _name, best = self.best_software(cores)
        return best / self.cycles_per_barrier["gl"][cores]


def run_shootout(core_counts=(4, 8, 16, 32), impls=DEFAULT_IMPLS,
                 iterations: int = 40) -> ShootoutResult:
    result = ShootoutResult(core_counts=tuple(core_counts),
                            impls=tuple(impls))
    for impl in impls:
        series = {}
        for cores in core_counts:
            run = run_benchmark(SyntheticBarrierWorkload(
                iterations=iterations), impl, num_cores=cores)
            series[cores] = run.total_cycles / run.num_barriers()
        result.cycles_per_barrier[impl] = series
    return result
