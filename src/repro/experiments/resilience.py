"""Resilience sweep: GL barrier behavior under injected G-line faults.

For each fault rate, a hardened chip (watchdog + CSW failover) runs the
Figure-5 synthetic barrier workload with stuck-at faults injected on the
G-lines at the given per-line, per-active-cycle rate.  Reported per rate:
average cycles per barrier episode, injected fault counts, and the
watchdog's detections / retries / failovers -- i.e. how latency degrades
as the dedicated network decays and episodes migrate to software.

Stuck-at faults are used for the sweep because the hardened network
*contains* them in every case (watchdog timeout for stuck-at-0, overshoot
/ spurious-release detection for stuck-at-1), so every run completes.
Glitch and miscount injection remain available through
:class:`~repro.faults.FaultPlan` for targeted experiments, but a
transient that fakes a row's completion can release cores early and skew
barrier cohorts beyond what any post-hoc failover can repair -- exactly
the silent-corruption scenario real hardware would face (see
docs/fault-injection.md).

Determinism: the plan's seed derives every fault stream, and the plan is
part of the chip config, hence part of the exec cache key -- rerunning a
sweep (cold or from cache) reproduces the table byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.report import render_table
from ..common.params import CMPConfig
from ..faults import FaultPlan
from ..workloads.synthetic import SyntheticBarrierWorkload
from .runner import make_spec, paper_config, run_many

DEFAULT_RATES = (0.0, 0.0001, 0.0005, 0.002)

#: Watchdog settings used by the sweep (generous budget: many times the
#: 4-cycle ideal latency, so only genuine stalls trip it).
WATCHDOG_BUDGET = 64
WATCHDOG_RETRIES = 2


def resilience_config(num_cores: int, rate: float, seed: int,
                      failover: str = "csw") -> CMPConfig:
    """Hardened paper config with stuck-at injection at *rate*."""
    cfg = paper_config(num_cores)
    return cfg.with_(
        gline=replace(cfg.gline, watchdog_budget=WATCHDOG_BUDGET,
                      watchdog_retries=WATCHDOG_RETRIES,
                      failover_barrier=failover),
        faults=FaultPlan(seed=seed, gline_stuck_rate=rate))


@dataclass
class ResilienceResult:
    rates: tuple[float, ...]
    num_cores: int
    iterations: int
    seed: int
    #: One row dict per rate (see ``run_resilience`` for keys).
    rows: list[dict] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Stuck rate", "Cycles/barrier", "Stuck", "Detections",
                   "Retries", "Failovers", "SW arrivals"]
        body = [[f"{row['rate']:g}", row["cycles_per_barrier"],
                 row["stuck"], row["detections"], row["retries"],
                 row["failovers"], row["sw_arrivals"]]
                for row in self.rows]
        text = render_table(
            headers, body,
            title=f"Resilience: GL barrier vs G-line stuck-at fault rate "
                  f"({self.num_cores} cores, {self.iterations} iterations "
                  f"x 4 barriers, seed {self.seed})")
        total_fo = sum(row["failovers"] for row in self.rows)
        text += (f"\ntotal failovers: {total_fo}  "
                 f"(completed via software failover: "
                 f"{'yes' if total_fo else 'no'})")
        return text

    def failover_rate(self, rate: float) -> float:
        """Fraction of barrier episodes that completed via failover."""
        for row in self.rows:
            if row["rate"] == rate:
                episodes = row["barriers"] or 1
                return row["sw_arrivals"] / (episodes * self.num_cores)
        raise KeyError(f"rate {rate} not in sweep")


def run_resilience(rates=DEFAULT_RATES, num_cores: int = 16,
                   iterations: int = 40, seed: int = 1,
                   failover: str = "csw") -> ResilienceResult:
    """Sweep G-line stuck-at fault rate vs barrier latency/failovers."""
    result = ResilienceResult(rates=tuple(rates), num_cores=num_cores,
                              iterations=iterations, seed=seed)
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       "gl", num_cores=num_cores,
                       config=resilience_config(num_cores, rate, seed,
                                                failover))
             for rate in rates]
    runs = run_many(specs)
    for rate, run in zip(rates, runs):
        counters = run.stats.counters
        barriers = run.num_barriers()
        result.rows.append({
            "rate": rate,
            "cycles_per_barrier": run.total_cycles / (barriers or 1),
            "barriers": barriers,
            "stuck": counters.get("faults.gline.stuck", 0),
            "detections": counters.get("faults.watchdog.detections", 0),
            "retries": counters.get("faults.watchdog.retries", 0),
            "failovers": counters.get("faults.watchdog.failovers", 0),
            "sw_arrivals": counters.get("faults.failover.sw_arrivals", 0),
        })
    return result
