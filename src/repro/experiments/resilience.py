"""Resilience sweep: GL barrier behavior under injected G-line faults.

For each fault rate, a hardened chip (watchdog + CSW failover) runs the
Figure-5 synthetic barrier workload with stuck-at faults injected on the
G-lines at the given per-line, per-active-cycle rate.  Reported per rate:
average cycles per barrier episode, injected fault counts, and the
watchdog's detections / retries / failovers -- i.e. how latency degrades
as the dedicated network decays and episodes migrate to software.

Stuck-at faults are used for the sweep because the hardened network
*contains* them in every case (watchdog timeout for stuck-at-0, overshoot
/ spurious-release detection for stuck-at-1), so every run completes.
Glitch and miscount injection remain available through
:class:`~repro.faults.FaultPlan` for targeted experiments, but a
transient that fakes a row's completion can release cores early and skew
barrier cohorts beyond what any post-hoc failover can repair -- exactly
the silent-corruption scenario real hardware would face (see
docs/fault-injection.md).

Determinism: the plan's seed derives every fault stream, and the plan is
part of the chip config, hence part of the exec cache key -- rerunning a
sweep (cold or from cache) reproduces the table byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.report import render_table
from ..common.params import CMPConfig
from ..faults import FaultPlan
from ..workloads.synthetic import SyntheticBarrierWorkload
from .runner import make_spec, paper_config, run_many

DEFAULT_RATES = (0.0, 0.0001, 0.0005, 0.002)

#: Duty-cycle sweep for the recovery experiment: the fraction of burst
#: cycles on which an intermittent fault actually asserts.  Low duty =
#: a flaky contact that idle probes often miss (flap territory); 1.0 =
#: a solid burst that heals cleanly when its window closes.
DEFAULT_DUTIES = (0.25, 0.5, 0.75, 1.0)

#: Intermittent-burst onset rate and window used by the recovery sweep.
RECOVERY_BURST_RATE = 0.002
RECOVERY_BURST_CYCLES = (40, 160)

#: Watchdog settings used by the sweep (generous budget: many times the
#: 4-cycle ideal latency, so only genuine stalls trip it).
WATCHDOG_BUDGET = 64
WATCHDOG_RETRIES = 2


def resilience_config(num_cores: int, rate: float, seed: int,
                      failover: str = "csw") -> CMPConfig:
    """Hardened paper config with stuck-at injection at *rate*."""
    cfg = paper_config(num_cores)
    return cfg.with_(
        gline=replace(cfg.gline, watchdog_budget=WATCHDOG_BUDGET,
                      watchdog_retries=WATCHDOG_RETRIES,
                      failover_barrier=failover),
        faults=FaultPlan(seed=seed, gline_stuck_rate=rate))


@dataclass
class ResilienceResult:
    rates: tuple[float, ...]
    num_cores: int
    iterations: int
    seed: int
    #: One row dict per rate (see ``run_resilience`` for keys).
    rows: list[dict] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Stuck rate", "Cycles/barrier", "Stuck", "Detections",
                   "Retries", "Failovers", "SW arrivals"]
        body = [[f"{row['rate']:g}", row["cycles_per_barrier"],
                 row["stuck"], row["detections"], row["retries"],
                 row["failovers"], row["sw_arrivals"]]
                for row in self.rows]
        text = render_table(
            headers, body,
            title=f"Resilience: GL barrier vs G-line stuck-at fault rate "
                  f"({self.num_cores} cores, {self.iterations} iterations "
                  f"x 4 barriers, seed {self.seed})")
        total_fo = sum(row["failovers"] for row in self.rows)
        text += (f"\ntotal failovers: {total_fo}  "
                 f"(completed via software failover: "
                 f"{'yes' if total_fo else 'no'})")
        return text

    def failover_rate(self, rate: float) -> float:
        """Fraction of barrier episodes that completed via failover."""
        for row in self.rows:
            if row["rate"] == rate:
                episodes = row["barriers"] or 1
                return row["sw_arrivals"] / (episodes * self.num_cores)
        raise KeyError(f"rate {rate} not in sweep")


def run_resilience(rates=DEFAULT_RATES, num_cores: int = 16,
                   iterations: int = 40, seed: int = 1,
                   failover: str = "csw") -> ResilienceResult:
    """Sweep G-line stuck-at fault rate vs barrier latency/failovers."""
    result = ResilienceResult(rates=tuple(rates), num_cores=num_cores,
                              iterations=iterations, seed=seed)
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       "gl", num_cores=num_cores,
                       config=resilience_config(num_cores, rate, seed,
                                                failover))
             for rate in rates]
    runs = run_many(specs)
    for rate, run in zip(rates, runs):
        counters = run.stats.counters
        barriers = run.num_barriers()
        result.rows.append({
            "rate": rate,
            "cycles_per_barrier": run.total_cycles / (barriers or 1),
            "barriers": barriers,
            "stuck": counters.get("faults.gline.stuck", 0),
            "detections": counters.get("faults.watchdog.detections", 0),
            "retries": counters.get("faults.watchdog.retries", 0),
            "failovers": counters.get("faults.watchdog.failovers", 0),
            "sw_arrivals": counters.get("faults.failover.sw_arrivals", 0),
        })
    return result


# ---------------------------------------------------------------------- #
# Recovery sweep: self-healing vs intermittent-fault duty cycle
# ---------------------------------------------------------------------- #
def recovery_config(num_cores: int, duty: float, seed: int,
                    failover: str = "csw") -> CMPConfig:
    """Hardened paper config with self-healing recovery enabled and
    seeded intermittent bursts at *duty* inside their windows."""
    cfg = paper_config(num_cores)
    lo, hi = RECOVERY_BURST_CYCLES
    return cfg.with_(
        gline=replace(cfg.gline, watchdog_budget=WATCHDOG_BUDGET,
                      watchdog_retries=WATCHDOG_RETRIES,
                      failover_barrier=failover,
                      recovery_enabled=True,
                      recovery_probe_interval=16,
                      recovery_backoff_factor=2,
                      recovery_max_backoff=512,
                      recovery_probation_barriers=2,
                      recovery_max_flaps=4,
                      recovery_max_probes=8),
        faults=FaultPlan(seed=seed,
                         gline_intermittent_rate=RECOVERY_BURST_RATE,
                         gline_intermittent_min_cycles=lo,
                         gline_intermittent_max_cycles=hi,
                         gline_intermittent_duty=duty,
                         gline_intermittent_polarity=0))


@dataclass
class RecoveryResult:
    """Availability / recovery-time curves vs intermittent duty cycle."""

    duties: tuple[float, ...]
    num_cores: int
    iterations: int
    seed: int
    #: One row dict per duty (see ``run_recovery`` for keys).
    rows: list[dict] = field(default_factory=list)

    def table(self) -> str:
        headers = ["Duty", "Cycles/barrier", "Bursts", "Degrades",
                   "Readmits", "Flaps", "MTTR", "Availability", "Retired"]
        body = [[f"{row['duty']:g}", row["cycles_per_barrier"],
                 row["bursts"], row["degrades"], row["readmits"],
                 row["flaps"], f"{row['mttr']:.1f}",
                 f"{row['availability']:.4f}", row["retired"]]
                for row in self.rows]
        text = render_table(
            headers, body,
            title=f"Recovery: self-healing GL barrier vs intermittent "
                  f"fault duty cycle ({self.num_cores} cores, "
                  f"{self.iterations} iterations x 4 barriers, "
                  f"seed {self.seed})")
        total_readmits = sum(row["readmits"] for row in self.rows)
        text += (f"\ntotal re-admissions: {total_readmits}  "
                 f"(network returned to hardware barriers: "
                 f"{'yes' if total_readmits else 'no'})")
        return text


def run_recovery(duties=DEFAULT_DUTIES, num_cores: int = 16,
                 iterations: int = 40, seed: int = 1,
                 failover: str = "csw") -> RecoveryResult:
    """Sweep intermittent-fault duty cycle vs recovery behavior.

    Per duty: cycles/barrier, burst onsets, degraded spells entered,
    re-admissions, probation flaps, MTTR (mean cycles from degrade to
    re-admission, closed spells only), availability (fraction of run
    cycles the network was *not* degraded; a spell still open at run end
    is not charged), and whether the network retired permanently."""
    result = RecoveryResult(duties=tuple(duties), num_cores=num_cores,
                            iterations=iterations, seed=seed)
    specs = [make_spec(SyntheticBarrierWorkload(iterations=iterations),
                       "gl", num_cores=num_cores,
                       config=recovery_config(num_cores, duty, seed,
                                              failover))
             for duty in duties]
    runs = run_many(specs)
    for duty, run in zip(duties, runs):
        counters = run.stats.counters
        barriers = run.num_barriers()
        readmits = counters.get("faults.recovery.readmits", 0)
        repair = counters.get("faults.recovery.repair_cycles", 0)
        total = run.total_cycles or 1
        result.rows.append({
            "duty": duty,
            "cycles_per_barrier": run.total_cycles / (barriers or 1),
            "barriers": barriers,
            "bursts": counters.get("faults.gline.intermittent_onsets", 0),
            "degrades": counters.get("faults.recovery.degrades", 0),
            "readmits": readmits,
            "flaps": counters.get("faults.recovery.redegrades", 0),
            "probes": counters.get("faults.recovery.probes", 0),
            "probe_failures": counters.get(
                "faults.recovery.probe_failures", 0),
            "shadow_aborts": counters.get(
                "faults.recovery.shadow_aborts", 0),
            "mttr": repair / readmits if readmits else 0.0,
            "availability": 1.0 - repair / total,
            "retired": counters.get("faults.recovery.retired", 0),
            "sw_arrivals": counters.get("faults.failover.sw_arrivals", 0),
        })
    return result
