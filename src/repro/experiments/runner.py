"""Shared experiment plumbing: build a chip, run a workload, compare."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..chip.cmp import CMP
from ..chip.results import RunResult
from ..common.params import CMPConfig
from ..workloads.base import Workload


def paper_config(num_cores: int) -> CMPConfig:
    """Table-1 configuration as the paper *evaluated* it.

    The paper states a 6-transmitter S-CSMA bound (hence 7x7 max), yet its
    32-core evaluation mesh is 4x8 -- whose rows carry 7 slave
    transmitters -- and reports the flat single-level 13-cycle GL barrier
    there.  To reproduce the evaluation we follow the evaluation, not the
    stated bound: raise ``max_transmitters`` just enough for the chosen
    mesh to fit a single-level network.  The library default elsewhere
    remains the paper's stated 6 (and larger meshes use the hierarchical
    extension).  See DESIGN.md.
    """
    cfg = CMPConfig.for_cores(num_cores)
    need = max(cfg.noc.rows, cfg.noc.cols) - 1
    if need > cfg.gline.max_transmitters:
        cfg = cfg.with_(gline=replace(cfg.gline, max_transmitters=need))
    return cfg


def run_benchmark(workload: Workload, barrier: str, num_cores: int = 32,
                  config: CMPConfig | None = None,
                  max_events: int | None = None) -> RunResult:
    """Run *workload* on a fresh chip with the given barrier kind."""
    cfg = config or paper_config(num_cores)
    chip = CMP(cfg, barrier=barrier)
    return chip.run(workload, max_events=max_events)


@dataclass
class Comparison:
    """Paired runs of one workload under two barrier implementations."""

    workload: Workload
    baseline: RunResult
    treated: RunResult

    @property
    def time_ratio(self) -> float:
        return self.treated.total_cycles / (self.baseline.total_cycles or 1)

    @property
    def traffic_ratio(self) -> float:
        return self.treated.total_messages() / \
            (self.baseline.total_messages() or 1)


def compare(workload: Workload, num_cores: int = 32,
            baseline: str = "dsw", treated: str = "gl",
            config: CMPConfig | None = None) -> Comparison:
    """Run *workload* under *baseline* and *treated* barriers."""
    return Comparison(
        workload=workload,
        baseline=run_benchmark(workload, baseline, num_cores, config),
        treated=run_benchmark(workload, treated, num_cores, config),
    )
