"""Shared experiment plumbing: build a chip, run a workload, compare.

Every benchmark run funnels through :func:`run_benchmark` (or the batch
helpers :func:`run_many` / :func:`compare_many`), which route through the
ambient :class:`repro.exec.ParallelRunner`.  By default that executor is
sequential and uncached -- identical behavior to running the chip
directly -- but the CLI's ``--jobs``/``--cache-dir`` flags (or a
``use_executor`` block) turn the same call sites into cache-aware
parallel fan-out without the drivers changing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..chip.cmp import CMP
from ..chip.results import RunResult
from ..common.params import CMPConfig
from ..exec.parallel import current_executor
from ..exec.spec import RunSpec, SpecError
from ..workloads.base import Workload


def paper_config(num_cores: int) -> CMPConfig:
    """Table-1 configuration as the paper *evaluated* it.

    The paper states a 6-transmitter S-CSMA bound (hence 7x7 max), yet its
    32-core evaluation mesh is 4x8 -- whose rows carry 7 slave
    transmitters -- and reports the flat single-level 13-cycle GL barrier
    there.  To reproduce the evaluation we follow the evaluation, not the
    stated bound: raise ``max_transmitters`` just enough for the chosen
    mesh to fit a single-level network.  The library default elsewhere
    remains the paper's stated 6 (and larger meshes use the hierarchical
    extension).  See DESIGN.md.
    """
    cfg = CMPConfig.for_cores(num_cores)
    need = max(cfg.noc.rows, cfg.noc.cols) - 1
    if need > cfg.gline.max_transmitters:
        cfg = cfg.with_(gline=replace(cfg.gline, max_transmitters=need))
    return cfg


# ---------------------------------------------------------------------- #
# Executor routing
# ---------------------------------------------------------------------- #
def make_spec(workload: Workload, barrier: str, num_cores: int = 32,
              config: CMPConfig | None = None,
              max_events: int | None = None) -> RunSpec:
    """Build the :class:`RunSpec` for one benchmark run (raises
    :class:`~repro.exec.SpecError` for non-fingerprintable workloads)."""
    return RunSpec.make(workload, barrier, num_cores=num_cores,
                        config=config, max_events=max_events)


def run_many(specs: Sequence[RunSpec]) -> list[RunResult]:
    """Execute a batch of independent runs through the ambient executor
    (parallel and cached when the caller installed such an executor)."""
    return current_executor().run(specs)


def run_benchmark(workload: Workload, barrier: str, num_cores: int = 32,
                  config: CMPConfig | None = None,
                  max_events: int | None = None) -> RunResult:
    """Run *workload* on a fresh chip with the given barrier kind."""
    try:
        spec = make_spec(workload, barrier, num_cores, config, max_events)
    except SpecError:
        # Workload state cannot be captured as a stable spec (e.g. a plain
        # list of generators): run it directly, bypassing pool and cache.
        cfg = config or paper_config(num_cores)
        chip = CMP(cfg, barrier=barrier)
        return chip.run(workload, max_events=max_events)
    return current_executor().run_one(spec)


@dataclass
class Comparison:
    """Paired runs of one workload under two barrier implementations."""

    workload: Workload
    baseline: RunResult
    treated: RunResult

    @property
    def time_ratio(self) -> float:
        return self.treated.total_cycles / (self.baseline.total_cycles or 1)

    @property
    def traffic_ratio(self) -> float:
        return self.treated.total_messages() / \
            (self.baseline.total_messages() or 1)


def compare(workload: Workload, num_cores: int = 32,
            baseline: str = "dsw", treated: str = "gl",
            config: CMPConfig | None = None) -> Comparison:
    """Run *workload* under *baseline* and *treated* barriers."""
    try:
        specs = [make_spec(workload, kind, num_cores, config)
                 for kind in (baseline, treated)]
    except SpecError:
        return Comparison(
            workload=workload,
            baseline=run_benchmark(workload, baseline, num_cores, config),
            treated=run_benchmark(workload, treated, num_cores, config),
        )
    base_run, treat_run = run_many(specs)
    return Comparison(workload=workload, baseline=base_run,
                      treated=treat_run)


def compare_many(workloads: Mapping[str, Workload], num_cores: int = 32,
                 baseline: str = "dsw", treated: str = "gl",
                 config: CMPConfig | None = None) -> dict[str, Comparison]:
    """Paired baseline/treated runs for a whole benchmark suite, submitted
    as one batch so a parallel executor overlaps *all* of them (the
    Figure-6/7 drivers' hot path)."""
    batched: list[tuple[str, Workload]] = []
    specs: list[RunSpec] = []
    out: dict[str, Comparison] = {}
    for name, wl in workloads.items():
        try:
            pair = [make_spec(wl, kind, num_cores, config)
                    for kind in (baseline, treated)]
        except SpecError:
            out[name] = compare(wl, num_cores, baseline, treated, config)
            continue
        batched.append((name, wl))
        specs.extend(pair)
    results = run_many(specs)
    for i, (name, wl) in enumerate(batched):
        out[name] = Comparison(workload=wl, baseline=results[2 * i],
                               treated=results[2 * i + 1])
    # Preserve the suite's ordering (fallbacks were inserted eagerly).
    return {name: out[name] for name in workloads}
