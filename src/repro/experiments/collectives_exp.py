"""Collective shootout: G-line reduction fabric vs software NoC all-reduce.

The paper's G-lines carry single-bit barrier events; the collectives
subsystem reuses the same wires for bit-serial reductions (MIN/MAX by
MSB-first elimination, SUM from per-bit transmitter counts).  This
experiment measures what that buys: the same
:class:`~repro.workloads.collective.CollectiveAllReduceWorkload` is run
with ``collectives.backend="gl"`` and ``"sw"`` (NoC message all-reduce
over shared memory) at 4x4, 8x8 and 16x16 meshes, and the table reports
average cycles per all-reduce episode plus the GL speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..collectives.config import CollectiveConfig
from ..common.params import CMPConfig
from ..workloads.collective import CollectiveAllReduceWorkload
from .runner import make_spec, run_many

DEFAULT_CORE_COUNTS = (16, 64, 256)
BACKENDS = ("gl", "sw")


@dataclass
class CollectivesResult:
    core_counts: tuple[int, ...]
    iterations: int
    value_width: int
    #: cycles_per_episode[backend][cores]
    cycles_per_episode: dict[str, dict[int, float]] = field(
        default_factory=dict)

    def speedup(self, cores: int) -> float:
        """Software NoC cycles divided by G-line cycles per episode."""
        return self.cycles_per_episode["sw"][cores] / \
            (self.cycles_per_episode["gl"][cores] or 1)

    def table(self) -> str:
        headers = ["Mesh", "Cores", "GL", "SW-NoC", "GL speedup"]
        rows = []
        for n in self.core_counts:
            cfg = CMPConfig.for_cores(n)
            rows.append([
                f"{cfg.noc.rows}x{cfg.noc.cols}", n,
                self.cycles_per_episode["gl"][n],
                self.cycles_per_episode["sw"][n],
                f"{self.speedup(n):.2f}x",
            ])
        return render_table(
            headers, rows,
            title=(f"Collective all-reduce shootout: avg cycles per "
                   f"episode ({self.iterations} episodes, "
                   f"{self.value_width}-bit values)"))


def _config(num_cores: int, backend: str,
            value_width: int) -> CMPConfig:
    cc = CollectiveConfig(enabled=True, backend=backend,
                          value_width=value_width)
    return CMPConfig.for_cores(num_cores, collectives=cc)


def run_collectives(core_counts=DEFAULT_CORE_COUNTS,
                    iterations: int = 24,
                    value_width: int = 8) -> CollectivesResult:
    """Regenerate the collective-shootout table."""
    result = CollectivesResult(core_counts=tuple(core_counts),
                               iterations=iterations,
                               value_width=value_width)
    workload = CollectiveAllReduceWorkload(iterations=iterations)
    points = [(backend, n) for backend in BACKENDS for n in core_counts]
    specs = [make_spec(workload, "gl", num_cores=n,
                       config=_config(n, backend, value_width))
             for backend, n in points]
    runs = run_many(specs)
    for (backend, n), run in zip(points, runs):
        result.cycles_per_episode.setdefault(backend, {})[n] = \
            run.total_cycles / iterations
    return result
