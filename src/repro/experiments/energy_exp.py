"""Network-energy experiment (quantifying the paper's §5 power argument).

The paper closes by arguing that removing barrier traffic and coherence
activity from the data network "will also lead to significant improvements
in power consumption" (interconnect power approaching 40% of chip power),
deferring measurement to future work.  This experiment performs that
measurement with the first-order proxy of :mod:`repro.analysis.energy`:
flit-hops and router traversals on the data network plus G-line toggles on
the dedicated network, reported per benchmark as a GL/DSW ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.energy import EnergyEstimate, estimate, reduction
from ..analysis.report import pct, render_table
from .fig6 import default_fig6_workloads
from .runner import compare


@dataclass
class EnergyResult:
    rows: list[tuple[str, EnergyEstimate, EnergyEstimate]] = field(
        default_factory=list)

    def table(self) -> str:
        headers = ["Benchmark", "DSW net energy", "GL net energy",
                   "GL G-line energy", "GL/DSW", "reduction"]
        out = []
        for name, e_dsw, e_gl in self.rows:
            out.append([
                name, e_dsw.total, e_gl.total, e_gl.gline_energy,
                e_gl.total / (e_dsw.total or 1),
                pct(reduction(e_dsw, e_gl)),
            ])
        return render_table(
            headers, out,
            title="Network energy proxy (link + router + G-line toggles)")

    def average_reduction(self) -> float:
        if not self.rows:
            return 0.0
        return sum(reduction(d, g) for _n, d, g in self.rows) / \
            len(self.rows)

    def gline_share(self) -> float:
        """G-line energy as a share of GL's total network energy (should
        be tiny: 1-bit wires vs full-width mesh links)."""
        total = sum(g.total for _n, _d, g in self.rows)
        gline = sum(g.gline_energy for _n, _d, g in self.rows)
        return gline / total if total else 0.0


def run_energy(num_cores: int = 32, scale: float = 0.5,
               workloads: dict | None = None) -> EnergyResult:
    """Run all Figure-6 benchmarks and estimate network energy."""
    result = EnergyResult()
    for name, wl in (workloads or default_fig6_workloads(scale)).items():
        comp = compare(wl, num_cores=num_cores)
        result.rows.append((name,
                            estimate("DSW", comp.baseline),
                            estimate("GL", comp.treated)))
    return result
